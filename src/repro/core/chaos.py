"""Chaos harness: the Athens scenario under injected faults.

This is the integration point of :mod:`repro.faults` — one runnable
story combining every resilience mechanism:

- lossy and flapping links exercise the dataplane resend budget,
- a switch compromise (the UC1 program swap, performed *by the fault
  injector* through the switch's own P4Runtime endpoint) is detected
  by path appraisal and repaired by the controller's
  :meth:`~repro.net.controller.RoutingController.reprovision`,
- an appraiser crash/restart exercises the out-of-band retry/backoff
  path on the evidence mirror,
- a late packet-corruption window shows corrupted evidence rejecting
  (never crashing) the relying party,
- a clock-skew fault churns the evidence cache.

Determinism: :func:`run_chaos_athens` resets the trace-id allocator
and seeds every RNG from its ``seed`` argument, so two runs with the
same seed produce identical :class:`~repro.net.simulator.SimStats`
and byte-identical audit-journal exports (pinned by
``tests/faults/test_determinism.py``).

:func:`run_degraded_oob` is the minimal degraded-mode scenario: an
out-of-band switch whose appraiser is down for the whole run. The
relying party's fail mode decides the outcome — rejecting under the
default fail-closed policy — which the acceptance tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    PathVerdict,
    hardware_reference,
    program_reference,
)
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.relying_party import RelyingParty
from repro.crypto.keys import KeyRegistry
from repro.faults import FailMode, FaultInjector, FaultPlan, FaultStats, RetryPolicy
from repro.net.controller import RoutingController
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.shardrun import ScenarioSpec, ShardedResult, run_sharded
from repro.net.simulator import SimStats, Simulator
from repro.net.topology import Topology, linear_topology
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import athens_rogue_program, firewall_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.telemetry.health import (
    HealthReport,
    RatioRule,
    ThresholdRule,
    evaluate_health,
    fold_alerts,
    label_filter,
)
from repro.telemetry.instrument import Telemetry
from repro.telemetry.timeseries import (
    SamplingSpec,
    install_recorder,
    merge_frame_streams,
    renumber_frame_times,
    timeseries_export,
    timeseries_snapshot,
)
from repro.telemetry.tracing import reset_trace_ids
from repro.util.ids import spawn_seed

_PACKET_GAP_S = 1e-3

#: The standard chaos sampling cadence: two packet slots per window, so
#: the 30-packet campaign produces ~15 windows and every fault window
#: in the standard plan spans at least one full sample window.
CHAOS_SAMPLE_INTERVAL_S = 2 * _PACKET_GAP_S


def chaos_sampling_spec() -> SamplingSpec:
    """The default flight-recorder spec for chaos campaigns."""
    return SamplingSpec(interval_s=CHAOS_SAMPLE_INTERVAL_S)


def standard_chaos_rules() -> List[object]:
    """The chaos campaign's health rules, one symptom family each.

    Every fault family in the standard plan has a rule that sees it
    *live* (within the frames the flight recorder samples during the
    run): dataplane drops for loss/flap, control-channel drops for the
    appraiser outage, rejected path verdicts for compromise/tamper,
    and the injector's own change-event counter for clock skew and
    packet corruption — two faults whose dataplane symptom is
    invisible in the Athens composition (``TRAFFIC_PATH`` never
    consults the time cache, and appraisal runs off the uncorrupted
    control-plane reports, so a payload bit flip on the egress edge
    changes no verdict). The fail-rate ratio is the SLO-style smoothed
    view over a trailing three windows.
    """
    return [
        ThresholdRule(name="dataplane-drops", metric="net.link.dropped"),
        ThresholdRule(name="control-drops", metric="net.control.dropped"),
        ThresholdRule(
            name="verdict-failures",
            metric="core.path_verdicts",
            labels=label_filter(accepted=False),
        ),
        RatioRule(
            name="verdict-fail-rate",
            numerator="core.path_verdicts",
            numerator_labels=label_filter(accepted=False),
            denominator="core.path_verdicts",
            threshold=0.01,
            over_windows=3,
        ),
        ThresholdRule(
            name="clock-skew-events",
            metric="faults.events",
            labels=label_filter(fault="clock_skew", status="injected"),
        ),
        ThresholdRule(
            name="corruption-events",
            metric="faults.events",
            labels=label_filter(fault="packet_corrupt", status="injected"),
        ),
    ]


#: Which health rule detects each fault family's activation. Clearing
#: kinds (``link_up``, ``node_restart``, zero-rate re-arms) are the
#: recovery markers, not covered families.
CHAOS_ALERT_FAMILIES: Dict[str, str] = {
    "link_loss": "dataplane-drops",
    "link_down": "dataplane-drops",
    "switch_compromise": "verdict-failures",
    "packet_corrupt": "corruption-events",
    "evidence_tamper": "verdict-failures",
    "evidence_strip_inband": "verdict-failures",
    "node_crash": "control-drops",
    "clock_skew": "clock-skew-events",
}


def _rogue_configure(node, actor: str) -> None:
    """What the Athens attacker does after its program swap: restore
    forwarding (so the tap stays invisible) and clone the victim's
    traffic to the spy port."""
    node.runtime.write(actor, TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    node.runtime.write(actor, TableEntry(
        table="intercept",
        keys=(MatchKey(
            MatchKind.TERNARY, ip_to_int("10.0.0.1"), mask=0xFFFFFFFF,
        ),),
        action="clone_to", params=(3,), priority=1,
    ))


@dataclass
class ChaosResult:
    """Everything a chaos run observed, structured for assertions."""

    packets_sent: int
    verdicts: List[PathVerdict]
    first_rejection: Optional[int]
    recovered_at: Optional[int]
    exfiltrated: int
    collector_records: int
    stats: SimStats
    fault_stats: FaultStats
    plan: FaultPlan
    telemetry: Telemetry
    ra_counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Populated only by sharded runs: the merged runner output
    #: (windows, lookahead, canonical metric snapshot, ...).
    sharded: Optional[ShardedResult] = field(default=None, repr=False)
    #: Flight-recorder output (``sampling=`` runs only): canonical
    #: merged frames, byte-identical across shard counts.
    frames: List[Dict[str, object]] = field(default_factory=list)
    frames_dropped: int = 0
    sampling: Optional[SamplingSpec] = None
    #: Health evaluation over the frames (``health=`` runs only).
    health: Optional[HealthReport] = None

    def audit_export(self) -> str:
        """Canonical JSON of the audit journal (replay comparisons)."""
        return json.dumps(
            [event.as_dict() for event in self.telemetry.audit.events],
            sort_keys=True,
            default=repr,
        )

    def frames_export(self) -> str:
        """Canonical JSON of the frame stream (byte-identity checks)."""
        return json.dumps(self.frames, sort_keys=True)

    def timeseries(self) -> Dict[str, object]:
        """The ``repro.timeseries/v1`` document for this run."""
        if self.sampling is None:
            raise ValueError("run had no sampling= spec; no frames recorded")
        return timeseries_snapshot(
            self.frames,
            self.sampling.interval_s,
            frames_dropped=self.frames_dropped,
            alerts=self.health.alerts if self.health is not None else (),
            rules=self.health.rules if self.health is not None else (),
        )

    def timeseries_export(self) -> str:
        """Canonical JSON of frames + alert timeline (byte-pinned)."""
        return timeseries_export(self.timeseries())

    def narrative(self) -> str:
        """The recovery story, line by line."""
        lines = [
            f"sent {self.packets_sent} packets; "
            f"{len(self.verdicts)} appraised, "
            f"{sum(1 for v in self.verdicts if v.accepted)} accepted",
        ]
        if self.first_rejection is not None:
            lines.append(
                f"compromise detected at appraised packet "
                f"#{self.first_rejection} (evidence rejected)"
            )
        if self.recovered_at is not None:
            lines.append(
                f"recovered at appraised packet #{self.recovered_at} "
                "(vetted program reprovisioned, evidence accepted again)"
            )
        lines.append(
            f"exfiltrated to spy: {self.exfiltrated} packet(s); "
            f"collector holds {self.collector_records} mirrored record(s)"
        )
        lines.append(
            f"dataplane: {self.stats.packets_dropped} dropped, "
            f"{self.stats.local_resends} local resend(s)"
        )
        retries = sum(c.get("oob_retries", 0) for c in self.ra_counters.values())
        recovered = sum(
            c.get("oob_recovered", 0) for c in self.ra_counters.values()
        )
        gave_up = sum(c.get("oob_gave_up", 0) for c in self.ra_counters.values())
        lines.append(
            f"out-of-band mirror: {retries} retr{'y' if retries == 1 else 'ies'}, "
            f"{recovered} recovered, {gave_up} gave up"
        )
        lines.append(
            f"faults: {self.fault_stats.injected} injected, "
            f"{self.fault_stats.cleared} cleared"
        )
        return "\n".join(lines)


def _chaos_topology() -> Topology:
    topo = linear_topology(2)
    topo.add_node("collector", kind="host")
    topo.add_link("s2", 3, "collector", 1)
    topo.add_node("h-spy", kind="host")
    topo.add_link("s1", 3, "h-spy", 1)
    return topo


def _chaos_plan(
    seed: int, packets: int, swap_at: int, reprovision_at: int
) -> FaultPlan:
    """The chaos fault plan, all times anchored to the packet schedule."""
    t = lambda index: index * _PACKET_GAP_S  # noqa: E731
    plan = FaultPlan(seed=seed)
    # Early turbulence: extra loss, then a flap, on the middle link.
    plan.link_loss(t(2), "s1", "s2", rate=0.3)
    plan.link_loss(t(6), "s1", "s2", rate=0.0)
    plan.link_flap(t(7), "s1", "s2", down_s=0.4e-3, up_s=1.1e-3, cycles=2)
    # The Athens swap: the injector *is* the attacker here.
    plan.compromise_switch(
        t(swap_at), "s1", athens_rogue_program, configure=_rogue_configure
    )
    # The appraiser mirror target dies and comes back.
    plan.crash_node(t(swap_at) + 0.5e-3, "collector")
    plan.restart_node(t(reprovision_at), "collector")
    # Late corruption window on the last hop: evidence must reject,
    # never crash.
    plan.corrupt_packets(
        t(packets - 5), "s2", "h-dst", rate=1.0, duration_s=2 * _PACKET_GAP_S
    )
    # And a skewed cache clock on s2 for the remainder.
    plan.clock_skew(t(packets - 3), "s2", skew_s=120.0)
    return plan


def _chaos_build(
    sim,
    packets: int,
    swap_at: int,
    reprovision_at: Optional[int],
    plan_factory: Optional[Callable[[int], FaultPlan]] = None,
):
    """Bind the full chaos deployment into ``sim`` and schedule its
    driving events.

    ``plan_factory`` (called with ``sim.seed``) swaps the default
    Athens plan for any other :class:`FaultPlan` over the same
    deployment — the fault-matrix campaigns replay one fault family at
    a time this way. ``reprovision_at=None`` skips the operator's
    scripted recovery.

    Works on the monolithic :class:`Simulator` (where ``schedule_on`` /
    ``schedule_replicated`` are plain ``schedule``) and on a
    :class:`~repro.net.sharding.ShardSimulator`, where each shard
    builds this complete world and the ownership gates arrange
    single-writer execution. Notably ``rp.send`` is *replicated*: nonce
    issuance and the policy-by-nonce table must exist in the
    destination's shard for appraisal, while the actual transmit is
    gated to h-src's owner.
    """
    telemetry = sim.telemetry
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    spy = Host("h-spy", mac=0x3, ip=ip_to_int("10.9.9.9"))
    collector = Host("collector", mac=0x4, ip=ip_to_int("10.0.2.1"))
    for node in (src, dst, spy, collector):
        sim.bind(node)
    src.resend_budget = 2  # LinkGuardian-style local first-hop recovery

    retry = RetryPolicy(max_attempts=4, base_delay_s=200e-6, max_delay_s=5e-3)
    genuine = firewall_program()
    # TRAFFIC_PATH binds each record to the packet the hop actually
    # saw, so the late corruption window is *detected* (binding check),
    # not merely survived.
    config = EvidenceConfig(
        detail=DetailLevel.MINIMAL, composition=CompositionMode.TRAFFIC_PATH
    )
    switches = []
    for name in ("s1", "s2"):
        switch = NetworkAwarePeraSwitch(
            name,
            config=config,
            appraiser_node="collector",
            mirror_out_of_band=True,
            retry_policy=retry,
        )
        sim.bind(switch)
        switch.resend_budget = 2
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", firewall_program())
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(
                MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24,
            ),),
            action="forward", params=(2,),
        ))
        switches.append(switch)

    anchors = KeyRegistry()
    references: Dict[str, Dict[InertiaClass, bytes]] = {}
    for switch in switches:
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(genuine),
        }
    rp = RelyingParty(
        policy=ap1_bank_path_attestation(),
        appraisal=PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements=references,
            program_names={program_reference(genuine): genuine.full_name},
        ),
        composition=CompositionMode.TRAFFIC_PATH,
        telemetry=telemetry,
    )
    rp.attach(sim, src, dst)

    controller = RoutingController(sim, name="ctl", election_id=1)

    t = lambda index: index * _PACKET_GAP_S  # noqa: E731
    if plan_factory is None:
        plan = _chaos_plan(sim.seed, packets, swap_at, reprovision_at)
    else:
        plan = plan_factory(sim.seed)
    injector = FaultInjector(plan)
    injector.attach(sim)

    if reprovision_at is not None:
        # The operator notices the rejections and reprovisions.
        sim.schedule_on(
            "s1",
            t(reprovision_at),
            lambda: controller.reprovision(
                "s1", program_factory=firewall_program
            ),
        )

    for index in range(packets):
        sim.schedule_replicated(
            "h-src",
            t(index),
            lambda seq=index: rp.send(payload=seq.to_bytes(4, "big")),
        )
    return {
        "src": src,
        "dst": dst,
        "spy": spy,
        "collector": collector,
        "switches": switches,
        "rp": rp,
        "controller": controller,
        "injector": injector,
        "plan": plan,
    }


def _ra_counters_of(switch) -> Dict[str, int]:
    return {
        "oob_send_failures": switch.ra_stats.oob_send_failures,
        "oob_retries": switch.ra_stats.oob_retries,
        "oob_recovered": switch.ra_stats.oob_recovered,
        "oob_gave_up": switch.ra_stats.oob_gave_up,
        "undecodable_evidence": switch.ra_stats.undecodable_evidence,
    }


def _verdict_markers(verdicts):
    first_rejection = next(
        (i for i, v in enumerate(verdicts) if not v.accepted), None
    )
    recovered_at = None
    if first_rejection is not None:
        recovered_at = next(
            (
                i
                for i, v in enumerate(verdicts)
                if i > first_rejection and v.accepted
            ),
            None,
        )
    return first_rejection, recovered_at


def _fold_alerts_into_journal(telemetry: Telemetry, health) -> None:
    """Merge alert events into the audit journal canonically (see
    :func:`repro.telemetry.health.fold_alerts`)."""
    if health is not None:
        fold_alerts(telemetry.audit, health.alerts)


def chaos_alert_coverage(
    result: ChaosResult, within_windows: int = 2
) -> Dict[str, Dict[str, object]]:
    """Did the monitoring layer *detect* every injected fault family?

    For each activation event in the plan (clearing kinds skipped),
    checks that the family's mapped rule (:data:`CHAOS_ALERT_FAMILIES`)
    was *raised* during the ``within_windows`` sample windows after the
    activation window — either a fresh ``alert.raised`` lands there, or
    the rule was already raised and has not yet cleared (a flap's
    second ``link_down`` while drops are still alerting counts as
    seen). Also checks the rule is not still raised when the run ends
    (recovery cleared it). Returns per-family verdicts keyed by kind.
    """
    if result.health is None or result.sampling is None:
        raise ValueError("run had no health= rules; nothing to check")
    interval = result.sampling.interval_s
    coverage: Dict[str, Dict[str, object]] = {}
    for event in result.plan.events:
        kind = event.kind
        rule = CHAOS_ALERT_FAMILIES.get(kind)
        if rule is None:
            continue  # a clearing/recovery kind, not a covered family
        if kind in ("link_loss", "packet_corrupt") and (
            float(event.params.get("rate", 0.0)) == 0.0
        ):
            continue  # zero-rate re-arm: this is the recovery marker
        activation_window = int(event.time_s // interval)
        deadline = activation_window + within_windows
        hit: Optional[int] = None
        open_at: Optional[int] = None
        for alert in result.health.alerts_for(rule):
            window = int(alert["detail"]["window"])  # type: ignore[index]
            if alert["kind"] == "alert.raised":
                open_at = window
                continue
            # alert.cleared closes the interval [open_at, window)
            if (
                open_at is not None
                and open_at <= deadline
                and window > activation_window
            ):
                hit = max(open_at, activation_window)
                break
            open_at = None
        if hit is None and open_at is not None and open_at <= deadline:
            hit = max(open_at, activation_window)  # still raised at end
        entry = coverage.setdefault(
            kind,
            {
                "rule": rule,
                "activations": [],
                "detected": False,
                "cleared": rule not in result.health.active,
            },
        )
        entry["activations"].append(  # type: ignore[union-attr]
            {
                "time_s": event.time_s,
                "window": activation_window,
                "raised_window": hit,
            }
        )
        if hit is not None:
            # Coverage is per *family*: one detected activation is
            # enough (a flap's second 0.4ms dip may drop nothing at
            # all — there is no symptom to alert on).
            entry["detected"] = True
    return coverage


def assert_chaos_alert_coverage(
    result: ChaosResult, within_windows: int = 2
) -> Dict[str, Dict[str, object]]:
    """The acceptance form of :func:`chaos_alert_coverage`: raise if
    any fault family went undetected or stayed raised past recovery."""
    coverage = chaos_alert_coverage(result, within_windows=within_windows)
    problems = []
    for kind, entry in coverage.items():
        if not entry["detected"]:
            problems.append(
                f"{kind}: rule {entry['rule']!r} raised no alert within "
                f"{within_windows} windows of any activation "
                f"({entry['activations']})"
            )
        if not entry["cleared"]:
            problems.append(
                f"{kind}: rule {entry['rule']!r} still raised at end of run"
            )
    if problems:
        raise AssertionError(
            "health alerts did not cover the fault plan:\n  "
            + "\n  ".join(problems)
        )
    return coverage


def run_chaos_athens(
    seed: int = 0,
    packets: int = 30,
    swap_at: int = 10,
    reprovision_at: Optional[int] = 16,
    shards: Optional[int] = None,
    backend: str = "inline",
    plan_factory: Optional[Callable[[int], FaultPlan]] = None,
    sampling: Optional[SamplingSpec] = None,
    health: Optional[Sequence[object]] = None,
) -> ChaosResult:
    """UC1 under chaos: flapping links, a compromise, a crashed
    appraiser, corruption — and recovery from all of them.

    ``swap_at``/``reprovision_at`` are packet indices (packets go out
    every millisecond); everything else in the fault plan is anchored
    to them.

    With ``shards`` given, the same deployment runs partitioned under
    the sharded runner (:mod:`repro.net.shardrun`) on the chosen
    ``backend``; the merged result is byte-for-byte the same story.
    ``shards=None`` is the original monolithic path.

    ``sampling`` installs a flight recorder
    (:class:`~repro.telemetry.timeseries.SamplingSpec`); ``health``
    runs the given rules (default vocabulary:
    :func:`standard_chaos_rules`) over the recorded frames at window
    close, with alert events folded into the audit journal. Passing
    ``health`` without ``sampling`` uses :func:`chaos_sampling_spec`.
    Both the frame stream and the alert timeline are byte-identical
    across shard counts and backends.
    """
    if health is not None and sampling is None:
        sampling = chaos_sampling_spec()
    if shards is not None:
        return _run_chaos_sharded(
            seed, packets, swap_at, reprovision_at, shards, backend,
            plan_factory, sampling=sampling, health=health,
        )
    reset_trace_ids()  # byte-identical replay needs a fresh id sequence
    telemetry = Telemetry(active=True)
    sim = Simulator(_chaos_topology(), seed=seed, telemetry=telemetry)
    ctx = _chaos_build(
        sim,
        packets=packets,
        swap_at=swap_at,
        reprovision_at=reprovision_at,
        plan_factory=plan_factory,
    )
    recorder = (
        install_recorder(sim, sampling) if sampling is not None else None
    )
    sim.run()

    frames: List[Dict[str, object]] = []
    frames_dropped = 0
    health_report: Optional[HealthReport] = None
    if recorder is not None:
        recorder.finish(sim.clock.now)
        # Canonicalize through the same merge the sharded parent uses,
        # so monolith output is byte-identical to every shard count.
        frames = renumber_frame_times(
            merge_frame_streams([recorder.frames]), sampling.interval_s
        )
        frames_dropped = recorder.frames_dropped
        if health is not None:
            health_report = evaluate_health(
                frames, list(health), sampling.interval_s
            )
            _fold_alerts_into_journal(telemetry, health_report)

    rp = ctx["rp"]
    first_rejection, recovered_at = _verdict_markers(rp.verdicts)
    return ChaosResult(
        packets_sent=packets,
        verdicts=list(rp.verdicts),
        first_rejection=first_rejection,
        recovered_at=recovered_at,
        exfiltrated=len(ctx["spy"].received_packets),
        collector_records=len(ctx["collector"].control_received),
        stats=sim.stats,
        fault_stats=ctx["injector"].stats,
        plan=ctx["plan"],
        telemetry=telemetry,
        ra_counters={
            switch.name: _ra_counters_of(switch)
            for switch in ctx["switches"]
        },
        frames=frames,
        frames_dropped=frames_dropped,
        sampling=sampling,
        health=health_report,
    )


def _chaos_harvest(sim, ctx):
    """Per-shard picklable output: each observation is reported by the
    shard owning its vantage point, and the parent reassembles."""
    return {
        "verdicts": (
            list(ctx["rp"].verdicts) if sim.owns("h-dst") else None
        ),
        "exfiltrated": (
            len(ctx["spy"].received_packets) if sim.owns("h-spy") else 0
        ),
        "collector_records": (
            len(ctx["collector"].control_received)
            if sim.owns("collector") else 0
        ),
        "fault_stats": {
            spec.name: getattr(ctx["injector"].stats, spec.name)
            for spec in dataclass_fields(ctx["injector"].stats)
        },
        "ra_counters": {
            switch.name: _ra_counters_of(switch)
            for switch in ctx["switches"]
            if sim.owns(switch.name)
        },
    }


def _run_chaos_sharded(
    seed: int,
    packets: int,
    swap_at: int,
    reprovision_at: Optional[int],
    shards: int,
    backend: str,
    plan_factory: Optional[Callable[[int], FaultPlan]] = None,
    sampling: Optional[SamplingSpec] = None,
    health: Optional[Sequence[object]] = None,
) -> ChaosResult:
    spec = ScenarioSpec(
        topology=_chaos_topology,
        build=partial(
            _chaos_build,
            packets=packets,
            swap_at=swap_at,
            reprovision_at=reprovision_at,
            plan_factory=plan_factory,
        ),
        harvest=_chaos_harvest,
        sampling=sampling,
    )
    result = run_sharded(spec, shards=shards, backend=backend, seed=seed)
    health_report: Optional[HealthReport] = None
    if sampling is not None and health is not None:
        # Post-merge evaluation in the parent: a pure function of the
        # canonical frame stream, so the alert timeline cannot depend
        # on the partitioning.
        health_report = evaluate_health(
            result.frames, list(health), sampling.interval_s
        )
        if result.telemetry is not None:
            _fold_alerts_into_journal(result.telemetry, health_report)
    verdicts = next(
        (out["verdicts"] for out in result.outputs
         if out["verdicts"] is not None),
        [],
    )
    first_rejection, recovered_at = _verdict_markers(verdicts)
    fault_stats = FaultStats()
    for out in result.outputs:
        for name, value in out["fault_stats"].items():
            setattr(fault_stats, name, getattr(fault_stats, name) + value)
    ra_counters: Dict[str, Dict[str, int]] = {}
    for out in result.outputs:
        ra_counters.update(out["ra_counters"])
    return ChaosResult(
        packets_sent=packets,
        verdicts=verdicts,
        first_rejection=first_rejection,
        recovered_at=recovered_at,
        exfiltrated=sum(out["exfiltrated"] for out in result.outputs),
        collector_records=sum(
            out["collector_records"] for out in result.outputs
        ),
        stats=result.stats,
        fault_stats=fault_stats,
        plan=(
            _chaos_plan(seed, packets, swap_at, reprovision_at)
            if plan_factory is None else plan_factory(seed)
        ),
        telemetry=result.telemetry,
        ra_counters={
            name: ra_counters[name] for name in sorted(ra_counters)
        },
        sharded=result,
        frames=result.frames,
        frames_dropped=result.frames_dropped,
        sampling=sampling,
        health=health_report,
    )


# --- fault matrix -----------------------------------------------------------
#
# One fault family at a time over the same chaos deployment: each kind
# gets a minimal single-fault plan and an expected protocol signal, so
# a sweep both exercises every resilience mechanism in isolation and
# *proves* each one actually fired — a campaign that quietly injects
# nothing would fail its own predicate, not pass vacuously.

_MATRIX_KINDS: Tuple[str, ...] = (
    "link_loss",
    "link_flap",
    "compromise",
    "appraiser_outage",
    "corruption",
    "clock_skew",
    "evidence_strip",
)

_MATRIX_SIGNALS: Dict[str, str] = {
    "link_loss": "dataplane drops or local resends observed",
    "link_flap": "dataplane drops or local resends observed",
    "compromise": "appraisal rejects evidence after the swap",
    "appraiser_outage": "out-of-band mirror retry/backoff engaged",
    "corruption": "corrupted evidence rejected (never crashed)",
    "clock_skew": "fault injected; appraisals keep concluding",
    "evidence_strip": "stripped evidence detected at appraisal",
}


def fault_matrix_kinds() -> Tuple[str, ...]:
    """The fault families :func:`run_fault_matrix` sweeps by default."""
    return _MATRIX_KINDS


def _matrix_plan(seed: int, packets: int, kind: str) -> FaultPlan:
    """A single-fault plan of family ``kind`` over the chaos topology."""
    t = lambda index: index * _PACKET_GAP_S  # noqa: E731
    mid = packets // 2
    plan = FaultPlan(seed=seed)
    if kind == "link_loss":
        plan.link_loss(t(2), "s1", "s2", rate=0.45)
        plan.link_loss(t(max(3, packets - 4)), "s1", "s2", rate=0.0)
    elif kind == "link_flap":
        plan.link_flap(
            t(3), "s1", "s2", down_s=0.4e-3, up_s=1.1e-3, cycles=3
        )
    elif kind == "compromise":
        plan.compromise_switch(
            t(mid), "s1", athens_rogue_program, configure=_rogue_configure
        )
    elif kind == "appraiser_outage":
        plan.crash_node(t(2), "collector")
        plan.restart_node(t(max(3, packets - 6)), "collector")
    elif kind == "corruption":
        plan.corrupt_packets(
            t(mid), "s2", "h-dst", rate=1.0, duration_s=3 * _PACKET_GAP_S
        )
    elif kind == "clock_skew":
        plan.clock_skew(t(mid), "s2", skew_s=120.0)
    elif kind == "evidence_strip":
        plan.strip_inband(t(mid), "s2", "h-dst")
    else:
        raise ValueError(f"unknown fault-matrix kind {kind!r}")
    return plan


def _matrix_signal_seen(kind: str, result: ChaosResult) -> bool:
    if kind in ("link_loss", "link_flap"):
        return (
            result.stats.packets_dropped + result.stats.local_resends
        ) > 0
    if kind == "compromise":
        return result.first_rejection is not None
    if kind == "appraiser_outage":
        return any(
            counters.get("oob_send_failures", 0)
            + counters.get("oob_retries", 0)
            + counters.get("oob_gave_up", 0) > 0
            for counters in result.ra_counters.values()
        )
    if kind in ("corruption", "evidence_strip"):
        return any(not verdict.accepted for verdict in result.verdicts)
    if kind == "clock_skew":
        return result.fault_stats.injected > 0 and bool(result.verdicts)
    return False


@dataclass
class FaultMatrixEntry:
    """One fault family's run plus its expected-signal check."""

    kind: str
    signal: str
    signal_seen: bool
    result: ChaosResult


def run_fault_matrix(
    seed: int = 0,
    packets: int = 18,
    shards: Optional[int] = None,
    backend: str = "inline",
    kinds: Optional[Sequence[str]] = None,
) -> Dict[str, FaultMatrixEntry]:
    """Sweep the fault matrix: one single-fault campaign per family.

    Each campaign replays the chaos deployment under exactly one
    injected fault family (its RNG stream keyed off ``seed`` and the
    kind, so families are independent and shard-count-invariant) and
    records whether the family's expected protocol signal actually
    appeared. ``shards``/``backend`` run every campaign under the
    sharded runner, which is how CI's chaos-smoke job replays the
    matrix on the multiprocessing backend.
    """
    entries: Dict[str, FaultMatrixEntry] = {}
    for kind in (kinds if kinds is not None else _MATRIX_KINDS):
        result = run_chaos_athens(
            seed=spawn_seed(seed, "fault-matrix", kind),
            packets=packets,
            swap_at=packets // 2,
            reprovision_at=(
                max(packets - 4, packets // 2 + 1)
                if kind == "compromise" else None
            ),
            shards=shards,
            backend=backend,
            plan_factory=partial(_matrix_plan, packets=packets, kind=kind),
        )
        entries[kind] = FaultMatrixEntry(
            kind=kind,
            signal=_MATRIX_SIGNALS[kind],
            signal_seen=_matrix_signal_seen(kind, result),
            result=result,
        )
    return entries


@dataclass
class DegradedResult:
    """Outcome of the minimal appraiser-down scenario."""

    verdict: PathVerdict
    oob_gave_up: int
    oob_recovered: int
    telemetry: Telemetry


def run_degraded_oob(
    seed: int = 0,
    fail_mode: str = FailMode.CLOSED,
    restart_at: Optional[float] = None,
) -> DegradedResult:
    """Out-of-band attestation with the appraiser down from t=0.

    The switch's evidence never arrives (each send fails, retries back
    off, and — unless ``restart_at`` brings the appraiser back in time
    — the switch gives up). The appraiser-side policy then concludes
    via :meth:`PathAppraiser.appraise_unavailable`: rejecting under
    the default fail-closed mode, accepting (flagged degraded) only
    under an explicit fail-open opt-in.
    """
    reset_trace_ids()
    telemetry = Telemetry(active=True)
    topo = linear_topology(1)
    topo.add_node("collector", kind="host")
    topo.add_link("s1", 3, "collector", 1)
    sim = Simulator(topo, seed=seed, telemetry=telemetry)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    collector = Host("collector", mac=0x3, ip=ip_to_int("10.0.2.1"))
    for node in (src, dst, collector):
        sim.bind(node)
    switch = NetworkAwarePeraSwitch(
        "s1",
        config=EvidenceConfig(detail=DetailLevel.MINIMAL),
        appraiser_node="collector",
        out_of_band=True,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=100e-6),
    )
    sim.bind(switch)
    genuine = firewall_program()
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config("ctl", genuine)
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))

    plan = FaultPlan(seed=seed)
    plan.crash_node(0.0, "collector")
    if restart_at is not None:
        plan.restart_node(restart_at, "collector")
    injector = FaultInjector(plan)
    injector.attach(sim)

    from repro.net.headers import RaShimHeader

    sim.schedule(0.5e-3, lambda: src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=b"degraded",
        ra_shim=RaShimHeader(flags=RaShimHeader.FLAG_POLICY, body=b""),
    ))
    sim.run()

    anchors = KeyRegistry()
    anchors.register_pair(switch.keys)
    appraiser = PathAppraiser(
        "Appraiser",
        PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements={"s1": {
                InertiaClass.HARDWARE: hardware_reference(
                    switch.engine.hardware_identity
                ),
                InertiaClass.PROGRAM: program_reference(genuine),
            }},
            fail_mode=fail_mode,
        ),
        telemetry=telemetry,
    )
    evidence_arrived = bool(collector.control_received)
    if evidence_arrived:
        records = [m for _, _, m in collector.control_received]
        verdict = appraiser.appraise_records(
            records, hop_count=len(records), compiled=None
        )
    else:
        verdict = appraiser.appraise_unavailable(
            "appraiser collector received no evidence "
            f"(switch gave up after {switch.ra_stats.oob_gave_up} "
            "exhausted delivery attempt(s))"
        )
    return DegradedResult(
        verdict=verdict,
        oob_gave_up=switch.ra_stats.oob_gave_up,
        oob_recovered=switch.ra_stats.oob_recovered,
        telemetry=telemetry,
    )
