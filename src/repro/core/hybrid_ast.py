"""Abstract syntax of network-aware Copland (paper §5.1).

The hybrid embeds plain Copland phrases (:mod:`repro.copland.ast`) and
adds three node types:

- :class:`Guard` — ``K ▶ C``: a NetKAT predicate ``K`` tested at the
  device before it executes phrase ``C``. The test result itself is
  attestable ("That node can also attest the result of the test").
- :class:`PathStar` — ``A *⇒ B``: ``A`` holds for zero or more hops
  along the path, then ``B`` holds at/after the path's end.
- :class:`Forall` — ``∀ p, q : C``: place abstraction; ``p``/``q`` are
  bound variables instantiated with concrete places at compile time.

A :class:`HybridPolicy` wraps a body with its relying party and its
RP-chosen parameters (the ``⟨n, X⟩`` of AP1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.copland.ast import Phrase
from repro.netkat.ast import Predicate
from repro.util.errors import PolicyError


class HybridNode:
    """Base class of hybrid-language nodes (a superset of phrases)."""


@dataclass(frozen=True)
class Guard(HybridNode):
    """``K ▶ C``: run ``C`` only where predicate ``K`` holds.

    ``K`` is a NetKAT predicate over the packet/device state fields the
    switch exposes (``switch``, ``port``, header fields). Per §5.1 the
    test exists "to fail early and avoid the attestation effort, and to
    apply different attestations based on which Boolean test succeeds".
    """

    test: Predicate
    body: "HybridNode"

    def __repr__(self) -> str:
        return f"({self.test!r} |> {self.body!r})"


@dataclass(frozen=True)
class Embedded(HybridNode):
    """A plain Copland phrase embedded in the hybrid language."""

    phrase: Phrase

    def __repr__(self) -> str:
        return repr(self.phrase)


@dataclass(frozen=True)
class HybridAt(HybridNode):
    """``@place [C]`` where place may be a ∀-bound variable."""

    place: str
    body: HybridNode

    def __repr__(self) -> str:
        return f"@{self.place} [{self.body!r}]"


@dataclass(frozen=True)
class HybridSeq(HybridNode):
    """Sequential composition with evidence passing (the hybrid's
    ``-+>``: left's evidence is available to right)."""

    left: HybridNode
    right: HybridNode

    def __repr__(self) -> str:
        return f"({self.left!r} -+> {self.right!r})"


@dataclass(frozen=True)
class PathStar(HybridNode):
    """``A *⇒ B``: A at each of zero or more hops, then B."""

    per_hop: HybridNode
    terminal: HybridNode

    def __repr__(self) -> str:
        return f"({self.per_hop!r} *=> {self.terminal!r})"


@dataclass(frozen=True)
class Forall(HybridNode):
    """``∀ p, q, ... : C``: place abstraction."""

    variables: Tuple[str, ...]
    body: HybridNode

    def __post_init__(self) -> None:
        if not self.variables:
            raise PolicyError("forall needs at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise PolicyError("duplicate forall variables")

    def __repr__(self) -> str:
        return f"forall {', '.join(self.variables)} : {self.body!r}"


@dataclass(frozen=True)
class HybridPolicy:
    """A complete network-aware attestation policy."""

    name: str
    relying_party: str
    params: Tuple[str, ...]
    body: HybridNode

    def __repr__(self) -> str:
        params = f"<{', '.join(self.params)}>" if self.params else ""
        return f"*{self.relying_party}{params} : {self.body!r}"

    def bound_variables(self) -> Set[str]:
        """All ∀-bound place variables in the policy."""
        found: Set[str] = set()

        def visit(node: HybridNode) -> None:
            if isinstance(node, Forall):
                found.update(node.variables)
                visit(node.body)
            elif isinstance(node, Guard):
                visit(node.body)
            elif isinstance(node, HybridAt):
                visit(node.body)
            elif isinstance(node, HybridSeq):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, PathStar):
                visit(node.per_hop)
                visit(node.terminal)

        visit(self.body)
        return found
