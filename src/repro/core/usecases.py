"""Executable builds of the paper's motivating use cases (§2).

Each function constructs a full simulated deployment, drives it, and
returns a structured result. Examples print these; benchmarks sweep
their parameters.

- UC1 :func:`run_config_assurance` — the Athens affair: a rogue
  program swap is detected through program attestation.
- UC2 :func:`run_path_authentication` — path evidence as an
  authentication factor (AP1).
- UC3 :func:`run_ddos_mitigation` — path evidence as an authorization
  tag: under attack, traffic without evidence is dropped.
- UC4 :func:`run_audit_trail` — evidence as documentation: a scanner's
  findings become a Merkle-committed audit log.
- UC5 :func:`run_cross_referenced` — host-based and network-based
  evidence composed: only traffic from an attested TLS stack leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.copland.parser import parse_phrase
from repro.copland.vm import CoplandVM, Place
from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    PathVerdict,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.merkle import MerkleTree
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.shardrun import ScenarioSpec, ShardedResult, run_sharded
from repro.net.simulator import Simulator
from repro.net.topology import Topology, linear_topology
from repro.pera.config import (
    BatchingSpec,
    CompositionMode,
    DetailLevel,
    EvidenceConfig,
)
from repro.pera.inertia import InertiaClass
from repro.pera.records import decode_record_stack, verify_record_batch
from repro.pera.sampling import SamplingMode, SamplingSpec
from repro.pisa.programs import (
    athens_rogue_program,
    firewall_program,
    ipv4_forwarding_program,
    scanner_program,
)
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


def _install_routing(switch, dst_net: str, port: int) -> None:
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int(dst_net), prefix_len=24),),
        action="forward", params=(port,),
    ))


def _pera_chain(switch_count: int, config: EvidenceConfig, programs=None):
    """Standard h-src — s1..sN — h-dst chain of network-aware switches."""
    topo = linear_topology(switch_count)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for i in range(1, switch_count + 1):
        switch = NetworkAwarePeraSwitch(f"s{i}", config=config)
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        program = (
            programs[i - 1] if programs is not None
            else ipv4_forwarding_program()
        )
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        _install_routing(switch, "10.0.1.0", 2)
        switches.append(switch)
    return sim, src, dst, switches


def _appraiser_for(switches, programs, allow_sampling=False) -> PathAppraiser:
    anchors = KeyRegistry()
    references: Dict[str, Dict[InertiaClass, bytes]] = {}
    program_names: Dict[bytes, str] = {}
    for switch, program in zip(switches, programs):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        program_names[program_reference(program)] = program.full_name
    return PathAppraiser(
        "Appraiser",
        PathAppraisalPolicy(
            anchors=anchors,
            reference_measurements=references,
            program_names=program_names,
            allow_sampling=allow_sampling,
        ),
    )


# --- UC1: configuration assurance / Athens affair ---------------------------------


@dataclass
class ConfigAssuranceResult:
    packets_sent: int
    verdicts: List[PathVerdict]
    first_rejection: Optional[int]
    swap_at: Optional[int]
    exfiltrated: int
    #: Populated only by sharded runs (``shards=`` given): the merged
    #: runner output, carrying the canonical audit/metrics/stats the
    #: determinism tests compare across shard counts.
    sharded: Optional[ShardedResult] = field(default=None, repr=False)

    @property
    def detection_delay(self) -> Optional[int]:
        """Packets between the swap and its detection."""
        if self.swap_at is None or self.first_rejection is None:
            return None
        return max(0, self.first_rejection - self.swap_at)


def run_config_assurance(
    packets: int = 20,
    swap_at: Optional[int] = 10,
    sampling: Optional[SamplingSpec] = None,
    switch_count: int = 2,
    batching: Optional[BatchingSpec] = None,
    shards: Optional[int] = None,
    backend: str = "inline",
    seed: int = 0,
) -> ConfigAssuranceResult:
    """UC1 / the Athens affair, end to end.

    A chain of ``switch_count`` attesting switches runs vetted
    ``firewall_v5``; at packet ``swap_at`` an attacker (who *is* the
    P4Runtime master) installs the rogue variant that clones traffic to
    a spy port. The relying party appraises each delivered packet's
    path evidence: the program measurement changes, so appraisal
    rejects from the swap on — with per-packet attestation, at the very
    first rogue packet.

    With ``shards`` given, the deployment runs under the sharded
    runner (:mod:`repro.net.shardrun`) partitioned into that many
    event loops on the chosen ``backend``; the result additionally
    carries the merged :class:`~repro.net.shardrun.ShardedResult` in
    ``.sharded``. ``shards=None`` is the original monolithic path.
    """
    if shards is not None:
        return _run_config_assurance_sharded(
            packets, swap_at, sampling, switch_count, batching,
            shards, backend, seed,
        )
    config = EvidenceConfig(
        detail=DetailLevel.MINIMAL,
        composition=CompositionMode.CHAINED,
        sampling=sampling or SamplingSpec(),
        batching=batching,
    )
    genuine = firewall_program()
    sim, src, dst, switches = _pera_chain(
        switch_count, config, programs=[genuine] * switch_count
    )
    # The spy host hangs off s1's port 3.
    sim.topology.add_node("h-spy", kind="host")
    sim.topology.add_link("s1", 3, "h-spy", 1)
    spy = Host("h-spy", mac=0x3, ip=ip_to_int("10.9.9.9"))
    sim.bind(spy)

    appraiser = _appraiser_for(
        switches, [genuine] * switch_count,
        allow_sampling=sampling is not None
        and sampling.mode is not SamplingMode.EVERY_PACKET,
    )
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src"] + [s.name for s in switches] + ["h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    shim_body = encode_compiled_policy(policy)

    for index in range(packets):
        def fire(seq=index):
            if swap_at is not None and seq == swap_at:
                _uc1_athens_swap(switches[0])
            src.send_udp(
                dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
                payload=seq.to_bytes(4, "big"),
                ra_shim=RaShimHeader(
                    flags=RaShimHeader.FLAG_POLICY, body=shim_body
                ),
            )
        sim.schedule(index * 1e-3, fire)
    sim.run()
    if batching is not None:
        # Seal any epoch still open (max_delay_s=0 configs) and deliver
        # the packets its seal released.
        for switch in switches:
            switch.flush_epochs()
        sim.run()

    verdicts = [
        appraiser.appraise_packet(packet, compiled=policy)
        for packet in dst.received_packets
    ]
    first_rejection = next(
        (i for i, verdict in enumerate(verdicts) if not verdict.accepted), None
    )
    return ConfigAssuranceResult(
        packets_sent=packets,
        verdicts=verdicts,
        first_rejection=first_rejection,
        swap_at=swap_at,
        exfiltrated=len(spy.received_packets),
    )


def _install_routing_as(switch, controller: str) -> None:
    switch.runtime.write(controller, TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))


def _uc1_athens_swap(switch) -> None:
    """The Athens-affair compromise: an attacker with master arbitration
    installs the rogue firewall variant and an intercept rule cloning
    h-src's traffic to the spy port."""
    switch.runtime.arbitrate("attacker", 99)
    switch.runtime.set_forwarding_pipeline_config(
        "attacker", athens_rogue_program()
    )
    _install_routing_as(switch, "attacker")
    switch.runtime.write("attacker", TableEntry(
        table="intercept",
        keys=(MatchKey(
            MatchKind.TERNARY, ip_to_int("10.0.0.1"),
            mask=0xFFFFFFFF,
        ),),
        action="clone_to", params=(3,), priority=1,
    ))
    switch.notify_state_change(InertiaClass.PROGRAM)


# --- UC1, sharded -------------------------------------------------------------
#
# The same deployment expressed as a ScenarioSpec for the sharded
# runner. Every shard builds the complete world — hosts, switches,
# programs, routing — so control-plane state and appraisal anchors are
# replicated deterministically; the simulator's ownership gates make
# each scheduled action (the swap on s1's shard, each send on h-src's)
# fire exactly once across the fleet.


def _uc1_topology(switch_count: int) -> Topology:
    topo = linear_topology(switch_count)
    topo.add_node("h-spy", kind="host")
    topo.add_link("s1", 3, "h-spy", 1)
    return topo


def _uc1_build(
    sim,
    packets: int,
    swap_at: Optional[int],
    sampling: Optional[SamplingSpec],
    batching: Optional[BatchingSpec],
    switch_count: int,
):
    config = EvidenceConfig(
        detail=DetailLevel.MINIMAL,
        composition=CompositionMode.CHAINED,
        sampling=sampling or SamplingSpec(),
        batching=batching,
    )
    genuine = firewall_program()
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for i in range(1, switch_count + 1):
        switch = NetworkAwarePeraSwitch(f"s{i}", config=config)
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", genuine)
        _install_routing(switch, "10.0.1.0", 2)
        switches.append(switch)
    spy = Host("h-spy", mac=0x3, ip=ip_to_int("10.9.9.9"))
    sim.bind(spy)

    appraiser = _appraiser_for(
        switches, [genuine] * switch_count,
        allow_sampling=sampling is not None
        and sampling.mode is not SamplingMode.EVERY_PACKET,
    )
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src"] + [s.name for s in switches] + ["h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    shim_body = encode_compiled_policy(policy)

    for index in range(packets):
        # The swap is its own event on s1's shard, scheduled ahead of
        # the same-time send so it lands first everywhere.
        if swap_at is not None and index == swap_at:
            sim.schedule_on(
                "s1", index * 1e-3,
                lambda: _uc1_athens_swap(switches[0]),
            )
        sim.schedule_on(
            "h-src", index * 1e-3,
            lambda seq=index: src.send_udp(
                dst_mac=dst.mac, dst_ip=dst.ip,
                src_port=1000, dst_port=2000,
                payload=seq.to_bytes(4, "big"),
                ra_shim=RaShimHeader(
                    flags=RaShimHeader.FLAG_POLICY, body=shim_body
                ),
            ),
        )
    return {
        "dst": dst,
        "spy": spy,
        "switches": switches,
        "appraiser": appraiser,
        "policy": policy,
    }


def _uc1_harvest(sim, ctx):
    """Per-shard output: the dst-owning shard appraises delivered
    packets locally (its appraisal anchors are replicas of the same
    deterministic keys), the spy-owning shard counts exfiltration."""
    verdicts = None
    if sim.owns("h-dst"):
        verdicts = [
            ctx["appraiser"].appraise_packet(packet, compiled=ctx["policy"])
            for packet in ctx["dst"].received_packets
        ]
    return {
        "verdicts": verdicts,
        "exfiltrated": (
            len(ctx["spy"].received_packets) if sim.owns("h-spy") else 0
        ),
    }


def _uc1_drain(sim, ctx) -> None:
    """Barrier-synced equivalent of the monolith's flush-then-run: seal
    epochs still open on this shard's switches so their releases (and
    parked packets) enter the next window cycle."""
    for switch in ctx["switches"]:
        if sim.owns(switch.name):
            switch.flush_epochs()


def _run_config_assurance_sharded(
    packets, swap_at, sampling, switch_count, batching, shards, backend, seed
) -> ConfigAssuranceResult:
    spec = ScenarioSpec(
        topology=partial(_uc1_topology, switch_count),
        build=partial(
            _uc1_build,
            packets=packets,
            swap_at=swap_at,
            sampling=sampling,
            batching=batching,
            switch_count=switch_count,
        ),
        harvest=_uc1_harvest,
        drain=_uc1_drain if batching is not None else None,
    )
    result = run_sharded(spec, shards=shards, backend=backend, seed=seed)
    verdicts = next(
        (out["verdicts"] for out in result.outputs
         if out["verdicts"] is not None),
        [],
    )
    first_rejection = next(
        (i for i, verdict in enumerate(verdicts) if not verdict.accepted),
        None,
    )
    return ConfigAssuranceResult(
        packets_sent=packets,
        verdicts=verdicts,
        first_rejection=first_rejection,
        swap_at=swap_at,
        exfiltrated=sum(out["exfiltrated"] for out in result.outputs),
        sharded=result,
    )


# --- UC2: path evidence as an authentication factor ------------------------------


@dataclass
class PathAuthResult:
    verdict: PathVerdict
    access_granted: bool
    hops_attested: int


def run_path_authentication(
    switch_count: int = 3, from_home_path: bool = True
) -> PathAuthResult:
    """UC2 / AP1: grant limited access if the client connects over an
    acceptable, fully-attested path.

    ``from_home_path=False`` models the user connecting through an
    unknown network: the path's switches are not in the bank's
    reference set, so appraisal fails and access is denied.
    """
    config = EvidenceConfig(composition=CompositionMode.CHAINED)
    programs = [ipv4_forwarding_program() for _ in range(switch_count)]
    sim, src, dst, switches = _pera_chain(switch_count, config, programs)
    known = switches if from_home_path else switches[:-1]
    appraiser = _appraiser_for(known, programs[: len(known)])
    path = ["h-src"] + [s.name for s in switches] + ["h-dst"]
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=path,
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=4000, dst_port=443,
        payload=b"login-attempt",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY, body=encode_compiled_policy(policy)
        ),
    )
    sim.run()
    verdict = appraiser.appraise_packet(dst.received_packets[0], compiled=policy)
    return PathAuthResult(
        verdict=verdict,
        access_granted=verdict.accepted,
        hops_attested=verdict.records_checked,
    )


# --- AP1, complete: path attestation AND the client's host protocol --------------


@dataclass
class Ap1CompleteResult:
    """Both halves of AP1: the *⇒ path side and the @client side."""

    path_verdict: PathVerdict
    client_bmon_clean: bool
    client_exts_clean: bool
    accepted: bool


def run_ap1_complete(
    switch_count: int = 2,
    client_compromised: bool = False,
) -> Ap1CompleteResult:
    """Execute ALL of AP1 (Table 1): per-hop network attestation up to
    the client, then the client's §4.2 host-measurement protocol
    (the blue original in the paper), with the bank accepting only if
    both halves hold.

    ``client_compromised`` installs malware in the client's browser
    extensions AND corrupts the monitor — the sequenced protocol (the
    ``-<-`` in AP1's terminal clause) catches it because the slow
    adversary cannot repair ``bmon`` between the ordered measurements.
    """
    # Network half.
    config = EvidenceConfig(composition=CompositionMode.CHAINED)
    programs = [ipv4_forwarding_program() for _ in range(switch_count)]
    sim, src, dst, switches = _pera_chain(switch_count, config, programs)
    appraiser = _appraiser_for(switches, programs)
    path = ["h-src"] + [s.name for s in switches] + ["h-dst"]
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(), path=path,
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=4000, dst_port=443,
        payload=b"banking-session",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY, body=encode_compiled_policy(policy)
        ),
    )
    sim.run()
    path_verdict = appraiser.appraise_packet(dst.received_packets[0], policy)

    # Host half: AP1's terminal clause, executed on the Copland VM at
    # the client: @ks [av us bmon -> !] -<- @us [bmon us exts -> !].
    vm = CoplandVM()
    vm.register(Place("bank"))
    ks = vm.register(Place("ks"))
    us = vm.register(Place("us"))
    ks.install_component("av", b"antivirus")
    us.install_component("bmon", b"bmon-good")
    us.install_component("exts", b"extensions-good")
    if client_compromised:
        us.corrupt_component("exts", b"MALWARE")
        us.corrupt_component("bmon", b"bmon-evil")
    evidence = vm.execute(parse_phrase(
        "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"
    ), "bank")
    golden_bmon = digest(b"bmon-good", domain="component-measurement")
    golden_exts = digest(b"extensions-good", domain="component-measurement")
    measurements = {
        (m.asp, m.target): m.value for m in evidence.find_measurements()
    }
    bmon_clean = measurements[("av", "bmon")] == golden_bmon
    exts_clean = measurements[("bmon", "exts")] == golden_exts
    return Ap1CompleteResult(
        path_verdict=path_verdict,
        client_bmon_clean=bmon_clean,
        client_exts_clean=exts_clean,
        accepted=path_verdict.accepted and bmon_clean and exts_clean,
    )


# --- UC3: path evidence as an authorization tag (DDoS) ----------------------------


@dataclass
class DdosResult:
    legit_sent: int
    legit_delivered: int
    attack_sent: int
    attack_delivered: int
    gated_drops: int

    @property
    def goodput_kept(self) -> float:
        return self.legit_delivered / max(1, self.legit_sent)

    @property
    def attack_passed(self) -> float:
        return self.attack_delivered / max(1, self.attack_sent)


def run_ddos_mitigation(
    legit_packets: int = 20,
    attack_packets: int = 60,
    under_attack: bool = True,
) -> DdosResult:
    """UC3: "while under attack, a network could drop traffic for which
    it lacks path-based evidence."

    Legitimate traffic carries a compiled policy and accumulates hop
    records; attack traffic (spoofed, from an off-path bot) carries
    none. The egress switch gates on evidence exactly when
    ``under_attack`` is set.
    """
    config = EvidenceConfig(composition=CompositionMode.CHAINED)
    programs = [ipv4_forwarding_program(), ipv4_forwarding_program()]
    sim, src, dst, switches = _pera_chain(2, config, programs)
    # The attacker injects directly into s2 through an extra port.
    sim.topology.add_node("h-bot", kind="host")
    sim.topology.add_link("s2", 4, "h-bot", 1)
    bot = Host("h-bot", mac=0x66, ip=ip_to_int("10.6.6.6"))
    sim.bind(bot)

    anchors = KeyRegistry()
    for switch in switches:
        anchors.register_pair(switch.keys)

    if under_attack:
        egress = switches[-1]

        def gate(ctx, records) -> bool:
            # Authorization tag: at least one verifiable upstream record.
            return any(record.verify(anchors) for record in records)

        egress.evidence_gate = gate

    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src", "s1", "s2", "h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    shim_body = encode_compiled_policy(policy)
    for index in range(legit_packets):
        sim.schedule(index * 1e-3, lambda seq=index: src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=2000, dst_port=80,
            payload=b"L" + seq.to_bytes(4, "big"),
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY, body=shim_body
            ),
        ))
    for index in range(attack_packets):
        # Attack traffic spoofs the shim (stolen policy bytes) but has
        # no attesting upstream hops, so it carries no valid records.
        sim.schedule(index * 0.3e-3, lambda seq=index: bot.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=6666, dst_port=80,
            payload=b"A" + seq.to_bytes(4, "big"),
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY, body=shim_body
            ),
        ))
    sim.run()
    legit = [p for p in dst.received_packets if p.payload.startswith(b"L")]
    attack = [p for p in dst.received_packets if p.payload.startswith(b"A")]
    return DdosResult(
        legit_sent=legit_packets,
        legit_delivered=len(legit),
        attack_sent=attack_packets,
        attack_delivered=len(attack),
        gated_drops=sum(s.ra_stats.gated_drops for s in switches),
    )


# --- UC4: evidence as documentation (audit trail) --------------------------------


@dataclass
class AuditTrailResult:
    matches: int
    log_root: bytes
    proofs_verify: bool
    verdict_accepted: bool
    #: Attested findings that never reached the collector (lost control
    #: messages) — a court-order log must know its own gaps.
    findings_lost: int = 0


def run_audit_trail(c2_flows: int = 3, benign_flows: int = 5) -> AuditTrailResult:
    """UC4: a scanner switch fingerprints C2 traffic; each finding is
    attested out-of-band and committed into a Merkle audit log whose
    inclusion proofs can later back a court-order application.
    """
    topo = Topology()
    topo.add_node("h-in", kind="host")
    topo.add_node("h-out", kind="host")
    topo.add_node("scanner")
    topo.add_node("collector", kind="host")
    topo.add_link("h-in", 1, "scanner", 1)
    topo.add_link("scanner", 2, "h-out", 1)
    topo.add_link("scanner", 3, "collector", 1)
    sim = Simulator(topo)
    h_in = Host("h-in", mac=1, ip=ip_to_int("10.0.0.1"))
    h_out = Host("h-out", mac=2, ip=ip_to_int("10.0.1.1"))
    collector = Host("collector", mac=3, ip=ip_to_int("10.0.2.1"))
    switch = NetworkAwarePeraSwitch(
        "scanner",
        config=EvidenceConfig(detail=DetailLevel.MINIMAL),
        appraiser_node="collector",
        out_of_band=True,
    )
    for node in (h_in, h_out, collector):
        sim.bind(node)
    sim.bind(switch)
    program = scanner_program()
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config("ctl", program)
    from repro.pisa.registers import Counter

    switch.pipeline.add_counter(Counter("c2_hits", size=16))
    _install_routing(switch, "10.0.1.0", 2)
    # C2 fingerprint: destination 10.66.0.0/16, UDP port 4444.
    switch.runtime.write("ctl", TableEntry(
        table="c2_patterns",
        keys=(
            MatchKey(MatchKind.TERNARY, ip_to_int("10.66.0.0"), mask=0xFFFF0000),
            MatchKey(MatchKind.TERNARY, 4444, mask=0xFFFF),
        ),
        action="count_and_punt", params=(0,), priority=5,
    ))
    _install_routing(switch, "10.66.0.0", 2)

    # The scanner attests each punted match out of band (UC4-A).
    matches: List[bytes] = []
    findings_lost = 0

    def on_cpu(ctx):
        nonlocal findings_lost
        matches.append(bytes(ctx.payload))
        switch.ra_stats.packets_attested += 1
        record = switch._produce_record(ctx, [])
        delivered = sim.send_control("scanner", "collector", record,
                                     size_hint=len(record.encode()))
        if not delivered:
            findings_lost += 1

    switch.handle_cpu_packet = on_cpu

    for index in range(c2_flows):
        sim.schedule(index * 1e-3, lambda seq=index: h_in.send_udp(
            dst_mac=9, dst_ip=ip_to_int("10.66.0.5"), src_port=3000,
            dst_port=4444, payload=b"beacon" + bytes([seq]),
        ))
    for index in range(benign_flows):
        sim.schedule(index * 1e-3, lambda seq=index: h_in.send_udp(
            dst_mac=h_out.mac, dst_ip=h_out.ip, src_port=3000,
            dst_port=80, payload=b"web" + bytes([seq]),
        ))
    sim.run()

    # The collector commits the attested findings into a Merkle log.
    records = [message for _, _, message in collector.control_received]
    leaves = [record.encode() for record in records] or [b"empty"]
    tree = MerkleTree(leaves)
    proofs_verify = all(
        tree.prove(i).verify(leaf, tree.root) for i, leaf in enumerate(leaves)
    )
    anchors = KeyRegistry()
    anchors.register_pair(switch.keys)
    verdicts = verify_record_batch(anchors, records)
    return AuditTrailResult(
        matches=len(matches),
        log_root=tree.root,
        proofs_verify=proofs_verify,
        verdict_accepted=bool(verdicts) and all(verdicts),
        findings_lost=findings_lost,
    )


# --- UC5 (continued): compliance via trusted redaction ----------------------------


@dataclass
class ComplianceResult:
    total_hops: int
    disclosed_hops: int
    officer_failures: List[str]
    hidden_places_leaked: bool

    @property
    def compliant(self) -> bool:
        return not self.officer_failures


def run_compliance_redaction(
    switch_count: int = 5, disclose: Tuple[int, ...] = (0, 4)
) -> ComplianceResult:
    """UC5's redaction story: "path evidence could be processed to
    redact details sensitive to the enterprise customer before giving
    the redacted evidence to a compliance officer."

    Traffic crosses ``switch_count`` attesting hops inside the cloud;
    the enterprise discloses only the ingress and egress hops to the
    officer, with a signed Merkle commitment to the full set. The
    officer verifies everything disclosed — and learns nothing about
    the hidden hops beyond their count.
    """
    from repro.core.redaction import redact

    config = EvidenceConfig(composition=CompositionMode.POINTWISE)
    programs = [ipv4_forwarding_program() for _ in range(switch_count)]
    sim, src, dst, switches = _pera_chain(switch_count, config, programs)
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src"] + [s.name for s in switches] + ["h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.POINTWISE,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=9000, dst_port=443,
        payload=b"regulated-workload",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(policy),
        ),
    )
    sim.run()
    records = decode_record_stack(dst.received_packets[0].ra_shim.body)

    enterprise = KeyRegistry()
    from repro.crypto.keys import KeyPair

    holder = KeyPair.generate("enterprise")
    enterprise.register_pair(holder)
    switch_anchors = KeyRegistry()
    for switch in switches:
        switch_anchors.register_pair(switch.keys)

    bundle = redact(records, list(disclose), holder)
    failures = bundle.verify(enterprise, switch_anchors)
    disclosed_places = {d.record.place for d in bundle.disclosed}
    hidden = {s.name for s in switches} - {
        records[i].place for i in disclose
    }
    leaked = bool(disclosed_places & hidden)
    return ComplianceResult(
        total_hops=bundle.total_records,
        disclosed_hops=len(bundle.disclosed),
        officer_failures=failures,
        hidden_places_leaked=leaked,
    )


# --- UC5: cross-referenced host + network attestation -----------------------------


@dataclass
class CrossReferencedResult:
    host_evidence_ok: bool
    path_verdict: PathVerdict
    flow_allowed: bool


def run_cross_referenced(
    verified_tls: bool = True, switch_count: int = 2
) -> CrossReferencedResult:
    """UC5: "TLS packets that were produced by a verified implementation
    could be allowed to leave the network, while packets produced by
    un-verified implementations are blocked."

    Host-based Copland evidence attests the sender's TLS stack; the
    network's path evidence attests the forwarding path. The egress
    decision requires both.
    """
    # Host side: a Copland VM measuring the TLS stack component.
    vm = CoplandVM()
    vm.register(Place("gateway"))
    host_place = vm.register(Place("sender"))
    host_place.install_component("tls", b"verified-tls-1.3-build")
    if not verified_tls:
        host_place.corrupt_component("tls", b"openssl-custom-fork")
    evidence = vm.execute(parse_phrase("@sender [rot sender tls -> !]"),
                          at_place="gateway")
    golden = digest(b"verified-tls-1.3-build", domain="component-measurement")
    host_anchors = KeyRegistry()
    host_anchors.register_pair(host_place.keypair)
    measurement = evidence.find_measurements()[0]
    signature_ok = host_anchors.verify(
        "sender", evidence.signed_payload(), evidence.signature
    )
    host_ok = signature_ok and measurement.value == golden

    # Network side: AP1-style path attestation.
    config = EvidenceConfig(composition=CompositionMode.CHAINED)
    programs = [ipv4_forwarding_program() for _ in range(switch_count)]
    sim, src, dst, switches = _pera_chain(switch_count, config, programs)
    appraiser = _appraiser_for(switches, programs)
    path = ["h-src"] + [s.name for s in switches] + ["h-dst"]
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(), path=path,
        bindings={"client": "h-dst"}, composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=5000, dst_port=443,
        payload=b"tls-client-hello",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY, body=encode_compiled_policy(policy)
        ),
    )
    sim.run()
    path_verdict = appraiser.appraise_packet(
        dst.received_packets[0], compiled=policy
    )
    return CrossReferencedResult(
        host_evidence_ok=host_ok,
        path_verdict=path_verdict,
        flow_allowed=host_ok and path_verdict.accepted,
    )
