"""Compile hybrid policies for concrete paths (paper §5.2).

"After authoring an RA policy, how do we deploy it? The policy will be
compiled by the Relying Party and serialized into an options header in
the transport layer, to be evaluated along the path of traffic that it
is sending out."

Compilation instantiates the policy's place abstraction: ∀-variables
either collapse (the per-hop variable *is* whatever hop evaluates the
directive) or resolve through the relying party's ``bindings`` (the
endpoints it knows, e.g. ``client → h-dst``). The result is a
:class:`CompiledPolicy`: one :class:`HopDirective` every attesting hop
interprets, plus the terminal and path constraints the appraiser
checks afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.copland.ast import Asp, At, Linear, Phrase, Sign
from repro.core.hybrid_ast import (
    Embedded,
    Forall,
    Guard,
    HybridAt,
    HybridNode,
    HybridPolicy,
    HybridSeq,
    PathStar,
)
from repro.netkat.ast import (
    And,
    Not,
    Or,
    Predicate,
    PTrue,
    Test,
)
from repro.netkat.printer import predicate_to_text
from repro.pera.config import CompositionMode, DetailLevel
from repro.util.errors import PolicyError
from repro.util.ids import short_id


@dataclass(frozen=True)
class HopDirective:
    """What one attesting hop must do with a policy-carrying packet."""

    test_text: str = ""  # NetKAT predicate source; "" = unconditional
    attest: Tuple[str, ...] = ()  # attestation property arguments
    detail: DetailLevel = DetailLevel.MINIMAL
    composition: CompositionMode = CompositionMode.CHAINED
    sign: bool = True
    out_of_band_to: str = ""  # "" = push evidence in-band


@dataclass(frozen=True)
class CompiledPolicy:
    """A policy instantiated for a concrete traffic path."""

    policy_id: str
    relying_party: str
    nonce: bytes
    appraiser: str
    hop: HopDirective
    terminal_place: str = ""
    # Ordered (place, function) attestations the path must exhibit (AP3).
    required_functions: Tuple[Tuple[str, str], ...] = ()
    min_attested_hops: int = 0


def _substitute(pred: Predicate, bindings: Dict[str, str], collapse: Tuple[str, ...]) -> Predicate:
    """Resolve ∀-variables inside a guard predicate.

    Tests whose value is a collapsed per-hop variable become true (the
    evaluating hop *is* that variable); values bound by the RP become
    their concrete names.
    """
    if isinstance(pred, Test):
        if isinstance(pred.value, str):
            if pred.value in collapse:
                return PTrue()
            if pred.value in bindings:
                return Test(pred.field, bindings[pred.value])
        return pred
    if isinstance(pred, And):
        return And(
            _substitute(pred.left, bindings, collapse),
            _substitute(pred.right, bindings, collapse),
        )
    if isinstance(pred, Or):
        return Or(
            _substitute(pred.left, bindings, collapse),
            _substitute(pred.right, bindings, collapse),
        )
    if isinstance(pred, Not):
        return Not(_substitute(pred.pred, bindings, collapse))
    return pred


@dataclass
class _Extraction:
    """What a walk over one side of a *⇒ found."""

    test: Optional[Predicate] = None
    attest_args: Tuple[str, ...] = ()
    sign: bool = False
    appraiser: str = ""
    places: List[str] = field(default_factory=list)
    functions: List[Tuple[str, str]] = field(default_factory=list)


def _phrase_attests(phrase: Phrase) -> Tuple[Tuple[str, ...], bool]:
    """Find attest() args and whether the phrase signs."""
    attest_args: Tuple[str, ...] = ()
    signs = False

    def visit(node: Phrase) -> None:
        nonlocal attest_args, signs
        if isinstance(node, Asp) and node.name == "attest":
            attest_args = node.args
        elif isinstance(node, Sign):
            signs = True
        elif isinstance(node, Linear):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, At):
            visit(node.phrase)

    visit(phrase)
    return attest_args, signs


def _extract(
    node: HybridNode,
    out: _Extraction,
    current_place: str = "",
    endpoints: Tuple[str, ...] = (),
) -> None:
    if isinstance(node, Guard):
        # A guard under an endpoint place (one the RP bound, like
        # ``peer1``) tests that endpoint, not every hop — only guards
        # over per-hop places become the hop's ▶ test. Multiple hop
        # guards conjoin (a hop must pass all of them).
        if current_place not in endpoints:
            if out.test is None:
                out.test = node.test
            else:
                out.test = And(out.test, node.test)
        _extract(node.body, out, current_place, endpoints)
    elif isinstance(node, HybridAt):
        out.places.append(node.place)
        _extract(node.body, out, node.place, endpoints)
    elif isinstance(node, HybridSeq):
        _extract(node.left, out, current_place, endpoints)
        _extract(node.right, out, current_place, endpoints)
    elif isinstance(node, Embedded):
        attest_args, signs = _phrase_attests(node.phrase)
        if isinstance(node.phrase, At):
            out.places.append(node.phrase.place)
            if node.phrase.place == "Appraiser":
                out.appraiser = node.phrase.place
            current_place = node.phrase.place
        if attest_args:
            out.attest_args = out.attest_args or attest_args
            if current_place:
                for arg in attest_args:
                    out.functions.append((current_place, arg))
        if signs:
            out.sign = True
    elif isinstance(node, Forall):
        _extract(node.body, out, current_place, endpoints)
    elif isinstance(node, PathStar):
        _extract(node.per_hop, out, current_place, endpoints)
        _extract(node.terminal, out, current_place, endpoints)
    else:
        raise PolicyError(f"unknown hybrid node {type(node).__name__}")


def compile_policy_for_path(
    policy: HybridPolicy,
    path: List[str],
    bindings: Optional[Dict[str, str]] = None,
    nonce: bytes = b"",
    detail: DetailLevel = DetailLevel.MINIMAL,
    composition: CompositionMode = CompositionMode.CHAINED,
    out_of_band: bool = False,
    min_attested_hops: Optional[int] = None,
) -> CompiledPolicy:
    """Instantiate ``policy`` for the concrete ``path``.

    ``bindings`` resolves ∀-variables the relying party knows (its own
    endpoints); remaining variables collapse onto "whichever hop is
    evaluating". ``detail``/``composition`` choose the Fig. 4 point the
    evidence should use; ``out_of_band`` selects the Fig. 2 variant.
    """
    bindings = dict(bindings or {})
    body = policy.body
    collapse: Tuple[str, ...] = ()
    while isinstance(body, Forall):
        collapse = collapse + tuple(
            v for v in body.variables if v not in bindings
        )
        body = body.body

    if isinstance(body, PathStar):
        per_hop, terminal = body.per_hop, body.terminal
    else:
        per_hop, terminal = body, None

    endpoints = tuple(bindings)
    hop_extraction = _Extraction()
    _extract(per_hop, hop_extraction, endpoints=endpoints)
    terminal_extraction = _Extraction()
    if terminal is not None:
        _extract(terminal, terminal_extraction, endpoints=endpoints)

    test_text = ""
    if hop_extraction.test is not None:
        resolved = _substitute(hop_extraction.test, bindings, collapse)
        if not isinstance(resolved, PTrue):
            test_text = predicate_to_text(resolved)

    appraiser = hop_extraction.appraiser or terminal_extraction.appraiser or "Appraiser"

    terminal_place = ""
    for place in terminal_extraction.places:
        if place == "Appraiser":
            continue
        terminal_place = bindings.get(place, place)
        break

    required: List[Tuple[str, str]] = []
    for place, function in hop_extraction.functions + terminal_extraction.functions:
        resolved_place = bindings.get(place, place)
        resolved_function = bindings.get(function, function)
        # Per-hop collapsed variables match any hop ("*").
        if place in collapse:
            resolved_place = "*"
        required.append((resolved_place, resolved_function))

    switch_hops = max(0, len(path) - 2)  # endpoints are hosts
    return CompiledPolicy(
        policy_id=short_id(
            policy.name.encode() + b"|" + nonce + b"|" + "/".join(path).encode()
        ),
        relying_party=policy.relying_party,
        nonce=nonce,
        appraiser=appraiser,
        hop=HopDirective(
            test_text=test_text,
            attest=hop_extraction.attest_args,
            detail=detail,
            composition=composition,
            sign=hop_extraction.sign,
            out_of_band_to=appraiser if out_of_band else "",
        ),
        terminal_place=terminal_place,
        required_functions=tuple(required),
        min_attested_hops=(
            min_attested_hops if min_attested_hops is not None else switch_hops
        ),
    )
