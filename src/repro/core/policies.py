"""The attestation policies of Table 1, ready-made.

Each function returns the :class:`~repro.core.hybrid_ast.HybridPolicy`
for one row of the paper's Table 1, built from its concrete syntax so
the policies in this library are *exactly* what the parser accepts.
"""

from __future__ import annotations

from repro.core.hybrid_ast import HybridPolicy
from repro.core.hybrid_parser import parse_hybrid_policy

AP1_TEXT = """
*bank<n, X> :
  forall hop, client :
    (@hop [ {attests = 1} |> attest(X) -> ! ]
       -+> @Appraiser [ appraise -> store(n) ])
    *=> @client [ {switch = client} |>
          (@ks [av us bmon -> !] -<- @us [bmon us exts -> !]) ]
"""

AP2_TEXT = """
*scanner<P> :
  @scanner [ {pattern = 1} |> (attest(P) -> !) ]
    -+> @Appraiser [ appraise -> store ]
"""

AP3_TEXT = """
*pathCheck<F1, F2, Peer1, Peer2> :
  forall p, q, r, peer1, peer2 :
    (@peer1 [ {switch = peer1} |> ! ]
       -+> @p [ attest(F1) -> ! ]
       -+> @q [ attest(F2) -> ! ]
       -+> @Appraiser [ appraise -> store ])
    *=> (@r [ {q_test = 1} |> ! ]
       -+> @peer2 [ {switch = peer2} |> ! ]
       -+> @Appraiser [ appraise -> store ])
"""


def ap1_bank_path_attestation() -> HybridPolicy:
    """AP1: the bank example with path attestation (UC5 + UC1).

    Each hop satisfying its key test (``Khop``, here rendered as the
    guard ``attests = 1``) attests property ``X`` — "such as which P4
    program and tables were used for forwarding" — signs, and sends the
    evidence to the appraiser; at the path's end the client runs the
    §4.2 host-measurement protocol (the blue original in the paper).
    """
    return parse_hybrid_policy(AP1_TEXT, name="AP1")


def ap2_scanner_audit() -> HybridPolicy:
    """AP2: a switch scans for a traffic pattern P (UC4).

    "If the test succeeds then the test result is signed and sent to
    the Appraiser for storing" — RA's audit trail can then be
    referenced by other actions (e.g. a court order application).
    """
    return parse_hybrid_policy(AP2_TEXT, name="AP2")


def ap3_path_check() -> HybridPolicy:
    """AP3: attested dataplane programs on a path (UC2 + UC3).

    Functions F1 and F2 run in abstract places p and q; p passes its
    evidence to q before it reaches the Appraiser; between q and r no
    RA support is required.
    """
    return parse_hybrid_policy(AP3_TEXT, name="AP3")
