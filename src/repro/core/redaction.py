"""Trusted redaction of path evidence (use case UC5).

"Path evidence could be processed to redact details sensitive to the
enterprise customer before giving the redacted evidence to a
compliance officer. By using host-based RA, the customer can meet
regulatory compliance obligations without disclosing unnecessary,
sensitive information to the regulator."

Mechanism: the evidence holder builds a Merkle tree over the hop
records and *signs the root*. A :class:`RedactedEvidence` bundle then
discloses only chosen records, each with its inclusion proof. The
compliance officer can verify (a) the root signature — the holder
vouches for the full set, (b) each disclosed record's membership and
its own switch signature, and (c) the total record count — so "we
showed you 2 of 7 hops" is itself verifiable, while the 5 hidden hops
reveal nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.pera.records import HopRecord
from repro.util.errors import VerificationError

_ROOT_DOMAIN = b"redacted-path-evidence|"


@dataclass(frozen=True)
class DisclosedRecord:
    """One revealed hop: the record plus its membership proof."""

    record: HopRecord
    proof: MerkleProof


@dataclass(frozen=True)
class RedactedEvidence:
    """A verifiable partial view of a path's evidence."""

    holder: str  # who performed the redaction (signs the root)
    root: bytes
    total_records: int
    disclosed: Tuple[DisclosedRecord, ...]
    root_signature: bytes

    @staticmethod
    def _root_payload(holder: str, root: bytes, total: int) -> bytes:
        return _ROOT_DOMAIN + holder.encode() + b"|" + root + total.to_bytes(
            4, "big"
        )

    def verify(
        self,
        holder_anchors: KeyRegistry,
        switch_anchors: KeyRegistry,
        pseudonym_signers: Dict[str, str] = None,
    ) -> List[str]:
        """Return the list of verification failures (empty = valid)."""
        failures: List[str] = []
        if not holder_anchors.verify(
            self.holder,
            self._root_payload(self.holder, self.root, self.total_records),
            self.root_signature,
        ):
            failures.append("redaction root signature invalid")
        pseudonym_signers = pseudonym_signers or {}
        for index, item in enumerate(self.disclosed):
            if not item.proof.verify(item.record.encode(), self.root):
                failures.append(
                    f"disclosed record {index}: not a member of the "
                    "committed evidence set"
                )
            if item.proof.leaf_count != self.total_records:
                failures.append(
                    f"disclosed record {index}: inconsistent total count"
                )
            signer = pseudonym_signers.get(item.record.place, item.record.place)
            if not item.record.verify(switch_anchors, signer=signer):
                failures.append(
                    f"disclosed record {index} ({item.record.place}): "
                    "switch signature invalid"
                )
        return failures


def redact(
    records: Sequence[HopRecord],
    disclose_indices: Sequence[int],
    holder_keys: KeyPair,
) -> RedactedEvidence:
    """Commit to ``records`` and disclose only ``disclose_indices``."""
    if not records:
        raise VerificationError("cannot redact an empty evidence set")
    for index in disclose_indices:
        if not 0 <= index < len(records):
            raise VerificationError(
                f"disclosure index {index} out of range [0, {len(records)})"
            )
    tree = MerkleTree([record.encode() for record in records])
    disclosed = tuple(
        DisclosedRecord(record=records[i], proof=tree.prove(i))
        for i in sorted(set(disclose_indices))
    )
    payload = RedactedEvidence._root_payload(
        holder_keys.owner, tree.root, len(records)
    )
    return RedactedEvidence(
        holder=holder_keys.owner,
        root=tree.root,
        total_records=len(records),
        disclosed=disclosed,
        root_signature=holder_keys.sign(payload),
    )
