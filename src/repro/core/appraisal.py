"""Path-evidence appraisal: judging a whole traffic path at once.

Plain appraisers (:mod:`repro.ra.appraiser`) judge one attester. Path
appraisal judges the *sequence* of hop records a packet accumulated:

1. every record's signature verifies (pseudonyms resolve to real
   signers through the operator-provided mapping — paper footnotes
   1-2),
2. every measurement matches the reference value for its place,
3. chained composition replays (each hop's chain head extends its
   predecessor's),
4. nothing was stripped: the shim's hop count must be consistent with
   the number of records (an adversary in the middle cannot silently
   remove evidence without the count disagreeing),
5. the path exhibits the policy's required function sequence in order
   (AP3: ``F1`` at some hop, later ``F2``),
6. the embedded nonce matches the relying party's and is fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.compiler import CompiledPolicy
from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyRegistry
from repro.faults.retry import FailMode
from repro.net.packet import Packet
from repro.pera.inertia import InertiaClass
from repro.evidence.verify import registry_verify_batch
from repro.pera.records import BatchedHopRecord, HopRecord, decode_record_stack
from repro.util.errors import CodecError
from repro.pisa.program import DataplaneProgram
from repro.ra.nonce import NonceManager
from repro.telemetry.audit import AuditKind, Check, explain_verdict
from repro.telemetry.instrument import Telemetry, default_telemetry
from repro.telemetry.tracing import TraceContext


def program_reference(program: DataplaneProgram) -> bytes:
    """The PROGRAM-class measurement an honest switch running
    ``program`` reports (what the RP registers as a golden value)."""
    return digest(program.measurement(), domain="pera-program")


def hardware_reference(hardware_identity: bytes) -> bytes:
    """The HARDWARE-class measurement for a known chassis."""
    return digest(hardware_identity, domain="pera-hardware")


@dataclass
class PathAppraisalPolicy:
    """What the path appraiser requires."""

    anchors: KeyRegistry
    # place -> inertia class -> golden measurement. Classes absent from
    # a place's entry are not checked for that place.
    reference_measurements: Dict[str, Dict[InertiaClass, bytes]] = field(
        default_factory=dict
    )
    # PROGRAM measurement value -> human function name (for AP3 checks).
    program_names: Dict[bytes, str] = field(default_factory=dict)
    # pseudonym -> real signer name (operator-supplied).
    pseudonym_signers: Dict[str, str] = field(default_factory=dict)
    # Accept fewer records than hops (sampling in use).
    allow_sampling: bool = False
    # Unknown attesting places are failures (else merely unchecked).
    strict_places: bool = True
    # How to conclude when appraisal itself is impossible (appraiser
    # unreachable, evidence undecodable). Fail-closed — reject — is the
    # default; fail-open trades safety for availability and is only for
    # operators who explicitly opt in.
    fail_mode: str = FailMode.CLOSED


@dataclass(frozen=True)
class PathVerdict:
    accepted: bool
    failures: Tuple[str, ...] = ()
    records_checked: int = 0
    hop_count: int = 0
    functions_seen: Tuple[str, ...] = ()
    #: The causal trace the appraised packet carried (when tracing ran).
    trace_id: Optional[str] = None
    #: True when no appraisal could run and the fail mode decided.
    degraded: bool = False

    def describe(self) -> str:
        status = "ACCEPTED" if self.accepted else "REJECTED"
        if self.degraded:
            status += " (DEGRADED)"
        lines = [
            f"{status}: {self.records_checked} records over "
            f"{self.hop_count} hops"
        ]
        if self.functions_seen:
            lines.append("functions: " + " -> ".join(self.functions_seen))
        lines.extend(f"failure: {f}" for f in self.failures)
        return "\n".join(lines)

    def explain(self, audit) -> str:
        """Join the audit journal into this verdict's per-hop story.

        ``audit`` may be a :class:`~repro.telemetry.instrument.Telemetry`,
        an :class:`~repro.telemetry.audit.AuditJournal`, or any iterable
        of audit events / exported event dicts. The narrative walks the
        packet's whole life — origin, each forwarding hop, every
        measurement/signature/evidence step — and ends with which check
        failed where (or why everything passed).
        """
        journal = getattr(audit, "audit", audit)
        events = getattr(journal, "events", journal)
        return explain_verdict(self, events)


class _Failures(List[str]):
    """A failure sink that remembers which check produced each message.

    Checks keep appending plain strings (their public behaviour is
    unchanged); the sink labels each with the check being run so the
    audit journal can report failures structurally.
    """

    def __init__(self) -> None:
        super().__init__()
        self.current: str = Check.OTHER
        self.detailed: List[Tuple[str, str]] = []

    def append(self, message: str) -> None:
        super().append(message)
        self.detailed.append((self.current, message))


class PathAppraiser:
    """Appraises accumulated path evidence against a compiled policy."""

    def __init__(
        self,
        name: str,
        policy: PathAppraisalPolicy,
        nonces: Optional[NonceManager] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.name = name
        self.policy = policy
        self.nonces = nonces
        self.telemetry = (
            telemetry if telemetry is not None else default_telemetry()
        )
        self.appraisals_performed = 0
        # Trace of the appraisal in flight (for per-check audit events).
        self._current_trace: Optional[TraceContext] = None

    # --- entry points ---------------------------------------------------------

    def appraise_packet(
        self, packet: Packet, compiled: Optional[CompiledPolicy] = None
    ) -> PathVerdict:
        """Appraise the evidence a delivered packet carries.

        Beyond :meth:`appraise_records`, having the packet itself
        enables the traffic-path binding check: when records carry
        packet digests, each must match the packet as that hop saw it,
        so evidence cannot be spliced onto different traffic.
        """
        tel = self.telemetry
        trace = packet.trace
        trace_id = trace.trace_id if trace is not None else None
        if packet.ra_shim is None:
            message = "packet carries no RA shim header"
            if tel.active:
                tel.audit_event(
                    AuditKind.CHECK_FAILED,
                    self.name,
                    trace=trace,
                    check=Check.SHIM,
                    message=message,
                )
                tel.audit_event(
                    AuditKind.VERDICT_ISSUED,
                    self.name,
                    trace=trace,
                    accepted=False,
                    records=0,
                    failures=1,
                )
            return PathVerdict(
                accepted=False, failures=(message,), trace_id=trace_id
            )
        try:
            # memoryview: the decoder walks the shim body zero-copy.
            records = decode_record_stack(memoryview(packet.ra_shim.body))
        except CodecError as exc:
            # Corrupted-in-flight evidence must reject, not crash.
            message = f"evidence stack undecodable: {exc}"
            if tel.active:
                tel.audit_event(
                    AuditKind.CHECK_FAILED,
                    self.name,
                    trace=trace,
                    check=Check.SHIM,
                    message=message,
                )
                tel.audit_event(
                    AuditKind.VERDICT_ISSUED,
                    self.name,
                    trace=trace,
                    accepted=False,
                    records=0,
                    failures=1,
                )
            return PathVerdict(
                accepted=False,
                failures=(message,),
                hop_count=packet.ra_shim.hop_count,
                trace_id=trace_id,
            )
        verdict = self.appraise_records(
            records,
            hop_count=packet.ra_shim.hop_count,
            compiled=compiled,
            trace=trace,
            _emit_verdict=False,
        )
        binding_failures = _Failures()
        binding_failures.current = Check.BINDING
        self._check_packet_binding(packet, records, binding_failures)
        if binding_failures:
            if tel.active:
                for check, message in binding_failures.detailed:
                    tel.audit_event(
                        AuditKind.CHECK_FAILED,
                        self.name,
                        trace=trace,
                        check=check,
                        message=message,
                    )
            verdict = PathVerdict(
                accepted=False,
                failures=verdict.failures + tuple(binding_failures),
                records_checked=verdict.records_checked,
                hop_count=verdict.hop_count,
                functions_seen=verdict.functions_seen,
                trace_id=verdict.trace_id,
            )
        if tel.active:
            self._emit_verdict_event(verdict, records, trace)
        return verdict

    def appraise_unavailable(
        self, reason: str, trace: Optional[TraceContext] = None
    ) -> PathVerdict:
        """Conclude without evidence: the appraisal path itself failed.

        Called when evidence never arrived (appraiser crash, OOB channel
        dead, all retries exhausted). The policy's ``fail_mode`` decides
        the verdict — rejecting under the default
        :data:`FailMode.CLOSED` — and the audit journal records the
        availability failure either way, so a degraded acceptance is
        never silent.
        """
        self.appraisals_performed += 1
        fail_open = self.policy.fail_mode == FailMode.OPEN
        message = f"appraisal unavailable: {reason}"
        verdict = PathVerdict(
            accepted=fail_open,
            failures=() if fail_open else (message,),
            trace_id=trace.trace_id if trace is not None else None,
            degraded=True,
        )
        tel = self.telemetry
        if tel.active:
            tel.audit_event(
                AuditKind.CHECK_FAILED,
                self.name,
                trace=trace,
                check=Check.AVAILABILITY,
                message=message,
            )
            tel.audit_event(
                AuditKind.VERDICT_ISSUED,
                self.name,
                trace=trace,
                accepted=verdict.accepted,
                records=0,
                failures=len(verdict.failures),
                degraded=True,
            )
        return verdict

    def _check_packet_binding(
        self, packet: Packet, records: List[HopRecord], failures: List[str]
    ) -> None:
        """Verify per-hop packet digests (traffic-path composition).

        Hop ``i`` digested the packet carrying the policy plus the
        first ``i`` records; the appraiser reconstructs each view and
        recomputes the digest. A changed payload (or header) breaks
        every digest at once.
        """
        if not any(r.packet_digest is not None for r in records):
            return
        if len(records) != packet.ra_shim.hop_count:
            # Sampled paths have hop-count gaps; per-hop views cannot
            # be reconstructed reliably, so the coverage check (not
            # this one) is the arbiter there.
            return
        from repro.core.wire import decode_compiled_policy, encode_compiled_policy
        from repro.net.headers import RaShimHeader

        shim = packet.ra_shim
        carried = decode_compiled_policy(shim.body)
        policy_bytes = (
            encode_compiled_policy(carried) if carried is not None else b""
        )
        base_flags = shim.flags & ~RaShimHeader.FLAG_EVIDENCE
        # Grow the record-stack prefix incrementally from each record's
        # cached node wire: the old per-step re-encode of records[:i]
        # made this walk quadratic in path length.
        body = policy_bytes
        for index, record in enumerate(records):
            if record.packet_digest is not None:
                flags = base_flags if index == 0 else (
                    base_flags | RaShimHeader.FLAG_EVIDENCE
                )
                view = packet.with_shim(RaShimHeader(
                    flags=flags,
                    hop_count=index,
                    body=body,
                ))
                expected = digest(view.encode(), domain="pera-packet")
                if record.packet_digest != expected:
                    failures.append(
                        f"record {index} ({record.place}): packet digest does "
                        "not match this traffic (evidence spliced?)"
                    )
                    return
            body += record.wire

    def appraise_records(
        self,
        records: List[HopRecord],
        hop_count: int,
        compiled: Optional[CompiledPolicy] = None,
        trace: Optional[TraceContext] = None,
        _emit_verdict: bool = True,
    ) -> PathVerdict:
        """Appraise a record stack; the shared core of both entry points.

        With telemetry active, each appraisal runs inside a
        ``core.appraise`` span and feeds a verdict counter plus a
        wall-clock verification-latency histogram; every failed check
        lands in the audit journal tagged with ``trace``.
        ``_emit_verdict`` lets :meth:`appraise_packet` defer the final
        VERDICT_ISSUED event until after its binding checks.
        """
        if not self.telemetry.active:
            return self._appraise_records(records, hop_count, compiled, trace)
        started = perf_counter()
        sim_started = self.telemetry.spans.clock.now
        tags = trace.span_args() if trace is not None else {}
        with self.telemetry.span(
            "core.appraise", track=self.name, records=len(records), **tags
        ):
            verdict = self._appraise_records(records, hop_count, compiled, trace)
        self.telemetry.histogram(
            "core.path_appraise_seconds", appraiser=self.name
        ).observe(perf_counter() - started)
        # Sim-clock sibling of the wall-clock histogram above: fully
        # deterministic, so latency distributions join the shard
        # byte-identity checks (see docs/SHARDING.md).
        self.telemetry.histogram(
            "core.path_appraise_sim_seconds", appraiser=self.name
        ).observe(self.telemetry.spans.clock.now - sim_started)
        self.telemetry.counter(
            "core.path_verdicts",
            appraiser=self.name,
            accepted=verdict.accepted,
        ).inc()
        if _emit_verdict:
            self._emit_verdict_event(verdict, records, trace)
        return verdict

    def _emit_verdict_event(
        self,
        verdict: PathVerdict,
        records: List[HopRecord],
        trace: Optional[TraceContext],
    ) -> None:
        self.telemetry.audit_event(
            AuditKind.VERDICT_ISSUED,
            self.name,
            trace=trace,
            digest=records[-1].content_digest if records else None,
            accepted=verdict.accepted,
            records=verdict.records_checked,
            failures=len(verdict.failures),
        )

    def _appraise_records(
        self,
        records: List[HopRecord],
        hop_count: int,
        compiled: Optional[CompiledPolicy] = None,
        trace: Optional[TraceContext] = None,
    ) -> PathVerdict:
        self.appraisals_performed += 1
        self._current_trace = trace
        failures = _Failures()
        failures.current = Check.SIGNATURE
        self._check_signatures(records, failures)
        failures.current = Check.MEASUREMENT
        self._check_measurements(records, failures)
        failures.current = Check.CHAIN
        self._check_chain(records, failures)
        failures.current = Check.COVERAGE
        self._check_coverage(records, hop_count, compiled, failures)
        functions = self._observed_functions(records)
        if compiled is not None:
            failures.current = Check.FUNCTION
            self._check_required_functions(functions, compiled, failures)
            failures.current = Check.NONCE
            self._check_nonce(compiled, failures)
        tel = self.telemetry
        if tel.active:
            for check, message in failures.detailed:
                tel.audit_event(
                    AuditKind.CHECK_FAILED,
                    self.name,
                    trace=trace,
                    check=check,
                    message=message,
                )
        return PathVerdict(
            accepted=not failures,
            failures=tuple(failures),
            records_checked=len(records),
            hop_count=hop_count,
            functions_seen=tuple(name for _, name in functions),
            trace_id=trace.trace_id if trace is not None else None,
        )

    # --- individual checks -------------------------------------------------------

    def _signer_for(self, place: str) -> str:
        return self.policy.pseudonym_signers.get(place, place)

    def _check_signatures(
        self, records: List[HopRecord], failures: List[str]
    ) -> None:
        tel = self.telemetry
        # Collect every record's pending (signer, payload, signature)
        # triple and settle all cache misses through one batched
        # multi-scalar Ed25519 check. Batched-mode records contribute
        # their epoch-root signature — still one real verification per
        # (switch, epoch), now sharing the batch with everything else —
        # and pay two SHA-256 hashes per tree level for the inclusion
        # proof afterwards. Failure messages and ``signature.verified``
        # audit events are emitted in the original per-record order, so
        # the journal stays byte-identical to sequential verification.
        items = []
        for record in records:
            signer = self._signer_for(record.place)
            if isinstance(record, BatchedHopRecord):
                items.append(
                    (
                        signer,
                        record.epoch_payload(),
                        record.root_signature,
                        record.epoch_payload_digest(),
                    )
                )
            else:
                items.append(
                    (
                        signer,
                        record.signed_payload(),
                        record.signature,
                        record.payload_digest(),
                    )
                )
        sig_ok = registry_verify_batch(self.policy.anchors, items) if items else []
        for index, record in enumerate(records):
            if isinstance(record, BatchedHopRecord):
                root_ok = sig_ok[index]
                proof_ok = root_ok and record.proof_ok()
                ok = root_ok and proof_ok
                if not root_ok:
                    failures.append(
                        f"record {index} ({record.place}): epoch root "
                        "signature invalid or signer untrusted"
                    )
                elif not proof_ok:
                    failures.append(
                        f"record {index} ({record.place}): Merkle proof "
                        "does not bind record to epoch root"
                    )
                event_detail = {"epoch": record.epoch_id}
            else:
                ok = sig_ok[index]
                if not ok:
                    failures.append(
                        f"record {index} ({record.place}): signature invalid "
                        "or signer untrusted"
                    )
                event_detail = {}
            if tel.active:
                tel.audit_event(
                    AuditKind.SIGNATURE_VERIFIED,
                    self.name,
                    trace=self._current_trace,
                    digest=record.content_digest,
                    ok=ok,
                    place=record.place,
                    record=index,
                    **event_detail,
                )

    def _check_measurements(
        self, records: List[HopRecord], failures: List[str]
    ) -> None:
        for index, record in enumerate(records):
            signer = self._signer_for(record.place)
            reference = self.policy.reference_measurements.get(signer)
            if reference is None:
                if self.policy.strict_places:
                    failures.append(
                        f"record {index} ({record.place}): no reference "
                        "values for this attester"
                    )
                continue
            for inertia, value in record.measurements:
                expected = reference.get(inertia)
                if expected is not None and value != expected:
                    failures.append(
                        f"record {index} ({record.place}): {inertia.name} "
                        "measurement does not match the vetted value"
                    )

    def _check_chain(self, records: List[HopRecord], failures: List[str]) -> None:
        chained = [r for r in records if r.chain_head is not None]
        if not chained:
            return
        if len(chained) != len(records):
            failures.append("some records are chained and some are not")
            return
        head = HashChain.GENESIS
        for index, record in enumerate(records):
            # The link is the record's cached content digest over its
            # measurement values — hashed once per record object, not
            # once per verification step.
            head = HashChain(head=head).extend(record.link_digest())
            if record.chain_head != head:
                failures.append(
                    f"record {index} ({record.place}): chain head does not "
                    "extend its predecessor (reordered or spliced evidence)"
                )
                return

    def _check_coverage(
        self,
        records: List[HopRecord],
        hop_count: int,
        compiled: Optional[CompiledPolicy],
        failures: List[str],
    ) -> None:
        if len(records) > hop_count:
            failures.append(
                f"{len(records)} records but only {hop_count} hops counted"
            )
        if not self.policy.allow_sampling and len(records) < hop_count:
            failures.append(
                f"evidence stripped: {hop_count} attesting hops but only "
                f"{len(records)} records"
            )
        if compiled is not None and len(records) < compiled.min_attested_hops:
            if not self.policy.allow_sampling:
                failures.append(
                    f"policy requires {compiled.min_attested_hops} attested "
                    f"hops, got {len(records)}"
                )

    def _observed_functions(
        self, records: List[HopRecord]
    ) -> List[Tuple[str, str]]:
        """(place, function-name) per record, where the program
        measurement maps to a known function."""
        observed: List[Tuple[str, str]] = []
        for record in records:
            value = record.measurement_for(InertiaClass.PROGRAM)
            if value is None:
                continue
            name = self.policy.program_names.get(value)
            if name is not None:
                observed.append((record.place, name))
        return observed

    def _check_required_functions(
        self,
        observed: List[Tuple[str, str]],
        compiled: CompiledPolicy,
        failures: List[str],
    ) -> None:
        required = [
            (place, function)
            for place, function in compiled.required_functions
            if function in set(self.policy.program_names.values())
        ]
        if not required:
            return
        position = 0
        for required_place, required_function in required:
            found = False
            while position < len(observed):
                place, function = observed[position]
                position += 1
                if function == required_function and (
                    required_place == "*" or required_place == place
                ):
                    found = True
                    break
            if not found:
                failures.append(
                    f"path lacks required function {required_function!r}"
                    + (
                        f" at {required_place!r}"
                        if required_place != "*"
                        else ""
                    )
                )
                return

    def _check_nonce(
        self, compiled: CompiledPolicy, failures: List[str]
    ) -> None:
        if not compiled.nonce:
            return
        if self.nonces is None:
            return
        problem = self.nonces.check(compiled.nonce)
        if problem is not None:
            failures.append(problem)
        else:
            self.nonces.consume(compiled.nonce)
