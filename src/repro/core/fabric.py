"""Leaf–spine traffic fabric: the sharded runner's scale workload.

A two-tier fabric of :class:`StaticFabricSwitch` nodes (analytic O(1)
next-hop tables — the fabric is regular, so routing needs no BFS) with
every host streaming packets to its partner host half the fabric away.
Every flow crosses the spine tier, which is exactly where
:func:`repro.net.sharding.partition_topology` cuts, so this workload
maximally exercises the cross-shard path.

This module feeds three consumers:

- ``benchmarks/bench_shard_scaling.py`` — pkts/sec vs shard count on a
  100+-switch fabric,
- ``tests/core/test_sharded_determinism.py`` — the seed-sweep
  byte-identity contract, including the chaos variant with an
  installed :class:`~repro.faults.FaultPlan`,
- the CI chaos-smoke job, which replays the campaign at ``shards=2``
  on the multiprocessing backend.

Send times are staggered so no two hosts transmit at the same instant:
same-time events at one destination arriving from *different* shards
are the one ordering the canonical merge cannot pin (see
docs/SHARDING.md), and a well-formed workload simply avoids minting
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultInjector, FaultPlan
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.shardrun import ScenarioSpec, ShardedResult, run_sharded
from repro.net.simulator import Node, Simulator
from repro.net.topology import Topology, leaf_spine

#: Gap between a host's consecutive sends.
_ROUND_GAP_S = 50e-6


class StaticFabricSwitch(Node):
    """A forwarding-only switch with a precomputed dst-ip → port map.

    No attestation, no telemetry of its own — this is the dataplane
    load generator, so per-packet work stays O(1) and benchmark numbers
    measure the event engine, not the switch model.
    """

    def __init__(self, name: str, ports_by_dst_ip: Dict[int, int]) -> None:
        super().__init__(name)
        self.ports_by_dst_ip = ports_by_dst_ip
        self.packets_forwarded = 0
        self.packets_dropped_unroutable = 0

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        if packet.ipv4 is None:
            return
        port = self.ports_by_dst_ip.get(packet.ipv4.dst)
        if port is None:
            self.packets_dropped_unroutable += 1
            return
        self.packets_forwarded += 1
        self.sim.transmit(self.name, port, packet)


@dataclass(frozen=True)
class FabricShape:
    """Dimensions of one leaf–spine fabric workload."""

    leaves: int = 8
    spines: int = 2
    hosts_per_leaf: int = 2
    flows_per_host: int = 4

    @property
    def switch_count(self) -> int:
        return self.leaves + self.spines

    @property
    def host_count(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def packets_offered(self) -> int:
        return self.host_count * self.flows_per_host


def _host_ip(leaf_index: int, host_index: int) -> int:
    return ip_to_int(f"10.{leaf_index % 250}.{host_index % 250}.1")


def _fabric_names(shape: FabricShape) -> Tuple[List[str], List[str]]:
    width = max(2, len(str(max(shape.leaves, shape.spines) - 1)))
    leaf_names = [f"leaf{i:0{width}d}" for i in range(shape.leaves)]
    spine_names = [f"spine{i:0{width}d}" for i in range(shape.spines)]
    return leaf_names, spine_names


def fabric_topology(shape: FabricShape) -> Topology:
    return leaf_spine(shape.leaves, shape.spines, shape.hosts_per_leaf)


def _fabric_chaos_plan(seed: int, shape: FabricShape) -> FaultPlan:
    """Mid-run turbulence on two uplinks: extra loss on one, a flap on
    another — enough to drop packets through the shard-invariant fault
    streams without silencing the fabric."""
    leaf_names, spine_names = _fabric_names(shape)
    plan = FaultPlan(seed=seed)
    plan.link_loss(2 * _ROUND_GAP_S, leaf_names[0], spine_names[0], rate=0.4)
    plan.link_loss(
        (shape.flows_per_host + 2) * _ROUND_GAP_S,
        leaf_names[0],
        spine_names[0],
        rate=0.0,
    )
    if shape.leaves > 1:
        plan.link_flap(
            3 * _ROUND_GAP_S,
            leaf_names[1],
            spine_names[-1],
            down_s=0.6 * _ROUND_GAP_S,
            up_s=1.3 * _ROUND_GAP_S,
            cycles=2,
        )
    return plan


def _fabric_build(sim, shape: FabricShape, chaos: bool):
    """Bind the full fabric into ``sim`` and schedule every flow.

    Runs identically on every shard; ownership gates single out who
    actually transmits. Each host ``(leaf l, slot j)`` streams
    ``flows_per_host`` packets to the host at the same slot half the
    fabric away — every packet crosses a spine, i.e. the shard cut.
    """
    leaf_names, spine_names = _fabric_names(shape)
    hosts: List[Tuple[int, int, str]] = [
        (li, j, f"h-{leaf}-{j}")
        for li, leaf in enumerate(leaf_names)
        for j in range(shape.hosts_per_leaf)
    ]
    ip_of = {name: _host_ip(li, j) for li, j, name in hosts}
    mac_of = {name: index + 1 for index, (_, _, name) in enumerate(hosts)}

    for li, leaf in enumerate(leaf_names):
        table: Dict[int, int] = {}
        for lj, j, name in hosts:
            if lj == li:
                table[ip_of[name]] = 1 + j
            else:
                # Deterministic ECMP: the destination leaf picks the
                # spine, so both directions of a flow agree on nothing
                # but the math.
                table[ip_of[name]] = (
                    shape.hosts_per_leaf + 1 + (lj % shape.spines)
                )
        sim.bind(StaticFabricSwitch(leaf, table))
    for spine in spine_names:
        table = {ip_of[name]: 1 + lj for lj, _, name in hosts}
        sim.bind(StaticFabricSwitch(spine, table))

    host_objs: Dict[str, Host] = {}
    for li, j, name in hosts:
        host = Host(name, mac=mac_of[name], ip=ip_of[name])
        sim.bind(host)
        host_objs[name] = host

    injector = None
    if chaos:
        injector = FaultInjector(_fabric_chaos_plan(sim.seed, shape))
        injector.attach(sim)

    half = max(1, shape.leaves // 2)
    stagger = _ROUND_GAP_S / (len(hosts) + 1)
    for round_index in range(shape.flows_per_host):
        for host_index, (li, j, name) in enumerate(hosts):
            peer = f"h-{leaf_names[(li + half) % shape.leaves]}-{j}"
            when = round_index * _ROUND_GAP_S + host_index * stagger
            sim.schedule_on(
                name,
                when,
                lambda s=host_objs[name], ip=ip_of[peer], mac=mac_of[peer],
                seq=round_index: s.send_udp(
                    dst_mac=mac, dst_ip=ip,
                    src_port=40000, dst_port=9000,
                    payload=seq.to_bytes(2, "big"),
                ),
            )
    return {"hosts": host_objs, "injector": injector, "shape": shape}


def _fabric_harvest(sim, ctx):
    delivered = {
        name: len(host.received)
        for name, host in ctx["hosts"].items()
        if sim.owns(name)
    }
    return {
        "delivered": sum(delivered.values()),
        "delivered_by_host": delivered,
    }


def fabric_spec(shape: FabricShape, chaos: bool = False) -> ScenarioSpec:
    """The fabric workload as a runner-ready :class:`ScenarioSpec`."""
    return ScenarioSpec(
        topology=partial(fabric_topology, shape),
        build=partial(_fabric_build, shape=shape, chaos=chaos),
        harvest=_fabric_harvest,
    )


@dataclass
class FabricRunResult:
    """Merged outcome of one sharded fabric run."""

    shape: FabricShape
    delivered: int
    result: ShardedResult

    @property
    def packets_transmitted(self) -> int:
        return self.result.stats.packets_transmitted


def run_fabric_monolith(
    shape: Optional[FabricShape] = None,
    seed: int = 0,
    chaos: bool = False,
) -> Tuple[Simulator, int]:
    """The same workload on the unpartitioned :class:`Simulator`.

    The scaling benchmark's baseline row: no windows, no barriers, no
    merge — just the plain event loop. ``schedule_on`` is an identity
    on the monolith, so the build is shared verbatim with the sharded
    path. Returns ``(sim, packets_delivered)``.
    """
    shape = shape or FabricShape()
    sim = Simulator(fabric_topology(shape), seed=seed)
    ctx = _fabric_build(sim, shape=shape, chaos=chaos)
    sim.run()
    delivered = sum(len(host.received) for host in ctx["hosts"].values())
    return sim, delivered


def run_fabric(
    shape: Optional[FabricShape] = None,
    shards: int = 1,
    backend: str = "inline",
    seed: int = 0,
    chaos: bool = False,
    telemetry_active: bool = True,
) -> FabricRunResult:
    """Run the fabric workload sharded and return the merged result."""
    shape = shape or FabricShape()
    result = run_sharded(
        fabric_spec(shape, chaos=chaos),
        shards=shards,
        backend=backend,
        seed=seed,
        telemetry_active=telemetry_active,
    )
    delivered = sum(out["delivered"] for out in result.outputs)
    return FabricRunResult(shape=shape, delivered=delivered, result=result)


__all__ = [
    "FabricShape",
    "FabricRunResult",
    "StaticFabricSwitch",
    "fabric_spec",
    "fabric_topology",
    "run_fabric",
    "run_fabric_monolith",
    "run_sharded",
]
