"""Leaf–spine traffic fabric: the sharded runner's scale workload.

A two-tier fabric of :class:`StaticFabricSwitch` nodes (analytic O(1)
next-hop tables — the fabric is regular, so routing needs no BFS) with
every host streaming packets to its partner host half the fabric away.
Every flow crosses the spine tier, which is exactly where
:func:`repro.net.sharding.partition_topology` cuts, so this workload
maximally exercises the cross-shard path.

This module feeds three consumers:

- ``benchmarks/bench_shard_scaling.py`` — pkts/sec vs shard count on a
  100+-switch fabric,
- ``tests/core/test_sharded_determinism.py`` — the seed-sweep
  byte-identity contract, including the chaos variant with an
  installed :class:`~repro.faults.FaultPlan`,
- the CI chaos-smoke job, which replays the campaign at ``shards=2``
  on the multiprocessing backend.

Send times are staggered so no two hosts transmit at the same instant:
same-time events at one destination arriving from *different* shards
are the one ordering the canonical merge cannot pin (see
docs/SHARDING.md), and a well-formed workload simply avoids minting
them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.faults import FaultInjector, FaultPlan
from repro.net.controller import RoutingController
from repro.net.headers import IPPROTO_UDP, RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.routing import (
    EcmpSelector,
    FlowletTable,
    RoutingMode,
    all_pairs_next_hops,
    predict_multipath_path,
)
from repro.net.shardrun import ScenarioSpec, ShardedResult, run_sharded
from repro.net.simulator import Node, Simulator
from repro.telemetry.instrument import Telemetry
from repro.telemetry.tracing import reset_trace_ids
from repro.telemetry.health import (
    AbsenceRule,
    HealthReport,
    ImbalanceRule,
    LevelRule,
    ThresholdRule,
    evaluate_health,
    fold_alerts,
)
from repro.telemetry.timeseries import (
    SamplingSpec,
    install_recorder,
    merge_frame_streams,
    renumber_frame_times,
    timeseries_export,
    timeseries_snapshot,
)
from repro.net.qdisc import QueueConfig
from repro.net.topology import Topology, fat_tree, leaf_spine
from repro.pera.config import (
    BatchingSpec,
    CompositionMode,
    DetailLevel,
    EvidenceConfig,
)
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord, verify_record_batch
from repro.pisa.programs import fabric_multipath_program, fabric_rogue_program
from repro.util.ids import spawn_seed
from repro.workload.flows import (
    FlowEngine,
    FlowSink,
    FlowSpec,
    decode_flow_payload,
)
from repro.workload.mixes import (
    elephant_mice_mix,
    incast_mix,
    web_session_mix,
)

#: Gap between a host's consecutive sends.
_ROUND_GAP_S = 50e-6


class StaticFabricSwitch(Node):
    """A forwarding-only switch with a precomputed dst-ip → port map.

    No attestation, no telemetry of its own — this is the dataplane
    load generator, so per-packet work stays O(1) and benchmark numbers
    measure the event engine, not the switch model.
    """

    def __init__(self, name: str, ports_by_dst_ip: Dict[int, int]) -> None:
        super().__init__(name)
        self.ports_by_dst_ip = ports_by_dst_ip
        self.packets_forwarded = 0
        self.packets_dropped_unroutable = 0

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        if packet.ipv4 is None:
            return
        port = self.ports_by_dst_ip.get(packet.ipv4.dst)
        if port is None:
            self.packets_dropped_unroutable += 1
            return
        self.packets_forwarded += 1
        self.sim.transmit(self.name, port, packet)


@dataclass(frozen=True)
class FabricShape:
    """Dimensions of one leaf–spine fabric workload."""

    leaves: int = 8
    spines: int = 2
    hosts_per_leaf: int = 2
    flows_per_host: int = 4

    @property
    def switch_count(self) -> int:
        return self.leaves + self.spines

    @property
    def host_count(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def packets_offered(self) -> int:
        return self.host_count * self.flows_per_host


def _host_ip(leaf_index: int, host_index: int) -> int:
    return ip_to_int(f"10.{leaf_index % 250}.{host_index % 250}.1")


def _fabric_names(shape: FabricShape) -> Tuple[List[str], List[str]]:
    width = max(2, len(str(max(shape.leaves, shape.spines) - 1)))
    leaf_names = [f"leaf{i:0{width}d}" for i in range(shape.leaves)]
    spine_names = [f"spine{i:0{width}d}" for i in range(shape.spines)]
    return leaf_names, spine_names


def fabric_topology(shape: FabricShape) -> Topology:
    return leaf_spine(shape.leaves, shape.spines, shape.hosts_per_leaf)


def _fabric_chaos_plan(seed: int, shape: FabricShape) -> FaultPlan:
    """Mid-run turbulence on two uplinks: extra loss on one, a flap on
    another — enough to drop packets through the shard-invariant fault
    streams without silencing the fabric."""
    leaf_names, spine_names = _fabric_names(shape)
    plan = FaultPlan(seed=seed)
    plan.link_loss(2 * _ROUND_GAP_S, leaf_names[0], spine_names[0], rate=0.4)
    plan.link_loss(
        (shape.flows_per_host + 2) * _ROUND_GAP_S,
        leaf_names[0],
        spine_names[0],
        rate=0.0,
    )
    if shape.leaves > 1:
        plan.link_flap(
            3 * _ROUND_GAP_S,
            leaf_names[1],
            spine_names[-1],
            down_s=0.6 * _ROUND_GAP_S,
            up_s=1.3 * _ROUND_GAP_S,
            cycles=2,
        )
    return plan


def _fabric_build(sim, shape: FabricShape, chaos: bool):
    """Bind the full fabric into ``sim`` and schedule every flow.

    Runs identically on every shard; ownership gates single out who
    actually transmits. Each host ``(leaf l, slot j)`` streams
    ``flows_per_host`` packets to the host at the same slot half the
    fabric away — every packet crosses a spine, i.e. the shard cut.
    """
    leaf_names, spine_names = _fabric_names(shape)
    hosts: List[Tuple[int, int, str]] = [
        (li, j, f"h-{leaf}-{j}")
        for li, leaf in enumerate(leaf_names)
        for j in range(shape.hosts_per_leaf)
    ]
    ip_of = {name: _host_ip(li, j) for li, j, name in hosts}
    mac_of = {name: index + 1 for index, (_, _, name) in enumerate(hosts)}

    for li, leaf in enumerate(leaf_names):
        table: Dict[int, int] = {}
        for lj, j, name in hosts:
            if lj == li:
                table[ip_of[name]] = 1 + j
            else:
                # Deterministic ECMP: the destination leaf picks the
                # spine, so both directions of a flow agree on nothing
                # but the math.
                table[ip_of[name]] = (
                    shape.hosts_per_leaf + 1 + (lj % shape.spines)
                )
        sim.bind(StaticFabricSwitch(leaf, table))
    for spine in spine_names:
        table = {ip_of[name]: 1 + lj for lj, _, name in hosts}
        sim.bind(StaticFabricSwitch(spine, table))

    host_objs: Dict[str, Host] = {}
    for li, j, name in hosts:
        host = Host(name, mac=mac_of[name], ip=ip_of[name])
        sim.bind(host)
        host_objs[name] = host

    injector = None
    if chaos:
        injector = FaultInjector(_fabric_chaos_plan(sim.seed, shape))
        injector.attach(sim)

    half = max(1, shape.leaves // 2)
    stagger = _ROUND_GAP_S / (len(hosts) + 1)
    for round_index in range(shape.flows_per_host):
        for host_index, (li, j, name) in enumerate(hosts):
            peer = f"h-{leaf_names[(li + half) % shape.leaves]}-{j}"
            when = round_index * _ROUND_GAP_S + host_index * stagger
            sim.schedule_on(
                name,
                when,
                lambda s=host_objs[name], ip=ip_of[peer], mac=mac_of[peer],
                seq=round_index: s.send_udp(
                    dst_mac=mac, dst_ip=ip,
                    src_port=40000, dst_port=9000,
                    payload=seq.to_bytes(2, "big"),
                ),
            )
    return {"hosts": host_objs, "injector": injector, "shape": shape}


def _fabric_harvest(sim, ctx):
    delivered = {
        name: len(host.received)
        for name, host in ctx["hosts"].items()
        if sim.owns(name)
    }
    return {
        "delivered": sum(delivered.values()),
        "delivered_by_host": delivered,
    }


def fabric_spec(shape: FabricShape, chaos: bool = False) -> ScenarioSpec:
    """The fabric workload as a runner-ready :class:`ScenarioSpec`."""
    return ScenarioSpec(
        topology=partial(fabric_topology, shape),
        build=partial(_fabric_build, shape=shape, chaos=chaos),
        harvest=_fabric_harvest,
    )


@dataclass
class FabricRunResult:
    """Merged outcome of one sharded fabric run."""

    shape: FabricShape
    delivered: int
    result: ShardedResult

    @property
    def packets_transmitted(self) -> int:
        return self.result.stats.packets_transmitted


def run_fabric_monolith(
    shape: Optional[FabricShape] = None,
    seed: int = 0,
    chaos: bool = False,
) -> Tuple[Simulator, int]:
    """The same workload on the unpartitioned :class:`Simulator`.

    The scaling benchmark's baseline row: no windows, no barriers, no
    merge — just the plain event loop. ``schedule_on`` is an identity
    on the monolith, so the build is shared verbatim with the sharded
    path. Returns ``(sim, packets_delivered)``.
    """
    shape = shape or FabricShape()
    sim = Simulator(fabric_topology(shape), seed=seed)
    ctx = _fabric_build(sim, shape=shape, chaos=chaos)
    sim.run()
    delivered = sum(len(host.received) for host in ctx["hosts"].values())
    return sim, delivered


def run_fabric(
    shape: Optional[FabricShape] = None,
    shards: int = 1,
    backend: str = "inline",
    seed: int = 0,
    chaos: bool = False,
    telemetry_active: bool = True,
) -> FabricRunResult:
    """Run the fabric workload sharded and return the merged result."""
    shape = shape or FabricShape()
    result = run_sharded(
        fabric_spec(shape, chaos=chaos),
        shards=shards,
        backend=backend,
        seed=seed,
        telemetry_active=telemetry_active,
    )
    delivered = sum(out["delivered"] for out in result.outputs)
    return FabricRunResult(shape=shape, delivered=delivered, result=result)


# --- fat-tree attested traffic campaign --------------------------------------
#
# The second, heavier consumer of this module: a k-ary fat-tree of
# *attesting* switches (``MultipathFabricSwitch``) carrying a seeded
# flow-level workload — elephant/mice and web mixes in the fast
# forwarding path, plus a handful of attested flows whose packets ride
# compiled path policies through the full PISA+PERA pipeline. ECMP
# spreads bulk traffic over the equal-cost uplink sets; attested
# traffic always selects statelessly so the control plane can predict
# (and therefore compile a policy for) the exact path.

_ATTESTED_FLOW_BASE = 1_000_000
_WEB_FLOW_BASE = 500_000
#: The appraiser place named by the AP1 policy — the out-of-band
#: collector host must carry exactly this node name.
_COLLECTOR = "Appraiser"


@dataclass(frozen=True)
class FatTreeShape:
    """Dimensions of one fat-tree attested-traffic campaign.

    ``bulk_flows``/``web_sessions`` size the untraced fast-path load;
    ``attested_flows`` ride compiled AP1 path policies, the last
    ``ceil(oob_fraction * attested_flows)`` of them diverting evidence
    out-of-band to the collector (all of them when ``batching`` is
    set, so no packet ever parks awaiting an epoch seal).
    ``compromise_at_s`` arms an Athens-style rogue-program swap on the
    first attested flow's ingress edge switch.

    Congestion knobs (docs/CONGESTION.md): ``queue`` installs the
    given :class:`~repro.net.qdisc.QueueConfig` on every fat-tree link
    (finite buffers, ECN/PFC, optional link-local recovery);
    ``incast_fan_in`` adds a synchronized fan-in of that many senders
    from other pods onto the first pod-0 host; ``corrupt_link_rate``
    arms a corruption fault on the first attested flow's edge→agg hop,
    which ``queue.recovery`` then masks with local retransmits.
    """

    k: int = 4
    hosts_per_edge: Optional[int] = None
    bulk_flows: int = 60
    web_sessions: int = 8
    attested_flows: int = 4
    attested_packets: int = 6
    attested_gap_s: float = 4e-6
    oob_fraction: float = 0.5
    mice_fraction: float = 0.9
    mice_packets: Tuple[int, int] = (1, 8)
    elephant_packets: Tuple[int, int] = (32, 128)
    payload_bytes: int = 64
    gap_s: float = 2e-6
    arrival_rate_per_s: float = 400_000.0
    routing: RoutingMode = RoutingMode.ECMP
    flowlet_idle_gap_s: float = 20e-6
    flowlet_n_packets: int = 0
    batching: Optional[BatchingSpec] = None
    compromise_at_s: Optional[float] = None
    queue: Optional[QueueConfig] = None
    incast_fan_in: int = 0
    incast_packets: int = 32
    incast_payload_bytes: int = 256
    incast_gap_s: float = 1e-6
    incast_start_s: float = 2e-6
    corrupt_link_rate: float = 0.0

    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def hosts_per_edge_effective(self) -> int:
        return self.half if self.hosts_per_edge is None else self.hosts_per_edge

    @property
    def switch_count(self) -> int:
        return self.k * self.k + self.half * self.half

    @property
    def host_count(self) -> int:
        return self.k * self.half * self.hosts_per_edge_effective


def _fat_tree_hosts(shape: FatTreeShape) -> List[Tuple[str, str]]:
    """``(edge switch, host name)`` pairs, in :func:`fat_tree` order."""
    half = shape.half
    pw = max(2, len(str(shape.k - 1)))
    sw = max(2, len(str(half - 1)))
    pairs: List[Tuple[str, str]] = []
    for pod in range(shape.k):
        for ei in range(half):
            edge = f"p{pod:0{pw}d}e{ei:0{sw}d}"
            for j in range(shape.hosts_per_edge_effective):
                pairs.append((edge, f"h-{edge}-{j}"))
    return pairs


def _fat_tree_members(
    shape: FatTreeShape, ip_of: Dict[str, int]
) -> Dict[str, Dict[int, Tuple[int, ...]]]:
    """Analytic per-switch ``dst ip -> equal-cost port set`` maps.

    The fat-tree is regular, so next-hop sets need no Dijkstra: an
    edge switch reaches local hosts on their access port and everything
    else over all of its aggregation uplinks; an aggregation switch
    reaches its own pod's edges directly and other pods over all core
    uplinks; a core switch faces pod ``p`` on port ``1+p``.
    ``tests/core`` cross-checks these maps against
    :func:`~repro.net.routing.all_pairs_next_hops`.
    """
    half = shape.half
    hpe = shape.hosts_per_edge_effective
    pw = max(2, len(str(shape.k - 1)))
    sw = max(2, len(str(half - 1)))
    cw = max(2, len(str(half * half - 1)))
    pairs = _fat_tree_hosts(shape)
    edge_uplinks = tuple(range(hpe + 1, hpe + 1 + half))
    agg_uplinks = tuple(range(half + 1, 2 * half + 1))
    members: Dict[str, Dict[int, Tuple[int, ...]]] = {}
    for pod in range(shape.k):
        for ei in range(half):
            edge = f"p{pod:0{pw}d}e{ei:0{sw}d}"
            table: Dict[int, Tuple[int, ...]] = {}
            for host_edge, host in pairs:
                if host_edge == edge:
                    j = int(host.rsplit("-", 1)[1])
                    table[ip_of[host]] = (1 + j,)
                else:
                    table[ip_of[host]] = edge_uplinks
            members[edge] = table
        for ai in range(half):
            agg = f"p{pod:0{pw}d}a{ai:0{sw}d}"
            table = {}
            for host_edge, host in pairs:
                if host_edge.startswith(f"p{pod:0{pw}d}e"):
                    ei = int(host_edge[len(host_edge) - sw:])
                    table[ip_of[host]] = (1 + ei,)
                else:
                    table[ip_of[host]] = agg_uplinks
            members[agg] = table
    for idx in range(half * half):
        core = f"zcore{idx:0{cw}d}"
        table = {}
        for host_edge, host in pairs:
            pod = int(host_edge[1:1 + pw])
            table[ip_of[host]] = (1 + pod,)
        members[core] = table
    return members


class MultipathFabricSwitch(NetworkAwarePeraSwitch):
    """An attesting fabric switch with an O(1) multipath fast path.

    Packets without an RA shim skip the PISA pipeline entirely: the
    precomputed ``dst ip -> equal-cost port set`` map plus a seeded
    :class:`~repro.net.routing.EcmpSelector` (or
    :class:`~repro.net.routing.FlowletTable`) forward them in constant
    time, which is what lets a million-packet campaign finish. Packets
    carrying a compiled policy take the full
    :class:`NetworkAwarePeraSwitch` path — their pipeline's ECMP
    groups resolve through :meth:`_select_pipeline_member`, always
    stateless, so the control plane can predict the exact path a
    policy-carrying flow takes.
    """

    def __init__(
        self,
        name: str,
        members_by_dst_ip: Dict[int, Tuple[int, ...]],
        mode: RoutingMode = RoutingMode.ECMP,
        select_seed: int = 0,
        flowlet_idle_gap_s: float = 50e-6,
        flowlet_n_packets: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        self.members_by_dst_ip = members_by_dst_ip
        self.mode = mode
        self.select_seed = select_seed
        self.ecmp = EcmpSelector(select_seed)
        self.flowlets = FlowletTable(
            select_seed,
            idle_gap_s=flowlet_idle_gap_s,
            flowlet_n_packets=flowlet_n_packets,
        )
        self.packets_forwarded = 0
        self.packets_dropped_unroutable = 0
        #: Egress counts for multi-member picks only — the ECMP
        #: load-balance metric, fast path and pipeline path combined.
        self.tx_by_port: Dict[int, int] = {}
        self.runtime.change_observers.append(self._install_member_selector)

    def _install_member_selector(self, kind: str) -> None:
        # A program install replaces the pipeline object (and with it
        # any group state); re-arm the selector hook so attested
        # traffic keeps resolving ECMP groups after a swap.
        if kind == "config" and self.runtime.pipeline is not None:
            self.runtime.pipeline.member_selector = self._select_pipeline_member

    def _select_pipeline_member(self, members, ctx) -> int:
        fields = ctx.fields
        key = (
            fields.get("ipv4.src"),
            fields.get("ipv4.dst"),
            fields.get("ipv4.protocol"),
            fields.get("udp.src_port", fields.get("tcp.src_port")),
            fields.get("udp.dst_port", fields.get("tcp.dst_port")),
        )
        port = self.ecmp.pick(members, key)
        self.tx_by_port[port] = self.tx_by_port.get(port, 0) + 1
        return port

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        if packet.ra_shim is not None:
            super().handle_packet(packet, in_port)
            return
        ipv4 = packet.ipv4
        members = (
            None if ipv4 is None else self.members_by_dst_ip.get(ipv4.dst)
        )
        if not members:
            self.packets_dropped_unroutable += 1
            return
        if len(members) == 1:
            port = members[0]
        else:
            if self.mode is RoutingMode.FLOWLET:
                port = self.flowlets.pick(
                    members,
                    packet.five_tuple,
                    self.sim.clock.now,
                    congested=packet.ecn,
                )
            else:
                port = self.ecmp.pick(members, packet.five_tuple)
            self.tx_by_port[port] = self.tx_by_port.get(port, 0) + 1
        self.packets_forwarded += 1
        self.sim.transmit(self.name, port, packet)


def _fabric_traffic_topology(shape: FatTreeShape) -> Topology:
    """The campaign fabric: a fat-tree plus the out-of-band collector.

    The collector hangs off the first core switch on its first free
    port; it only ever receives control-plane messages, so it needs no
    routes — just a bound place for diverted evidence to land.
    """
    topo = fat_tree(shape.k, shape.hosts_per_edge)
    if shape.queue is not None:
        # Queues go on every fabric link but not the collector tap,
        # which only ever carries control-plane messages.
        topo.configure_queues(shape.queue)
    cw = max(2, len(str(shape.half * shape.half - 1)))
    core0 = f"zcore{0:0{cw}d}"
    topo.add_node(_COLLECTOR, kind="host")
    topo.add_link(core0, shape.k + 1, _COLLECTOR, 1, 1e-6)
    return topo


def _select_seed_for(base_seed: int, switch: str) -> int:
    return spawn_seed(base_seed, "fabric.select", switch)


def _attested_flow_specs(shape: FatTreeShape) -> List[FlowSpec]:
    """Deterministic cross-fabric attested flows (no RNG needed).

    Flow ``i`` runs from host ``i`` to the host half the fabric away —
    cross-pod for every small ``i`` — with a prime-ish start stagger
    that cannot collide with the packet gap (no two packets of any two
    attested flows share a timestamp, the one ordering a sharded run
    cannot pin).
    """
    names = [host for _, host in _fat_tree_hosts(shape)]
    specs: List[FlowSpec] = []
    for i in range(shape.attested_flows):
        src = names[i % len(names)]
        dst = names[(i + len(names) // 2) % len(names)]
        specs.append(FlowSpec(
            flow_id=_ATTESTED_FLOW_BASE + i,
            src=src,
            dst=dst,
            src_port=52000 + i,
            dst_port=4433,
            packets=shape.attested_packets,
            payload_bytes=shape.payload_bytes,
            start_s=3e-6 + i * 1.9e-7,
            gap_s=shape.attested_gap_s,
            kind="attested",
            attested=True,
        ))
    return specs


def _incast_endpoints(shape: FatTreeShape) -> Tuple[str, List[str]]:
    """``(target, senders)`` for the incast burst.

    The target is the first pod-0 host; senders come from *other*
    pods, so the fan-in converges through the core tier onto one edge
    downlink — backpressure then climbs edge→agg→core and any PFC
    pause frames cross the pod–core shard cut.
    """
    names = [host for _, host in _fat_tree_hosts(shape)]
    per_pod = shape.half * shape.hosts_per_edge_effective
    remote = names[per_pod:]
    if shape.incast_fan_in > len(remote):
        raise ValueError(
            f"incast_fan_in {shape.incast_fan_in} exceeds the "
            f"{len(remote)} hosts outside pod 0"
        )
    return names[0], remote[: shape.incast_fan_in]


def _campaign_flows(shape: FatTreeShape, seed: int) -> List[FlowSpec]:
    """Every flow of the campaign — a pure function of (shape, seed).

    Both the scenario build and the result assembly call this, so the
    parent process never needs to ship flow specs across the
    multiprocessing boundary to compute completion times.
    """
    names = [host for _, host in _fat_tree_hosts(shape)]
    flows: List[FlowSpec] = []
    if shape.bulk_flows:
        flows.extend(elephant_mice_mix(
            names,
            seed=spawn_seed(seed, "fabric.bulk"),
            flows=shape.bulk_flows,
            mice_fraction=shape.mice_fraction,
            mice_packets=shape.mice_packets,
            elephant_packets=shape.elephant_packets,
            payload_bytes=shape.payload_bytes,
            gap_s=shape.gap_s,
            arrival_rate_per_s=shape.arrival_rate_per_s,
            t0=2e-6,
        ))
    if shape.web_sessions:
        flows.extend(web_session_mix(
            names,
            seed=spawn_seed(seed, "fabric.web"),
            sessions=shape.web_sessions,
            payload_bytes=shape.payload_bytes,
            gap_s=shape.gap_s,
            arrival_rate_per_s=shape.arrival_rate_per_s,
            first_flow_id=_WEB_FLOW_BASE,
            t0=4e-6,
        ))
    if shape.incast_fan_in:
        target, senders = _incast_endpoints(shape)
        flows.extend(incast_mix(
            senders,
            target,
            seed=spawn_seed(seed, "fabric.incast"),
            packets=shape.incast_packets,
            payload_bytes=shape.incast_payload_bytes,
            gap_s=shape.incast_gap_s,
            start_s=shape.incast_start_s,
        ))
    flows.extend(_attested_flow_specs(shape))
    return flows


def _oob_flow_count(shape: FatTreeShape) -> int:
    if shape.batching is not None:
        # In-band + batching would park packets until the epoch seals;
        # the campaign keeps delivery times workload-defined by sending
        # every batched record out-of-band instead.
        return shape.attested_flows
    return int(round(shape.attested_flows * shape.oob_fraction))


def _fabric_traffic_build(sim, shape: FatTreeShape):
    """Bind the attested fat-tree and schedule the full campaign.

    Runs identically on every shard (full-world build); ownership
    gates single out who transmits, and all randomness is keyed off
    ``sim.seed`` — never off call order — so any shard count replays
    the same campaign.
    """
    base_seed = sim.seed
    pairs = _fat_tree_hosts(shape)
    names = [host for _, host in pairs]
    ip_of = {
        name: ip_to_int(f"10.{i // 250}.{i % 250}.1")
        for i, name in enumerate(names)
    }
    members = _fat_tree_members(shape, ip_of)

    config = EvidenceConfig(
        detail=DetailLevel.MINIMAL,
        composition=CompositionMode.CHAINED,
        batching=shape.batching,
    )
    switches: Dict[str, MultipathFabricSwitch] = {}
    for switch_name in sorted(members):
        switch = MultipathFabricSwitch(
            switch_name,
            members[switch_name],
            mode=shape.routing,
            select_seed=_select_seed_for(base_seed, switch_name),
            flowlet_idle_gap_s=shape.flowlet_idle_gap_s,
            flowlet_n_packets=shape.flowlet_n_packets,
            config=config,
        )
        sim.bind(switch)
        switches[switch_name] = switch

    sinks: Dict[str, FlowSink] = {}
    for index, name in enumerate(names):
        sink = FlowSink(name, mac=index + 1, ip=ip_of[name])
        sim.bind(sink)
        sinks[name] = sink
    collector = Host(
        _COLLECTOR, mac=len(names) + 1, ip=ip_to_int("10.255.0.1")
    )
    sim.bind(collector)

    # Control plane: one shared vetted program everywhere, then ECMP
    # groups + /32 entries for the attested destinations (bulk traffic
    # never consults the pipeline).
    genuine = fabric_multipath_program()
    for switch_name in sorted(switches):
        runtime = switches[switch_name].runtime
        runtime.arbitrate("ctl", 1)
        runtime.set_forwarding_pipeline_config("ctl", genuine)
    attested_specs = _attested_flow_specs(shape)
    attested_dsts = sorted(
        {(spec.dst, ip_of[spec.dst]) for spec in attested_specs}
    )
    controller = RoutingController(sim, name="ctl")
    next_hops = all_pairs_next_hops(
        sim.topology, [name for name, _ip in attested_dsts]
    )
    controller.install_multipath_routes(
        destinations=attested_dsts, next_hops=next_hops
    )

    # Compile one AP1 path policy per attested flow over the exact
    # path its stateless ECMP picks will take.
    def selector_for(node: str) -> EcmpSelector:
        return EcmpSelector(_select_seed_for(base_seed, node))

    oob_from = shape.attested_flows - _oob_flow_count(shape)
    shims: Dict[int, RaShimHeader] = {}
    attested: Dict[int, Dict[str, object]] = {}
    for i, spec in enumerate(attested_specs):
        flow_key = (
            ip_of[spec.src], ip_of[spec.dst], IPPROTO_UDP,
            spec.src_port, spec.dst_port,
        )
        path = predict_multipath_path(
            sim.topology, next_hops, spec.src, spec.dst, flow_key,
            selector_for,
        )
        oob = i >= oob_from
        policy = compile_policy_for_path(
            ap1_bank_path_attestation(),
            path=path,
            bindings={"client": spec.dst},
            composition=CompositionMode.CHAINED,
            out_of_band=oob,
        )
        shims[spec.flow_id] = RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(policy),
        )
        attested[spec.flow_id] = {
            "spec": spec, "policy": policy, "oob": oob, "path": path,
        }

    # The relying party's appraiser: every switch anchored with the
    # genuine program as its reference measurement.
    anchors = KeyRegistry()
    references: Dict[str, Dict[InertiaClass, bytes]] = {}
    for switch_name in sorted(switches):
        switch = switches[switch_name]
        anchors.register_pair(switch.keys)
        references[switch_name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(genuine),
        }
    appraiser = PathAppraiser(_COLLECTOR, PathAppraisalPolicy(
        anchors=anchors,
        reference_measurements=references,
        program_names={program_reference(genuine): genuine.full_name},
    ))

    engine = FlowEngine(sim, sinks, shim_for=lambda f: shims.get(f.flow_id))
    engine.launch(_campaign_flows(shape, base_seed))

    # A lossy hop on the first attested flow's edge→agg link: with
    # ``shape.queue.recovery`` armed the qdisc masks the corruption
    # with local retransmits and the appraiser never sees a gap.
    injector = None
    if shape.corrupt_link_rate > 0.0 and attested:
        first_path = attested[min(attested)]["path"]
        plan = FaultPlan(seed=spawn_seed(base_seed, "fabric.corrupt"))
        plan.corrupt_packets(
            0.0, first_path[1], first_path[2],
            rate=shape.corrupt_link_rate,
        )
        injector = FaultInjector(plan)
        injector.attach(sim)

    victim = None
    if shape.compromise_at_s is not None and attested:
        first = attested[min(attested)]
        victim = first["path"][1]  # the flow's ingress edge switch

        def _swap(
            switch=switches[victim],
            ctl=controller,
            dsts=attested_dsts,
            nh=next_hops,
        ):
            switch.runtime.arbitrate("attacker", 99)
            switch.runtime.set_forwarding_pipeline_config(
                "attacker", fabric_rogue_program()
            )
            # Keep traffic flowing: the attacker restores the victim's
            # groups and routes (ids match — same sorted destination
            # list), so only the measurement betrays the swap.
            ctl._install_multipath_on(
                switch, dsts, nh, "ipv4_lpm", "attacker"
            )
            switch.notify_state_change(InertiaClass.PROGRAM)

        sim.schedule_on(victim, shape.compromise_at_s, _swap)

    return {
        "shape": shape,
        "switches": switches,
        "sinks": sinks,
        "collector": collector,
        "engine": engine,
        "attested": attested,
        "appraiser": appraiser,
        "anchors": anchors,
        "injector": injector,
        "victim": victim,
    }


def _fabric_traffic_drain(sim, ctx) -> None:
    """Seal any epoch still open when the run stops (batched shapes)."""
    for name in sorted(ctx["switches"]):
        if sim.owns(name):
            ctx["switches"][name].flush_epochs()


def _fabric_traffic_harvest(sim, ctx):
    """Per-shard results: counters from owned nodes only, appraisal at
    each attested flow's destination owner — exactly one shard speaks
    for every number, so the merged sums are shard-count-invariant."""
    forwarded = 0
    unroutable = 0
    attested_hops = 0
    epochs_sealed = 0
    congestion_repicks = 0
    tx_by_port: Dict[str, Dict[int, int]] = {}
    for name in sorted(ctx["switches"]):
        if not sim.owns(name):
            continue
        switch = ctx["switches"][name]
        forwarded += switch.packets_forwarded
        unroutable += switch.packets_dropped_unroutable
        attested_hops += switch.ra_stats.packets_attested
        epochs_sealed += switch.ra_stats.epochs_sealed
        congestion_repicks += switch.flowlets.congestion_repicks
        if switch.tx_by_port:
            tx_by_port[name] = {
                port: switch.tx_by_port[port]
                for port in sorted(switch.tx_by_port)
            }

    arrivals: Dict[int, List[float]] = {}
    ecn_delivered = 0
    for name in sorted(ctx["sinks"]):
        if not sim.owns(name):
            continue
        sink = ctx["sinks"][name]
        for flow_id, record in sink.flow_arrivals.items():
            arrivals[flow_id] = list(record)
        ecn_delivered += sink.ecn_marked

    appraiser: PathAppraiser = ctx["appraiser"]
    verdicts: Dict[int, List[int]] = {}
    for flow_id in sorted(ctx["attested"]):
        info = ctx["attested"][flow_id]
        spec: FlowSpec = info["spec"]
        if info["oob"] or not sim.owns(spec.dst):
            continue
        accepted = rejected = 0
        for packet in ctx["sinks"][spec.dst].received_packets:
            decoded = decode_flow_payload(packet.payload)
            if decoded is None or decoded[0] != flow_id:
                continue
            verdict = appraiser.appraise_packet(
                packet, compiled=info["policy"]
            )
            if verdict.accepted:
                accepted += 1
            else:
                rejected += 1
        verdicts[flow_id] = [accepted, rejected]

    oob_records = 0
    oob_verified = 0
    if sim.owns(_COLLECTOR):
        anchors: KeyRegistry = ctx["anchors"]
        # One batched multi-scalar check over the whole out-of-band
        # stream instead of one Ed25519 verification per record.
        collected = [
            message
            for _, _sender, message in ctx["collector"].control_received
            if isinstance(message, HopRecord)
        ]
        oob_records = len(collected)
        oob_verified = sum(verify_record_batch(anchors, collected))

    return {
        "forwarded": forwarded,
        "unroutable": unroutable,
        "attested_hops": attested_hops,
        "epochs_sealed": epochs_sealed,
        "congestion_repicks": congestion_repicks,
        "ecn_delivered": ecn_delivered,
        "tx_by_port": tx_by_port,
        "arrivals": arrivals,
        "verdicts": verdicts,
        "oob_records": oob_records,
        "oob_verified": oob_verified,
        "victim": (
            ctx["victim"] if getattr(sim, "shard_id", 0) == 0 else None
        ),
    }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 < q <= 1)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


#: The fabric flight-recorder cadence: 50µs windows (one host send
#: round), so the ~0.5ms campaign yields a dozen-plus frames and the
#: ECMP spread is visible while flows are still in flight.
FABRIC_SAMPLE_INTERVAL_S = _ROUND_GAP_S


def fabric_sampling_spec() -> SamplingSpec:
    """The default flight-recorder spec for fabric campaigns."""
    return SamplingSpec(interval_s=FABRIC_SAMPLE_INTERVAL_S)


def standard_fabric_rules(
    queue_depth_bytes: float = 16384.0,
    pause_frames_per_window: float = 4.0,
) -> List[object]:
    """Health rules for the fat-tree campaign: load, loss, liveness.

    - ``fabric-drops``: the fabric is lossless by construction, so any
      dataplane drop is an alert.
    - ``ecmp-imbalance``: per-switch max/mean over cumulative egress
      link counts; the bound is loose (edge switches mix multipath
      uplinks with single-host downlinks) but catches a wedged
      selector sending everything one way.
    - ``epoch-stall``: arms on the first sealed epoch and raises if
      sealing goes silent for three windows mid-run (batched shapes
      only — unbatched runs never arm it).
    - ``queue-depth``: worst single egress queue occupancy (the
      probe-sampled ``net.qdisc.depth_bytes`` level) above
      ``queue_depth_bytes`` — sustained buffer buildup, the incast
      signature. Queue-less campaigns emit no such series, so the rule
      stays silent.
    - ``pause-storm``: more than ``pause_frames_per_window`` PFC pause
      frames in one window — backpressure has spread beyond the hot
      queue and is freezing upstream ports.
    """
    return [
        ThresholdRule(name="fabric-drops", metric="net.link.dropped"),
        ImbalanceRule(
            name="ecmp-imbalance",
            metric="net.link.tx_packets",
            bound=8.0,
            min_total=256.0,
        ),
        AbsenceRule(
            name="epoch-stall",
            metric="pera.epoch_sealed_events",
            for_windows=3,
        ),
        LevelRule(
            name="queue-depth",
            metric="net.qdisc.depth_bytes",
            threshold=queue_depth_bytes,
            aggregate="max",
        ),
        ThresholdRule(
            name="pause-storm",
            metric="net.qdisc.pause_frames",
            threshold=pause_frames_per_window,
        ),
    ]


@dataclass
class FabricTrafficResult:
    """Merged outcome of one fat-tree attested-traffic campaign."""

    shape: FatTreeShape
    forwarded: int
    unroutable: int
    attested_hops: int
    epochs_sealed: int
    oob_records: int
    oob_verified: int
    fct_s: Dict[int, float]
    verdicts: Dict[int, Tuple[int, int]]
    tx_by_port: Dict[str, Dict[int, int]]
    #: Congestion evidence (queue-enabled shapes): ECN-marked packets
    #: that reached a sink, and flowlet boundaries the signal forced.
    ecn_delivered: int = 0
    congestion_repicks: int = 0
    victim: Optional[str] = None
    result: Optional[ShardedResult] = None
    #: Flight-recorder output (``sampling=`` runs only): canonical
    #: merged frames, byte-identical across shard counts.
    frames: List[Dict[str, object]] = None  # type: ignore[assignment]
    frames_dropped: int = 0
    sampling: Optional[SamplingSpec] = None
    #: Health evaluation over the frames (``health=`` runs only).
    health: Optional[HealthReport] = None

    def __post_init__(self) -> None:
        if self.frames is None:
            self.frames = []

    def frames_export(self) -> str:
        """Canonical JSON of the frame stream (byte-identity checks)."""
        return json.dumps(self.frames, sort_keys=True)

    def timeseries(self) -> Dict[str, object]:
        """The ``repro.timeseries/v1`` document for this run."""
        if self.sampling is None:
            raise ValueError("run had no sampling= spec; no frames recorded")
        return timeseries_snapshot(
            self.frames,
            self.sampling.interval_s,
            frames_dropped=self.frames_dropped,
            alerts=self.health.alerts if self.health is not None else (),
            rules=self.health.rules if self.health is not None else (),
        )

    def timeseries_export(self) -> str:
        """Canonical JSON of frames + alert timeline (byte-pinned)."""
        return timeseries_export(self.timeseries())

    def fct_percentiles(
        self, qs: Tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> Dict[str, float]:
        """Completion-time percentiles (seconds) over completed flows.

        Labels keep fractional percentiles distinct: ``0.999`` renders
        as ``"p99.9"``, not a second ``"p99"``.
        """
        values = sorted(self.fct_s.values())
        return {f"p{100 * q:g}": _percentile(values, q) for q in qs}

    def ecmp_imbalance(self, min_samples: int = 64) -> float:
        """Worst per-switch max/mean ratio over multipath egress counts.

        1.0 is a perfect spread; switches with fewer than
        ``min_samples`` multipath picks are skipped (a handful of
        flowlets on a quiet switch is noise, not imbalance).
        """
        worst = 1.0
        for counts in self.tx_by_port.values():
            total = sum(counts.values())
            if total < min_samples or not counts:
                continue
            mean = total / len(counts)
            worst = max(worst, max(counts.values()) / mean)
        return worst

    @property
    def verdict_counts(self) -> Tuple[int, int]:
        """(accepted, rejected) summed over in-band attested flows."""
        accepted = sum(a for a, _ in self.verdicts.values())
        rejected = sum(r for _, r in self.verdicts.values())
        return accepted, rejected


def fabric_traffic_spec(
    shape: FatTreeShape, sampling: Optional[SamplingSpec] = None
) -> ScenarioSpec:
    """The campaign as a runner-ready :class:`ScenarioSpec`."""
    return ScenarioSpec(
        topology=partial(_fabric_traffic_topology, shape),
        build=partial(_fabric_traffic_build, shape=shape),
        harvest=_fabric_traffic_harvest,
        drain=_fabric_traffic_drain,
        sampling=sampling,
    )


def _assemble_traffic_result(
    shape: FatTreeShape,
    seed: int,
    outputs: List[Dict[str, object]],
    result: Optional[ShardedResult],
    frames: Optional[List[Dict[str, object]]] = None,
    frames_dropped: int = 0,
    sampling: Optional[SamplingSpec] = None,
    health: Optional[HealthReport] = None,
) -> FabricTrafficResult:
    arrivals: Dict[int, List[float]] = {}
    verdicts: Dict[int, Tuple[int, int]] = {}
    tx_by_port: Dict[str, Dict[int, int]] = {}
    victim = None
    for out in outputs:
        arrivals.update(out["arrivals"])
        verdicts.update({
            fid: (counts[0], counts[1])
            for fid, counts in out["verdicts"].items()
        })
        tx_by_port.update(out["tx_by_port"])
        victim = victim or out["victim"]
    flows = _campaign_flows(shape, seed)
    fct: Dict[int, float] = {}
    for flow in flows:
        record = arrivals.get(flow.flow_id)
        if record is not None and int(record[0]) >= flow.packets:
            fct[flow.flow_id] = record[2] - flow.start_s
    return FabricTrafficResult(
        shape=shape,
        forwarded=sum(out["forwarded"] for out in outputs),
        unroutable=sum(out["unroutable"] for out in outputs),
        attested_hops=sum(out["attested_hops"] for out in outputs),
        epochs_sealed=sum(out["epochs_sealed"] for out in outputs),
        oob_records=sum(out["oob_records"] for out in outputs),
        oob_verified=sum(out["oob_verified"] for out in outputs),
        ecn_delivered=sum(out["ecn_delivered"] for out in outputs),
        congestion_repicks=sum(
            out["congestion_repicks"] for out in outputs
        ),
        fct_s=fct,
        verdicts=verdicts,
        tx_by_port=tx_by_port,
        victim=victim,
        result=result,
        frames=list(frames) if frames is not None else [],
        frames_dropped=frames_dropped,
        sampling=sampling,
        health=health,
    )


def run_fabric_traffic(
    shape: Optional[FatTreeShape] = None,
    shards: int = 1,
    backend: str = "inline",
    seed: int = 0,
    telemetry_active: bool = True,
    max_events: int = 8_000_000,
    until: Optional[float] = None,
    sampling: Optional[SamplingSpec] = None,
    health: Optional[Sequence[object]] = None,
) -> FabricTrafficResult:
    """Run the attested fat-tree campaign sharded; merged result.

    ``sampling=`` installs a per-shard flight recorder (frames merge
    canonically, see docs/MONITORING.md); ``health=`` evaluates rules
    over the merged frames post-merge and folds the alert timeline
    into the audit journal. Passing ``health=`` alone implies the
    default :func:`fabric_sampling_spec`.
    """
    shape = shape or FatTreeShape()
    if health is not None and sampling is None:
        sampling = fabric_sampling_spec()
    result = run_sharded(
        fabric_traffic_spec(shape, sampling=sampling),
        shards=shards,
        backend=backend,
        seed=seed,
        until=until,
        max_events=max_events,
        telemetry_active=telemetry_active,
    )
    health_report = None
    if health is not None and sampling is not None:
        health_report = evaluate_health(
            result.frames, list(health), sampling.interval_s
        )
        fold_alerts(result.telemetry.audit, health_report.alerts)
    return _assemble_traffic_result(
        shape,
        seed,
        result.outputs,
        result,
        frames=result.frames,
        frames_dropped=result.frames_dropped,
        sampling=sampling,
        health=health_report,
    )


def run_fabric_traffic_monolith(
    shape: Optional[FatTreeShape] = None,
    seed: int = 0,
    max_events: int = 8_000_000,
    until: Optional[float] = None,
    sampling: Optional[SamplingSpec] = None,
    health: Optional[Sequence[object]] = None,
) -> FabricTrafficResult:
    """The same campaign on the unpartitioned :class:`Simulator`.

    The parity baseline: ``schedule_on``/``owns`` are identities on the
    monolith, so build, drain, and harvest are shared verbatim with the
    sharded path; ``result`` is ``None``. The flight recorder is
    finished *before* harvest, matching the sharded runner (which
    finishes it in ``finalize()``), so harvest-time appraisals land in
    metric snapshots but never in frames on either path.
    """
    shape = shape or FatTreeShape()
    if health is not None and sampling is None:
        sampling = fabric_sampling_spec()
    # The recorder samples the metrics registry, so a sampling= run
    # needs live telemetry — the same Telemetry(active=True) every
    # shard of the sharded runner builds. Without sampling the
    # monolith keeps its historical null-telemetry default.
    telemetry = Telemetry(active=True) if sampling is not None else None
    if telemetry is not None:
        reset_trace_ids()
    sim = Simulator(
        _fabric_traffic_topology(shape), seed=seed, telemetry=telemetry
    )
    ctx = _fabric_traffic_build(sim, shape=shape)
    if sampling is not None:
        install_recorder(sim, sampling)
    sim.run(until=until, max_events=max_events)
    _fabric_traffic_drain(sim, ctx)
    sim.run(until=until, max_events=max_events)
    frames: List[Dict[str, object]] = []
    frames_dropped = 0
    if sampling is not None:
        recorder = sim.recorder
        recorder.finish(sim.clock.now)
        frames = renumber_frame_times(
            merge_frame_streams([recorder.frames]), sampling.interval_s
        )
        frames_dropped = recorder.frames_dropped
    output = _fabric_traffic_harvest(sim, ctx)
    health_report = None
    if health is not None and sampling is not None:
        health_report = evaluate_health(
            frames, list(health), sampling.interval_s
        )
        fold_alerts(sim.telemetry.audit, health_report.alerts)
    return _assemble_traffic_result(
        shape,
        seed,
        [output],
        None,
        frames=frames,
        frames_dropped=frames_dropped,
        sampling=sampling,
        health=health_report,
    )


__all__ = [
    "FABRIC_SAMPLE_INTERVAL_S",
    "FabricShape",
    "FabricRunResult",
    "FabricTrafficResult",
    "FatTreeShape",
    "MultipathFabricSwitch",
    "StaticFabricSwitch",
    "fabric_sampling_spec",
    "fabric_spec",
    "fabric_topology",
    "fabric_traffic_spec",
    "run_fabric",
    "run_fabric_monolith",
    "run_fabric_traffic",
    "run_fabric_traffic_monolith",
    "run_sharded",
    "standard_fabric_rules",
]
