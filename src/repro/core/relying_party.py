"""The relying party, as one object.

Examples and tests assemble the attestation pipeline by hand (compile
policy → build shim → send → collect → appraise). This class is the
packaged version — the paper's RP as an API:

    rp = RelyingParty(
        policy=ap1_bank_path_attestation(),
        appraisal=PathAppraisalPolicy(anchors=..., ...),
    )
    rp.attach(sim, src_host, dst_host)
    rp.send(b"payload")
    sim.run()
    verdicts = rp.verdicts        # one per delivered packet

Every packet gets a fresh nonce compiled into its policy header, and
appraisal happens automatically on arrival at the destination host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.appraisal import PathAppraisalPolicy, PathAppraiser, PathVerdict
from repro.core.compiler import CompiledPolicy, compile_policy_for_path
from repro.core.hybrid_ast import HybridPolicy
from repro.core.wire import decode_compiled_policy, encode_compiled_policy
from repro.net.headers import RaShimHeader
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.routing import shortest_path
from repro.net.simulator import Simulator
from repro.pera.config import CompositionMode, DetailLevel
from repro.ra.nonce import NonceManager
from repro.telemetry.instrument import Telemetry
from repro.util.errors import CodecError, ConfigError


@dataclass
class RelyingParty:
    """Compiles, sends, and appraises — the paper's RP role."""

    policy: HybridPolicy
    appraisal: PathAppraisalPolicy
    detail: DetailLevel = DetailLevel.MINIMAL
    composition: CompositionMode = CompositionMode.CHAINED
    bindings: Dict[str, str] = field(default_factory=dict)
    out_of_band: bool = False
    #: Optional shared telemetry so verdicts and check failures land in
    #: the same journal as the simulator's events.
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        self._nonces = NonceManager(seed=f"rp-{self.policy.name}")
        self._appraiser = PathAppraiser(
            name=f"appraiser-of-{self.policy.name}",
            policy=self.appraisal,
            nonces=self._nonces,
            telemetry=self.telemetry,
        )
        self._sim: Optional[Simulator] = None
        self._src: Optional[Host] = None
        self._dst: Optional[Host] = None
        self._path: List[str] = []
        self._policies_by_nonce: Dict[bytes, CompiledPolicy] = {}
        self.verdicts: List[PathVerdict] = []
        self.sent = 0

    # --- wiring ------------------------------------------------------------

    def attach(self, sim: Simulator, src: Host, dst: Host) -> None:
        """Bind this RP to a source and destination on a simulator.

        The destination's packet callback is chained: RA-carrying
        packets are appraised on arrival, everything else passes
        through untouched.
        """
        self._sim = sim
        self._src = src
        self._dst = dst
        self._path = shortest_path(sim.topology, src.name, dst.name)
        bindings = dict(self.bindings)
        bindings.setdefault("client", dst.name)
        self.bindings = bindings
        previous = dst.on_packet

        def on_packet(packet: Packet) -> None:
            if previous is not None:
                previous(packet)
            self._on_arrival(packet)

        dst.on_packet = on_packet

    @property
    def path(self) -> List[str]:
        return list(self._path)

    # --- sending ----------------------------------------------------------------

    def send(
        self,
        payload: bytes = b"",
        src_port: int = 40000,
        dst_port: int = 40001,
    ) -> CompiledPolicy:
        """Compile the policy under a fresh nonce and send one packet."""
        if self._sim is None or self._src is None or self._dst is None:
            raise ConfigError("relying party is not attached; call attach()")
        nonce = self._nonces.issue()
        compiled = compile_policy_for_path(
            self.policy,
            path=self._path,
            bindings=self.bindings,
            nonce=nonce,
            detail=self.detail,
            composition=self.composition,
            out_of_band=self.out_of_band,
        )
        self._policies_by_nonce[nonce] = compiled
        self._src.send_udp(
            dst_mac=self._dst.mac,
            dst_ip=self._dst.ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            ra_shim=RaShimHeader(
                flags=RaShimHeader.FLAG_POLICY,
                body=encode_compiled_policy(compiled),
            ),
        )
        self.sent += 1
        return compiled

    # --- receiving ------------------------------------------------------------------

    def _on_arrival(self, packet: Packet) -> None:
        if packet.ra_shim is None:
            return
        try:
            carried = decode_compiled_policy(packet.ra_shim.body)
        except CodecError as exc:
            # Corrupted-in-flight shims reject rather than crash the RP.
            self.verdicts.append(PathVerdict(
                accepted=False,
                failures=(f"shim body undecodable: {exc}",),
                trace_id=(
                    packet.trace.trace_id if packet.trace is not None else None
                ),
            ))
            return
        if carried is None:
            return
        compiled = self._policies_by_nonce.get(carried.nonce)
        if compiled is None:
            self.verdicts.append(PathVerdict(
                accepted=False,
                failures=("policy nonce was never issued by this RP",),
            ))
            return
        self.verdicts.append(self._appraiser.appraise_packet(packet, compiled))

    # --- pre-flight --------------------------------------------------------------------

    def lint(self) -> List[str]:
        """Pre-flight check: compile a probe policy and lint it against
        this RP's appraisal policy over the attached path."""
        if self._sim is None:
            raise ConfigError("relying party is not attached; call attach()")
        from repro.analysis.lint import lint_deployment

        probe = compile_policy_for_path(
            self.policy,
            path=self._path,
            bindings=self.bindings,
            nonce=b"\x00" * 16,
            detail=self.detail,
            composition=self.composition,
            out_of_band=self.out_of_band,
        )
        expected = [
            name for name in self._path[1:-1]
            if self._sim.topology.kind_of(name) == "switch"
        ]
        return [
            str(finding)
            for finding in lint_deployment(
                probe, self.appraisal, expected_places=expected
            )
        ]

    # --- results -----------------------------------------------------------------------

    @property
    def all_accepted(self) -> bool:
        return bool(self.verdicts) and all(v.accepted for v in self.verdicts)

    def summary(self) -> str:
        accepted = sum(1 for v in self.verdicts if v.accepted)
        return (
            f"relying party {self.policy.relying_party!r}: "
            f"{self.sent} sent, {len(self.verdicts)} appraised, "
            f"{accepted} accepted over path {' -> '.join(self._path)}"
        )
