"""The programmable parser: a state machine over raw bytes.

A PISA parser is a DAG of states. Each state extracts a fixed-layout
header (a list of (field name, bit width) pairs) and then selects the
next state from the value of one extracted field — exactly the P4
``parser`` construct. The spec is data, not code, so it is part of the
dataplane program's measurement: swapping the parser is as attestable
as swapping a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import PipelineError

ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class FieldExtract:
    """One fixed-width field in a header layout."""

    name: str
    bit_width: int

    def __post_init__(self) -> None:
        if self.bit_width <= 0:
            raise PipelineError(f"field {self.name!r} has non-positive width")


@dataclass(frozen=True)
class ParserState:
    """One parser state: extract a header, then branch.

    ``select_field`` is the fully qualified field (``"eth.ethertype"``)
    whose just-extracted value picks the next state via ``transitions``;
    ``default_next`` handles unmatched values. A state with no
    ``select_field`` always goes to ``default_next``.
    """

    name: str
    header: str
    fields: Tuple[FieldExtract, ...]
    select_field: Optional[str] = None
    transitions: Tuple[Tuple[int, str], ...] = ()
    default_next: str = ACCEPT

    @property
    def byte_width(self) -> int:
        total_bits = sum(f.bit_width for f in self.fields)
        if total_bits % 8 != 0:
            raise PipelineError(
                f"parser state {self.name!r} header is {total_bits} bits, "
                "not byte-aligned"
            )
        return total_bits // 8

    def describe(self) -> bytes:
        """Canonical byte description for measurement."""
        parts = [self.name, self.header]
        parts += [f"{f.name}:{f.bit_width}" for f in self.fields]
        parts.append(self.select_field or "-")
        parts += [f"{value}->{state}" for value, state in self.transitions]
        parts.append(self.default_next)
        return "|".join(parts).encode("utf-8")


@dataclass(frozen=True)
class ParserSpec:
    """A complete parser: named states plus the start state."""

    states: Tuple[ParserState, ...]
    start: str

    def __post_init__(self) -> None:
        names = [s.name for s in self.states]
        if len(set(names)) != len(names):
            raise PipelineError("duplicate parser state names")
        known = set(names) | {ACCEPT, REJECT}
        if self.start not in known:
            raise PipelineError(f"unknown start state {self.start!r}")
        for state in self.states:
            for _value, nxt in state.transitions:
                if nxt not in known:
                    raise PipelineError(
                        f"state {state.name!r} transitions to unknown {nxt!r}"
                    )
            if state.default_next not in known:
                raise PipelineError(
                    f"state {state.name!r} defaults to unknown "
                    f"{state.default_next!r}"
                )

    def state(self, name: str) -> ParserState:
        for candidate in self.states:
            if candidate.name == name:
                return candidate
        raise PipelineError(f"no parser state named {name!r}")

    def describe(self) -> bytes:
        return b";".join(
            [self.start.encode("utf-8")] + [s.describe() for s in self.states]
        )

    def parse(self, data: bytes) -> Tuple[Dict[str, int], List[str], bytes]:
        """Run the state machine over ``data``.

        Returns ``(fields, headers, remaining_payload)`` where
        ``fields`` maps fully qualified field names to integer values
        and ``headers`` lists the header names marked valid, in parse
        order. Raises :class:`PipelineError` on REJECT or truncation.
        """
        fields: Dict[str, int] = {}
        headers: List[str] = []
        offset = 0
        current = self.start
        steps = 0
        while current not in (ACCEPT, REJECT):
            steps += 1
            if steps > 64:
                raise PipelineError("parser exceeded 64 states; loop suspected")
            state = self.state(current)
            width = state.byte_width
            if offset + width > len(data):
                raise PipelineError(
                    f"truncated packet in state {state.name!r}: "
                    f"need {width} bytes at offset {offset}, have {len(data) - offset}"
                )
            chunk = data[offset : offset + width]
            offset += width
            headers.append(state.header)
            bit_pos = 0
            chunk_value = int.from_bytes(chunk, "big")
            total_bits = width * 8
            for extract in state.fields:
                bit_pos += extract.bit_width
                shift = total_bits - bit_pos
                mask = (1 << extract.bit_width) - 1
                fields[f"{state.header}.{extract.name}"] = (
                    chunk_value >> shift
                ) & mask
            if state.select_field is None:
                current = state.default_next
                continue
            key = fields.get(state.select_field)
            if key is None:
                raise PipelineError(
                    f"state {state.name!r} selects on unextracted field "
                    f"{state.select_field!r}"
                )
            current = dict(state.transitions).get(key, state.default_next)
        if current == REJECT:
            raise PipelineError("parser rejected packet")
        return fields, headers, data[offset:]
