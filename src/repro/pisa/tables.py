"""Match-action tables with exact, LPM and ternary match kinds.

A table's *declaration* (name, key fields, match kinds, permitted
actions) is part of the dataplane program and is measured with it; its
*entries* are control-plane state with their own (lower) inertia class
in the paper's Fig. 4 — they change more often than the program, less
often than packets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pisa.actions import ActionCall
from repro.util.errors import PipelineError


class MatchKind(enum.Enum):
    """The match kinds PISA tables support."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"


@dataclass(frozen=True)
class MatchKey:
    """One key component of a table entry.

    - EXACT: ``value`` must equal the packet field.
    - LPM: ``value``/``prefix_len`` on a field of ``bit_width`` bits.
    - TERNARY: ``value``/``mask``.
    """

    kind: MatchKind
    value: int
    prefix_len: Optional[int] = None
    mask: Optional[int] = None
    bit_width: int = 32

    def __post_init__(self) -> None:
        if self.kind is MatchKind.LPM:
            if self.prefix_len is None:
                raise PipelineError("LPM key requires prefix_len")
            if not 0 <= self.prefix_len <= self.bit_width:
                raise PipelineError(
                    f"prefix_len {self.prefix_len} out of range for "
                    f"{self.bit_width}-bit field"
                )
        if self.kind is MatchKind.TERNARY and self.mask is None:
            raise PipelineError("ternary key requires mask")

    def matches(self, field_value: int) -> bool:
        if self.kind is MatchKind.EXACT:
            return field_value == self.value
        if self.kind is MatchKind.LPM:
            shift = self.bit_width - self.prefix_len
            return (field_value >> shift) == (self.value >> shift)
        # TERNARY
        return (field_value & self.mask) == (self.value & self.mask)

    def specificity(self) -> int:
        """Bits pinned down — used for LPM longest-prefix ordering."""
        if self.kind is MatchKind.EXACT:
            return self.bit_width
        if self.kind is MatchKind.LPM:
            return self.prefix_len
        return bin(self.mask).count("1")

    def describe(self) -> str:
        if self.kind is MatchKind.EXACT:
            return f"exact:{self.value}"
        if self.kind is MatchKind.LPM:
            return f"lpm:{self.value}/{self.prefix_len}"
        return f"ternary:{self.value}&{self.mask:#x}"


@dataclass(frozen=True)
class InstalledEntry:
    """A table entry: keys (one per key field) + action call + priority."""

    keys: Tuple[MatchKey, ...]
    action_call: ActionCall
    priority: int = 0

    def describe(self) -> str:
        keys = ",".join(k.describe() for k in self.keys)
        params = ",".join(str(p) for p in self.action_call.params)
        return (
            f"[{keys}]->{self.action_call.action.name}({params})@{self.priority}"
        )


class MatchTable:
    """Runtime state of one table: its installed entries.

    Match resolution:
    - All-EXACT keys: hash-table lookup.
    - Otherwise: linear scan, winner = highest priority, ties broken by
      total key specificity (giving LPM longest-prefix semantics when
      priorities are equal), then by insertion order (oldest wins).
    """

    def __init__(
        self,
        name: str,
        key_fields: Sequence[str],
        default_action: ActionCall,
        max_entries: int = 1024,
    ) -> None:
        self.name = name
        self.key_fields = list(key_fields)
        self.default_action = default_action
        self.max_entries = max_entries
        self._entries: List[InstalledEntry] = []
        self._exact_index: Dict[Tuple[int, ...], InstalledEntry] = {}

    def _is_pure_exact(self, entry: InstalledEntry) -> bool:
        return all(k.kind is MatchKind.EXACT for k in entry.keys)

    def insert(self, entry: InstalledEntry) -> None:
        if len(entry.keys) != len(self.key_fields):
            raise PipelineError(
                f"table {self.name!r} has {len(self.key_fields)} key fields, "
                f"entry supplies {len(entry.keys)}"
            )
        if len(self._entries) >= self.max_entries:
            raise PipelineError(f"table {self.name!r} is full ({self.max_entries})")
        if self._is_pure_exact(entry):
            exact = tuple(k.value for k in entry.keys)
            if exact in self._exact_index:
                raise PipelineError(
                    f"duplicate exact entry in table {self.name!r}: {exact}"
                )
            self._exact_index[exact] = entry
        self._entries.append(entry)

    def remove(self, entry: InstalledEntry) -> bool:
        """Remove a previously installed entry; returns whether found."""
        try:
            self._entries.remove(entry)
        except ValueError:
            return False
        if self._is_pure_exact(entry):
            self._exact_index.pop(tuple(k.value for k in entry.keys), None)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._exact_index.clear()

    def lookup(self, field_values: Sequence[int]) -> Tuple[ActionCall, bool]:
        """Match ``field_values`` (one per key field).

        Returns ``(action_call, hit)`` — the default action on miss.
        """
        if len(field_values) != len(self.key_fields):
            raise PipelineError(
                f"table {self.name!r} lookup needs {len(self.key_fields)} "
                f"values, got {len(field_values)}"
            )
        exact_hit = self._exact_index.get(tuple(field_values))
        best: Optional[InstalledEntry] = exact_hit
        best_rank: Tuple[int, int, int] = (
            (exact_hit.priority, sum(k.specificity() for k in exact_hit.keys), 0)
            if exact_hit
            else (-1, -1, 0)
        )
        for order, entry in enumerate(self._entries):
            if entry is exact_hit or self._is_pure_exact(entry):
                continue
            if all(
                key.matches(value) for key, value in zip(entry.keys, field_values)
            ):
                rank = (
                    entry.priority,
                    sum(k.specificity() for k in entry.keys),
                    -order,
                )
                if best is None or rank > best_rank:
                    best = entry
                    best_rank = rank
        if best is None:
            return self.default_action, False
        return best.action_call, True

    @property
    def entries(self) -> List[InstalledEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def measure_content(self) -> Dict[str, bytes]:
        """Canonical content map for attestation (order-independent)."""
        return {
            f"{self.name}/{i}": entry.describe().encode("utf-8")
            for i, entry in enumerate(
                sorted(self._entries, key=lambda e: e.describe())
            )
        }
