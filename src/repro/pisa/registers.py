"""Stateful dataplane objects: registers, counters, meters.

These hold the "Prog. State" inertia class of the paper's Fig. 4 —
state that changes faster than table entries but slower than packets.
All are fixed-size arrays, as on real PISA hardware.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.errors import PipelineError


class Register:
    """A fixed-size array of integers with bounded cell width."""

    def __init__(self, name: str, size: int, bit_width: int = 32) -> None:
        if size <= 0:
            raise PipelineError(f"register {name!r} needs positive size")
        if bit_width <= 0 or bit_width > 64:
            raise PipelineError(f"register {name!r} bit width out of range")
        self.name = name
        self.size = size
        self.bit_width = bit_width
        self._cells: List[int] = [0] * size

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise PipelineError(
                f"register {self.name!r} index {index} out of range [0, {self.size})"
            )

    def read(self, index: int) -> int:
        self._check_index(index)
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        self._check_index(index)
        self._cells[index] = value & ((1 << self.bit_width) - 1)

    def reset(self) -> None:
        self._cells = [0] * self.size

    def snapshot(self) -> bytes:
        """Canonical bytes for attestation of program state."""
        cell_bytes = (self.bit_width + 7) // 8
        return b"".join(value.to_bytes(cell_bytes, "big") for value in self._cells)


class Counter:
    """A packet-and-byte counter array (P4 ``counter``)."""

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise PipelineError(f"counter {name!r} needs positive size")
        self.name = name
        self.size = size
        self._packets: List[int] = [0] * size
        self._bytes: List[int] = [0] * size

    def count(self, index: int, packet_bytes: int = 0) -> None:
        if not 0 <= index < self.size:
            raise PipelineError(
                f"counter {self.name!r} index {index} out of range [0, {self.size})"
            )
        self._packets[index] += 1
        self._bytes[index] += packet_bytes

    def read(self, index: int) -> Dict[str, int]:
        if not 0 <= index < self.size:
            raise PipelineError(
                f"counter {self.name!r} index {index} out of range [0, {self.size})"
            )
        return {"packets": self._packets[index], "bytes": self._bytes[index]}

    def reset(self) -> None:
        self._packets = [0] * self.size
        self._bytes = [0] * self.size


class Meter:
    """A two-rate token-bucket meter returning a colour per packet.

    Simplified srTCM: green while under ``rate_bps``, yellow within the
    burst allowance, red beyond — driven off the simulated clock so it
    is deterministic.
    """

    GREEN, YELLOW, RED = "green", "yellow", "red"

    def __init__(
        self, name: str, rate_bps: float, burst_bytes: int = 15000
    ) -> None:
        if rate_bps <= 0 or burst_bytes <= 0:
            raise PipelineError(f"meter {name!r} needs positive rate and burst")
        self.name = name
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._excess = float(burst_bytes)
        self._last_time = 0.0

    def execute(self, now: float, packet_bytes: int) -> str:
        elapsed = max(0.0, now - self._last_time)
        self._last_time = max(self._last_time, now)
        refill = elapsed * self.rate_bps / 8
        self._tokens = min(self.burst_bytes, self._tokens + refill)
        self._excess = min(self.burst_bytes, self._excess + refill)
        if self._tokens >= packet_bytes:
            self._tokens -= packet_bytes
            return self.GREEN
        if self._excess >= packet_bytes:
            self._excess -= packet_bytes
            return self.YELLOW
        return self.RED
