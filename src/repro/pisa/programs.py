"""A library of canned dataplane programs.

These play the roles the paper's narrative names: ``firewall_v5.p4``,
``ACL_v3.p4`` (use case UC1), plain forwarding, a traffic scanner
(UC4), and the Athens-affair rogue variant that silently clones
traffic to an exfiltration port. Each is a :class:`DataplaneProgram`,
so each has a distinct measurement — the property every experiment
leans on.
"""

from __future__ import annotations


from repro.net.headers import ETHERTYPE_IPV4, IPPROTO_TCP, IPPROTO_UDP, RA_UDP_PORT
from repro.pisa.actions import (
    Action,
    Primitive,
    Step,
    drop_action,
    ecmp_select_action,
    forward_action,
    noop_action,
    to_cpu_action,
)
from repro.pisa.parser_engine import ACCEPT, FieldExtract, ParserSpec, ParserState
from repro.pisa.program import DataplaneProgram, TableSpec


def standard_parser() -> ParserSpec:
    """Ethernet → IPv4 → {UDP, TCP}; UDP on the RA port → RA shim."""
    eth = ParserState(
        name="parse_eth",
        header="eth",
        fields=(
            FieldExtract("dst", 48),
            FieldExtract("src", 48),
            FieldExtract("ethertype", 16),
        ),
        select_field="eth.ethertype",
        transitions=((ETHERTYPE_IPV4, "parse_ipv4"),),
        default_next=ACCEPT,
    )
    ipv4 = ParserState(
        name="parse_ipv4",
        header="ipv4",
        fields=(
            FieldExtract("version_ihl", 8),
            FieldExtract("dscp_ecn", 8),
            FieldExtract("total_length", 16),
            FieldExtract("identification", 16),
            FieldExtract("flags_frag", 16),
            FieldExtract("ttl", 8),
            FieldExtract("protocol", 8),
            FieldExtract("checksum", 16),
            FieldExtract("src", 32),
            FieldExtract("dst", 32),
        ),
        select_field="ipv4.protocol",
        transitions=((IPPROTO_UDP, "parse_udp"), (IPPROTO_TCP, "parse_tcp")),
        default_next=ACCEPT,
    )
    udp = ParserState(
        name="parse_udp",
        header="udp",
        fields=(
            FieldExtract("src_port", 16),
            FieldExtract("dst_port", 16),
            FieldExtract("length", 16),
            FieldExtract("checksum", 16),
        ),
        select_field="udp.dst_port",
        transitions=((RA_UDP_PORT, "parse_ra"),),
        default_next=ACCEPT,
    )
    tcp = ParserState(
        name="parse_tcp",
        header="tcp",
        fields=(
            FieldExtract("src_port", 16),
            FieldExtract("dst_port", 16),
            FieldExtract("seq", 32),
            FieldExtract("ack", 32),
            FieldExtract("offset_flags", 16),
            FieldExtract("window", 16),
            FieldExtract("checksum", 16),
            FieldExtract("urgent", 16),
        ),
        default_next=ACCEPT,
    )
    ra = ParserState(
        name="parse_ra",
        header="ra",
        fields=(
            FieldExtract("magic", 16),
            FieldExtract("version", 8),
            FieldExtract("flags", 8),
            FieldExtract("body_length", 16),
            FieldExtract("hop_count", 16),
        ),
        default_next=ACCEPT,
    )
    return ParserSpec(states=(eth, ipv4, udp, tcp, ra), start="parse_eth")


def ipv4_forwarding_program(
    name: str = "router", version: str = "v1"
) -> DataplaneProgram:
    """LPM forwarding on ``ipv4.dst`` — the minimal useful dataplane."""
    return DataplaneProgram(
        name=name,
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="ipv4_lpm",
                key_fields=("ipv4.dst",),
                key_kinds=("lpm",),
                allowed_actions=("forward", "drop", "no_op"),
                default_action="drop",
            ),
        ),
        actions=(forward_action(), drop_action(), noop_action()),
    )


def l2_forwarding_program(
    name: str = "l2switch", version: str = "v1"
) -> DataplaneProgram:
    """Exact-match forwarding on ``eth.dst``."""
    return DataplaneProgram(
        name=name,
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="dmac",
                key_fields=("eth.dst",),
                key_kinds=("exact",),
                allowed_actions=("forward", "drop", "to_cpu"),
                default_action="to_cpu",
            ),
        ),
        actions=(forward_action(), drop_action(), to_cpu_action()),
    )


def fabric_multipath_program(
    name: str = "fabric", version: str = "v1"
) -> DataplaneProgram:
    """Multipath LPM forwarding for datacenter fabrics.

    Like :func:`ipv4_forwarding_program` but the LPM table may also
    resolve to ``ecmp_select``, whose group id references a next-hop
    *set* installed with
    :meth:`repro.pisa.runtime.P4Runtime.write_group` — the program the
    fat-tree campaign attests on every switch.
    """
    return DataplaneProgram(
        name=name,
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="ipv4_lpm",
                key_fields=("ipv4.dst",),
                key_kinds=("lpm",),
                allowed_actions=("forward", "ecmp_select", "drop", "no_op"),
                default_action="drop",
            ),
        ),
        actions=(
            forward_action(),
            ecmp_select_action(),
            drop_action(),
            noop_action(),
        ),
    )


def fabric_rogue_program(
    name: str = "fabric", base_version: str = "v1"
) -> DataplaneProgram:
    """A compromised fabric switch: multipath forwarding plus intercept.

    Same parser, LPM table, name and version as
    :func:`fabric_multipath_program`, with a hidden ``intercept``
    table cloning matched traffic to an exfiltration port — the
    Athens-affair move replayed inside a datacenter pod. Only the
    program measurement gives it away.
    """
    clone_to = Action(
        "clone_to",
        (Step(Primitive.CLONE, ("$0",)),),
        param_count=1,
    )
    genuine = fabric_multipath_program(name=name, version=base_version)
    return DataplaneProgram(
        name=name,
        version=base_version,
        parser=genuine.parser,
        tables=genuine.tables
        + (
            TableSpec(
                name="intercept",
                key_fields=("ipv4.src",),
                key_kinds=("ternary",),
                allowed_actions=("clone_to", "no_op"),
                default_action="no_op",
            ),
        ),
        actions=genuine.actions + (clone_to,),
    )


def firewall_program(version: str = "v5") -> DataplaneProgram:
    """The paper's ``firewall_v5.p4``: ternary ACL, then LPM forwarding."""
    return DataplaneProgram(
        name="firewall",
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="acl",
                key_fields=("ipv4.src", "ipv4.dst", "ipv4.protocol"),
                key_kinds=("ternary", "ternary", "ternary"),
                allowed_actions=("drop", "no_op"),
                default_action="no_op",
            ),
            TableSpec(
                name="ipv4_lpm",
                key_fields=("ipv4.dst",),
                key_kinds=("lpm",),
                allowed_actions=("forward", "drop"),
                default_action="drop",
            ),
        ),
        actions=(forward_action(), drop_action(), noop_action()),
    )


def acl_program(version: str = "v3") -> DataplaneProgram:
    """The paper's ``ACL_v3.p4`` appliance program."""
    return DataplaneProgram(
        name="ACL",
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="acl",
                key_fields=("ipv4.src", "ipv4.dst"),
                key_kinds=("ternary", "ternary"),
                allowed_actions=("forward", "drop", "no_op"),
                default_action="no_op",
            ),
            TableSpec(
                name="ipv4_lpm",
                key_fields=("ipv4.dst",),
                key_kinds=("lpm",),
                allowed_actions=("forward", "drop"),
                default_action="drop",
            ),
        ),
        actions=(forward_action(), drop_action(), noop_action()),
    )


def scanner_program(version: str = "v1") -> DataplaneProgram:
    """UC4's traffic scanner: count suspected C2 flows, punt matches.

    A ternary table fingerprints traffic patterns (the paper's malware
    command-and-control characterisation) and both counts and punts
    matching packets; everything else forwards normally.
    """
    count_and_punt = Action(
        "count_and_punt",
        (
            Step(Primitive.COUNT, ("c2_hits", "$0")),
            Step(Primitive.TO_CPU),
        ),
        param_count=1,
    )
    return DataplaneProgram(
        name="scanner",
        version=version,
        parser=standard_parser(),
        tables=(
            TableSpec(
                name="c2_patterns",
                key_fields=("ipv4.dst", "udp.dst_port"),
                key_kinds=("ternary", "ternary"),
                allowed_actions=("count_and_punt", "no_op"),
                default_action="no_op",
            ),
            TableSpec(
                name="ipv4_lpm",
                key_fields=("ipv4.dst",),
                key_kinds=("lpm",),
                allowed_actions=("forward", "drop"),
                default_action="drop",
            ),
        ),
        actions=(forward_action(), drop_action(), noop_action(), count_and_punt),
    )


def athens_rogue_program(base_version: str = "v5") -> DataplaneProgram:
    """The Athens-affair rogue variant of the firewall.

    Identical tables and parser to :func:`firewall_program`, plus a
    hidden ``intercept`` table whose action *clones matched traffic to
    an exfiltration port* — the paper's description of the attack
    ("duplicate digitized voice data streams ... and direct the
    duplicate streams to other cellular phones"). Its measurement
    necessarily differs from the genuine firewall's, which is what UC1
    detects.

    The version string is kept identical to the genuine program's: the
    attacker is not so obliging as to bump it.
    """
    clone_to = Action(
        "clone_to",
        (Step(Primitive.CLONE, ("$0",)),),
        param_count=1,
    )
    genuine = firewall_program(version=base_version)
    return DataplaneProgram(
        name="firewall",
        version=base_version,
        parser=genuine.parser,
        tables=genuine.tables
        + (
            TableSpec(
                name="intercept",
                key_fields=("ipv4.src",),
                key_kinds=("ternary",),
                allowed_actions=("clone_to", "no_op"),
                default_action="no_op",
            ),
        ),
        actions=genuine.actions + (clone_to,),
    )
