"""A PISA switch bound to a simulator node.

Receives packets, runs them through the pipeline, forwards per the
resulting egress spec. This is the *unattested* baseline switch the
benchmarks compare PERA against. The Athens-affair premise holds here:
nothing in this class can prove which program is installed.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.net.simulator import Node
from repro.pisa.pipeline import CPU_PORT, DROP_PORT, PacketContext, Pipeline
from repro.pisa.program import DataplaneProgram
from repro.pisa.runtime import P4Runtime
from repro.telemetry.instrument import NULL_TELEMETRY
from repro.util.errors import PipelineError


class PisaSwitch(Node):
    """A plain (non-attesting) PISA switch."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.runtime = P4Runtime(device_id=name)
        self.telemetry = NULL_TELEMETRY
        self.packets_processed = 0
        self.packets_dropped = 0
        self.packets_to_cpu = 0
        self.total_cost = 0.0
        # LinkGuardian-style local recovery: lost egress transmissions
        # are re-offered up to this many times (0 = no recovery).
        self.resend_budget = 0
        # Pipelines are created on program install; re-stamp telemetry
        # onto each new one so per-stage spans track this switch.
        self.runtime.change_observers.append(self._stamp_pipeline_telemetry)

    def on_bind(self, sim) -> None:
        self.telemetry = sim.telemetry
        self._stamp_pipeline_telemetry("config")

    def _stamp_pipeline_telemetry(self, kind: str) -> None:
        if kind == "config" and self.runtime.pipeline is not None:
            self.runtime.pipeline.telemetry = self.telemetry
            self.runtime.pipeline.telemetry_track = self.name

    @property
    def pipeline(self) -> Pipeline:
        if self.runtime.pipeline is None:
            raise PipelineError(f"switch {self.name!r} has no pipeline installed")
        return self.runtime.pipeline

    @property
    def program(self) -> Optional[DataplaneProgram]:
        return self.runtime.get_forwarding_pipeline_config()

    # --- packet path ----------------------------------------------------

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        if self.runtime.pipeline is None:
            self.packets_dropped += 1
            if self.sim is not None:
                self.sim.drop(self.name, packet, "no pipeline installed")
            return
        ctx = PacketContext.from_packet(packet, ingress_port=in_port)
        ctx = self.process_context(ctx)
        self.emit(ctx)

    def process_context(self, ctx: PacketContext) -> PacketContext:
        """Run the pipeline; subclasses (PERA) extend around this."""
        ctx = self.pipeline.process(ctx)
        self.packets_processed += 1
        self.total_cost += ctx.cost
        return ctx

    def emit(self, ctx: PacketContext) -> None:
        """Act on the context's egress decision."""
        if ctx.egress_spec == DROP_PORT:
            self.packets_dropped += 1
            if self.sim is not None:
                self.sim.drop(self.name, ctx.packet, "pipeline drop")
            return
        if ctx.egress_spec == CPU_PORT:
            self.packets_to_cpu += 1
            self.handle_cpu_packet(ctx)
            return
        out_packet = ctx.rebuild_packet()
        if self.sim is not None:
            self.sim.transmit(
                self.name,
                ctx.egress_spec,
                out_packet,
                resend_budget=self.resend_budget,
            )
            if ctx.clone_spec is not None and ctx.clone_spec != ctx.egress_spec:
                self.sim.transmit(
                    self.name,
                    ctx.clone_spec,
                    out_packet,
                    resend_budget=self.resend_budget,
                )

    def handle_cpu_packet(self, ctx: PacketContext) -> None:
        """Punted packet hook; default emits a digest to the runtime."""
        self.runtime.emit_digest(
            "packet_in",
            {
                "ingress_port": ctx.ingress_port,
                "fields": dict(ctx.fields),
            },
        )
