"""PISA: a Protocol Independent Switch Architecture simulator.

The paper's mechanism is "an extension of the Protocol Independent
Switch Architecture (PISA) [7]". This package is the unextended
architecture — Parse → Match+Action → Deparse (Bosshart et al. 2013):

- :mod:`repro.pisa.parser_engine` — a programmable parser: a state
  machine of extract/select states driven over raw packet bytes.
- :mod:`repro.pisa.tables` — match-action tables with exact, LPM and
  ternary match kinds and priorities.
- :mod:`repro.pisa.actions` — the action primitive set (set field,
  forward, drop, register ops) and compound actions.
- :mod:`repro.pisa.registers` — stateful objects: registers, counters,
  meters.
- :mod:`repro.pisa.program` — the dataplane program object: parser
  spec + table declarations + actions, with a measurement digest
  (what PERA attests).
- :mod:`repro.pisa.pipeline` — executes a program over packet contexts.
- :mod:`repro.pisa.runtime` — a P4Runtime-like control-plane API.
- :mod:`repro.pisa.switch` — binds a pipeline onto a simulator node.
"""

from repro.pisa.actions import Action, ActionCall, Primitive
from repro.pisa.parser_engine import ParserSpec, ParserState, FieldExtract
from repro.pisa.pipeline import PacketContext, Pipeline, DROP_PORT, CPU_PORT
from repro.pisa.program import DataplaneProgram, TableSpec
from repro.pisa.registers import Register, Counter, Meter
from repro.pisa.runtime import P4Runtime, TableEntry
from repro.pisa.switch import PisaSwitch
from repro.pisa.tables import MatchKind, MatchKey, MatchTable

__all__ = [
    "Action",
    "ActionCall",
    "Primitive",
    "ParserSpec",
    "ParserState",
    "FieldExtract",
    "PacketContext",
    "Pipeline",
    "DROP_PORT",
    "CPU_PORT",
    "DataplaneProgram",
    "TableSpec",
    "Register",
    "Counter",
    "Meter",
    "P4Runtime",
    "TableEntry",
    "PisaSwitch",
    "MatchKind",
    "MatchKey",
    "MatchTable",
]
