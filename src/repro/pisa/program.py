"""The dataplane program object — the unit of attestation.

In P4 terms this bundles what ``SetForwardingPipelineConfig`` installs:
the parser spec, table declarations (in pipeline order), and action
definitions. :meth:`DataplaneProgram.measurement` is the digest PERA's
measurement engine reports for the "Program" inertia class: any change
to the parser, a table declaration, or an action body changes it.

This is the object the Athens-affair scenario swaps: a
``firewall_v5`` program replaced by a subtly different one must yield a
different measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.hashing import digest
from repro.pisa.actions import Action, ActionCall
from repro.pisa.parser_engine import ParserSpec
from repro.util.errors import PipelineError


@dataclass(frozen=True)
class TableSpec:
    """Declaration of one match-action table (not its entries)."""

    name: str
    key_fields: Tuple[str, ...]
    key_kinds: Tuple[str, ...]  # MatchKind values, by name, for measurement
    allowed_actions: Tuple[str, ...]
    default_action: str
    max_entries: int = 1024

    def __post_init__(self) -> None:
        if len(self.key_fields) != len(self.key_kinds):
            raise PipelineError(
                f"table {self.name!r}: {len(self.key_fields)} key fields but "
                f"{len(self.key_kinds)} match kinds"
            )
        if self.default_action not in self.allowed_actions:
            raise PipelineError(
                f"table {self.name!r}: default action {self.default_action!r} "
                "not in allowed actions"
            )

    def describe(self) -> bytes:
        parts = [self.name]
        parts += [f"{f}:{k}" for f, k in zip(self.key_fields, self.key_kinds)]
        parts += list(self.allowed_actions)
        parts.append(f"default={self.default_action}")
        parts.append(f"max={self.max_entries}")
        return "|".join(parts).encode("utf-8")


@dataclass(frozen=True)
class DataplaneProgram:
    """A complete dataplane program: parser + tables + actions.

    ``name`` and ``version`` identify the program to humans (e.g.
    ``firewall``, ``v5``); the *measurement* identifies it to
    appraisers. Two programs that differ only in name still measure
    differently because the name participates in the digest — renaming
    a vetted program is itself a configuration change worth noticing
    (use case UC1).
    """

    name: str
    version: str
    parser: ParserSpec
    tables: Tuple[TableSpec, ...]
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        table_names = [t.name for t in self.tables]
        if len(set(table_names)) != len(table_names):
            raise PipelineError("duplicate table names in program")
        action_names = {a.name for a in self.actions}
        if len(action_names) != len(self.actions):
            raise PipelineError("duplicate action names in program")
        for table in self.tables:
            for action_name in table.allowed_actions:
                if action_name not in action_names:
                    raise PipelineError(
                        f"table {table.name!r} allows unknown action "
                        f"{action_name!r}"
                    )

    @property
    def full_name(self) -> str:
        return f"{self.name}_{self.version}"

    def action(self, name: str) -> Action:
        for candidate in self.actions:
            if candidate.name == name:
                return candidate
        raise PipelineError(f"program {self.full_name!r} has no action {name!r}")

    def table_spec(self, name: str) -> TableSpec:
        for candidate in self.tables:
            if candidate.name == name:
                return candidate
        raise PipelineError(f"program {self.full_name!r} has no table {name!r}")

    def measurement(self) -> bytes:
        """The attestation digest of this program (32 bytes).

        Computed once per (frozen) program object and cached: the
        measurement engine reads it per attested packet, and the
        serialization below is by far its hottest part. A config change
        installs a *different* program object, so the cache can never
        go stale.
        """
        cached = self.__dict__.get("_measurement")
        if cached is None:
            blob = b"\x00".join(
                [
                    self.name.encode("utf-8"),
                    self.version.encode("utf-8"),
                    self.parser.describe(),
                ]
                + [t.describe() for t in self.tables]
                + [a.describe() for a in sorted(self.actions, key=lambda a: a.name)]
            )
            cached = digest(blob, domain="dataplane-program")
            object.__setattr__(self, "_measurement", cached)
        return cached

    def default_call(self, table: TableSpec) -> ActionCall:
        """Build the default-action call for ``table`` (no parameters).

        Tables whose default action needs parameters must have them set
        via the runtime instead.
        """
        action = self.action(table.default_action)
        if action.param_count != 0:
            raise PipelineError(
                f"default action {action.name!r} of table {table.name!r} "
                "requires parameters; set it via the runtime"
            )
        return ActionCall(action=action, params=())
