"""The match-action pipeline: executes a program over packet contexts.

The pipeline models the PISA stages the paper's Fig. 3 draws: Parse,
Match+Action, Deparse (the Sign/Verify and Evidence blocks are added by
:mod:`repro.pera`). It also carries a :class:`CostModel` so benchmarks
can report per-stage processing cost — the quantity Fig. 3's caption
calls "tuned to balance performance and security".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.pisa.actions import ActionCall, Primitive
from repro.pisa.program import DataplaneProgram
from repro.pisa.registers import Counter, Meter, Register
from repro.pisa.tables import MatchTable
from repro.telemetry.instrument import NULL_TELEMETRY
from repro.util.errors import PipelineError

DROP_PORT = 511
CPU_PORT = 510


@dataclass
class CostModel:
    """Abstract per-operation costs (arbitrary 'cycle' units).

    The absolute values are not calibrated to any ASIC; the benchmarks
    only rely on their *ratios* (signing ≫ hashing ≫ table lookup).
    """

    parse_per_byte: float = 0.5
    table_lookup: float = 10.0
    action_primitive: float = 2.0
    register_op: float = 4.0
    hash_per_byte: float = 1.0
    sign: float = 4000.0
    verify: float = 8000.0
    deparse_per_byte: float = 0.5


@dataclass
class PacketContext:
    """Mutable per-packet state flowing through the pipeline."""

    fields: Dict[str, int]
    headers: List[str]
    payload: bytes
    packet: Optional[Packet] = None
    ingress_port: int = 0
    egress_spec: int = DROP_PORT
    clone_spec: Optional[int] = None
    mark_ra: bool = False
    cost: float = 0.0
    trace: List[str] = field(default_factory=list)

    @classmethod
    def from_packet(cls, packet: Packet, ingress_port: int) -> "PacketContext":
        """Build a context from an already-parsed packet (fast path).

        The field map mirrors what the reference parser would extract
        from the packet's wire form.
        """
        fields: Dict[str, int] = {
            "eth.dst": packet.eth.dst,
            "eth.src": packet.eth.src,
            "eth.ethertype": packet.eth.ethertype,
        }
        headers = ["eth"]
        if packet.ipv4 is not None:
            fields.update(
                {
                    "ipv4.src": packet.ipv4.src,
                    "ipv4.dst": packet.ipv4.dst,
                    "ipv4.protocol": packet.ipv4.protocol,
                    "ipv4.ttl": packet.ipv4.ttl,
                    "ipv4.total_length": packet.ipv4.total_length,
                    "ipv4.dscp": packet.ipv4.dscp,
                }
            )
            headers.append("ipv4")
        if packet.udp is not None:
            fields.update(
                {
                    "udp.src_port": packet.udp.src_port,
                    "udp.dst_port": packet.udp.dst_port,
                    "udp.length": packet.udp.length,
                }
            )
            headers.append("udp")
        if packet.tcp is not None:
            fields.update(
                {
                    "tcp.src_port": packet.tcp.src_port,
                    "tcp.dst_port": packet.tcp.dst_port,
                    "tcp.flags": packet.tcp.flags,
                }
            )
            headers.append("tcp")
        if packet.ra_shim is not None:
            fields.update(
                {
                    "ra.flags": packet.ra_shim.flags,
                    "ra.hop_count": packet.ra_shim.hop_count,
                }
            )
            headers.append("ra")
        return cls(
            fields=fields,
            headers=headers,
            payload=packet.payload,
            packet=packet,
            ingress_port=ingress_port,
        )

    def field_value(self, name: str) -> int:
        if name == "standard_metadata.ingress_port":
            return self.ingress_port
        if name == "standard_metadata.egress_spec":
            return self.egress_spec
        value = self.fields.get(name)
        if value is None:
            raise PipelineError(f"packet has no field {name!r}")
        return value

    def has_field(self, name: str) -> bool:
        if name.startswith("standard_metadata."):
            return name in (
                "standard_metadata.ingress_port",
                "standard_metadata.egress_spec",
            )
        return name in self.fields

    def rebuild_packet(self) -> Packet:
        """Apply context field changes back onto the packet.

        Only fields a forwarding pipeline legitimately rewrites are
        applied: Ethernet addresses, TTL, DSCP. Everything else is
        attested state, not forwarding state.
        """
        if self.packet is None:
            raise PipelineError("context has no originating packet")
        packet = self.packet
        eth = replace(
            packet.eth,
            dst=self.fields.get("eth.dst", packet.eth.dst),
            src=self.fields.get("eth.src", packet.eth.src),
        )
        packet = replace(packet, eth=eth)
        if packet.ipv4 is not None:
            ipv4 = replace(
                packet.ipv4,
                ttl=self.fields.get("ipv4.ttl", packet.ipv4.ttl),
                dscp=self.fields.get("ipv4.dscp", packet.ipv4.dscp),
            )
            packet = replace(packet, ipv4=ipv4)
        return packet


class Pipeline:
    """Executes one dataplane program, holding all its runtime state."""

    def __init__(
        self, program: DataplaneProgram, cost_model: Optional[CostModel] = None
    ) -> None:
        self.program = program
        self.cost_model = cost_model or CostModel()
        # Stamped by the owning switch on bind/install; inert otherwise.
        self.telemetry = NULL_TELEMETRY
        self.telemetry_track = program.name
        self.tables: Dict[str, MatchTable] = {}
        self.registers: Dict[str, Register] = {}
        self.counters: Dict[str, Counter] = {}
        self.meters: Dict[str, Meter] = {}
        # Action-selector groups (ECMP next-hop sets), installed via
        # P4Runtime.write_group. Like table entries, they are runtime
        # state: they do not survive a program swap.
        self.groups: Dict[int, Tuple[int, ...]] = {}
        # Hook the owning switch installs to pick a member for
        # SELECT_FORWARD — models the hash extern behind a P4 action
        # selector. Without one, the first (lowest) member wins.
        self.member_selector: Optional[
            Callable[[Tuple[int, ...], "PacketContext"], int]
        ] = None
        for spec in program.tables:
            self.tables[spec.name] = MatchTable(
                name=spec.name,
                key_fields=spec.key_fields,
                default_action=program.default_call(spec),
                max_entries=spec.max_entries,
            )

    # --- state management -------------------------------------------------

    def add_register(self, register: Register) -> None:
        if register.name in self.registers:
            raise PipelineError(f"duplicate register {register.name!r}")
        self.registers[register.name] = register

    def add_counter(self, counter: Counter) -> None:
        if counter.name in self.counters:
            raise PipelineError(f"duplicate counter {counter.name!r}")
        self.counters[counter.name] = counter

    def add_meter(self, meter: Meter) -> None:
        if meter.name in self.meters:
            raise PipelineError(f"duplicate meter {meter.name!r}")
        self.meters[meter.name] = meter

    def table(self, name: str) -> MatchTable:
        table = self.tables.get(name)
        if table is None:
            raise PipelineError(f"no table named {name!r}")
        return table

    def set_group(self, group_id: int, ports: Tuple[int, ...]) -> None:
        """Install (or replace) a multipath group's member ports."""
        if group_id <= 0:
            raise PipelineError(f"group id must be positive, got {group_id}")
        if not ports:
            raise PipelineError(f"group {group_id} needs at least one member")
        self.groups[group_id] = tuple(sorted(int(p) for p in ports))

    # --- execution -----------------------------------------------------------

    def process(self, ctx: PacketContext) -> PacketContext:
        """Run the context through parse-cost accounting and all tables.

        With telemetry active, each PISA stage (parse, every table,
        deparse) is bracketed in a span and table hits/misses feed
        labeled counters; otherwise the loop below runs untouched.
        """
        if self.telemetry.active:
            return self._process_instrumented(ctx)
        ctx.cost += self.cost_model.parse_per_byte * (
            len(ctx.payload) + 64  # header bytes approximation for costing
        )
        for spec in self.program.tables:
            _, terminal = self._run_stage(spec, ctx)
            if terminal:
                break  # dropped or punted: later stages are skipped
        ctx.cost += self.cost_model.deparse_per_byte * (len(ctx.payload) + 64)
        return ctx

    def _process_instrumented(self, ctx: PacketContext) -> PacketContext:
        """The same stage walk, bracketed in spans and counters."""
        tel = self.telemetry
        track = self.telemetry_track
        trace = getattr(ctx.packet, "trace", None)
        tags = trace.span_args() if trace is not None else {}
        with tel.span("pisa.parse", track=track, **tags):
            ctx.cost += self.cost_model.parse_per_byte * (len(ctx.payload) + 64)
        for spec in self.program.tables:
            with tel.span(
                "pisa.stage", track=track, table=spec.name, **tags
            ) as span:
                hit, terminal = self._run_stage(spec, ctx)
                span.note(hit=hit)
            tel.counter(
                "pisa.table_lookups",
                table=spec.name,
                outcome="hit" if hit else "miss",
            ).inc()
            if terminal:
                break
        with tel.span("pisa.deparse", track=track, **tags):
            ctx.cost += self.cost_model.deparse_per_byte * (
                len(ctx.payload) + 64
            )
        return ctx

    def _run_stage(
        self, spec, ctx: PacketContext
    ) -> Tuple[bool, bool]:
        """One match-action stage; returns (table hit, pipeline done)."""
        table = self.tables[spec.name]
        values = [ctx.field_value(name) for name in spec.key_fields]
        action_call, hit = table.lookup(values)
        ctx.cost += self.cost_model.table_lookup
        ctx.trace.append(
            f"{spec.name}:{'hit' if hit else 'miss'}->{action_call.action.name}"
        )
        self._execute(action_call, ctx)
        terminal = {Primitive.DROP, Primitive.TO_CPU}
        done = ctx.egress_spec in (DROP_PORT, CPU_PORT) and any(
            step.primitive in terminal
            for step in action_call.action.steps
        )
        return hit, done

    def _execute(self, call: ActionCall, ctx: PacketContext) -> None:
        action = call.action
        for step in action.steps:
            args = action.resolve_args(step, call.params)
            ctx.cost += self.cost_model.action_primitive
            if step.primitive is Primitive.SET_FIELD:
                field_name, value = args
                ctx.fields[str(field_name)] = int(value)
            elif step.primitive is Primitive.COPY_FIELD:
                dst, src = args
                ctx.fields[str(dst)] = ctx.field_value(str(src))
            elif step.primitive is Primitive.ADD_TO_FIELD:
                field_name, delta = args
                ctx.fields[str(field_name)] = ctx.field_value(str(field_name)) + int(
                    delta
                )
            elif step.primitive is Primitive.FORWARD:
                (port,) = args
                ctx.egress_spec = int(port)
            elif step.primitive is Primitive.DROP:
                ctx.egress_spec = DROP_PORT
            elif step.primitive is Primitive.TO_CPU:
                ctx.egress_spec = CPU_PORT
            elif step.primitive is Primitive.REGISTER_WRITE:
                reg_name, index, value = args
                self._register(str(reg_name)).write(int(index), int(value))
                ctx.cost += self.cost_model.register_op
            elif step.primitive is Primitive.REGISTER_READ:
                reg_name, index, dst_field = args
                ctx.fields[str(dst_field)] = self._register(str(reg_name)).read(
                    int(index)
                )
                ctx.cost += self.cost_model.register_op
            elif step.primitive is Primitive.COUNT:
                counter_name, index = args
                counter = self.counters.get(str(counter_name))
                if counter is None:
                    raise PipelineError(f"no counter named {counter_name!r}")
                counter.count(int(index), len(ctx.payload))
            elif step.primitive is Primitive.MARK_RA:
                ctx.mark_ra = True
            elif step.primitive is Primitive.CLONE:
                (port,) = args
                ctx.clone_spec = int(port)
            elif step.primitive is Primitive.SELECT_FORWARD:
                (group_ref,) = args
                members = self.groups.get(int(group_ref))
                if not members:
                    raise PipelineError(
                        f"no members installed for group {group_ref}"
                    )
                if self.member_selector is not None:
                    ctx.egress_spec = int(self.member_selector(members, ctx))
                else:
                    ctx.egress_spec = members[0]
            elif step.primitive is Primitive.NO_OP:
                pass
            else:  # pragma: no cover - enum is closed
                raise PipelineError(f"unknown primitive {step.primitive}")

    def _register(self, name: str) -> Register:
        register = self.registers.get(name)
        if register is None:
            raise PipelineError(f"no register named {name!r}")
        return register

    # --- measurement hooks (consumed by PERA) ---------------------------------

    def measure_tables(self) -> Dict[str, bytes]:
        """Canonical content of every table, for the Tables inertia class.

        Multipath groups are measured alongside entries: a tampered
        next-hop set is a forwarding-state compromise just like a
        tampered entry.
        """
        content: Dict[str, bytes] = {}
        for table in self.tables.values():
            content.update(table.measure_content())
        for group_id in sorted(self.groups):
            ports = ",".join(str(p) for p in self.groups[group_id])
            content[f"__group__{group_id}"] = ports.encode("utf-8")
        return content

    def measure_state(self) -> Dict[str, bytes]:
        """Canonical register state, for the Prog. State inertia class."""
        return {name: reg.snapshot() for name, reg in sorted(self.registers.items())}
