"""A P4Runtime-like control-plane API.

Mirrors the verbs of the real P4Runtime gRPC service in-process:
``set_forwarding_pipeline_config`` (program install),
``write``/``read`` on table entries, counter reads, digest
subscriptions, and master arbitration (one writer at a time per
device). The calibration hint for this reproduction calls P4Runtime
scripting the standard control-plane substrate — this module is that
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.pisa.actions import ActionCall
from repro.pisa.pipeline import Pipeline
from repro.pisa.program import DataplaneProgram
from repro.pisa.tables import InstalledEntry, MatchKey
from repro.util.errors import PipelineError


@dataclass(frozen=True)
class TableEntry:
    """Control-plane view of one table entry (P4Runtime ``TableEntry``)."""

    table: str
    keys: Tuple[MatchKey, ...]
    action: str
    params: Tuple[int, ...] = ()
    priority: int = 0


@dataclass
class DigestMessage:
    """A dataplane-to-controller notification (P4Runtime ``DigestList``)."""

    name: str
    payload: dict


class P4Runtime:
    """The control-plane endpoint of one switch.

    Owns the device's pipeline: installs programs, writes entries,
    streams digests. ``election_id`` arbitration admits exactly one
    master controller; writes from non-masters are rejected, which is
    the hook the attestation story cares about — a rogue controller
    *can* become master by presenting a higher election id, and only
    attestation of the installed program reveals what it did.
    """

    def __init__(self, device_id: str) -> None:
        self.device_id = device_id
        self.pipeline: Optional[Pipeline] = None
        self._master_election_id: int = 0
        self._master: Optional[str] = None
        self._digest_subscribers: Dict[str, List[Callable[[DigestMessage], None]]] = {}
        self.config_history: List[str] = []
        # Observers called with the kind of state change ("config" or
        # "table") after every successful write. PERA's evidence cache
        # hangs off this: control-plane writes must invalidate cached
        # measurements immediately, not at TTL expiry.
        self.change_observers: List[Callable[[str], None]] = []

    def _notify(self, kind: str) -> None:
        for observer in self.change_observers:
            observer(kind)

    # --- arbitration -----------------------------------------------------

    def arbitrate(self, controller: str, election_id: int) -> bool:
        """Claim mastership; highest election id wins (P4Runtime §5.3)."""
        if election_id <= 0:
            raise PipelineError("election id must be positive")
        if election_id >= self._master_election_id:
            self._master_election_id = election_id
            self._master = controller
            return True
        return False

    @property
    def master(self) -> Optional[str]:
        return self._master

    def _check_master(self, controller: str) -> None:
        if controller != self._master:
            raise PipelineError(
                f"controller {controller!r} is not master of device "
                f"{self.device_id!r} (master: {self._master!r})"
            )

    # --- pipeline config -----------------------------------------------------

    def set_forwarding_pipeline_config(
        self, controller: str, program: DataplaneProgram
    ) -> Pipeline:
        """Install ``program``, replacing any previous pipeline.

        Table entries do NOT survive a program swap — exactly why use
        case UC1 wants the swap to be attestable.
        """
        self._check_master(controller)
        self.pipeline = Pipeline(program)
        self.config_history.append(program.full_name)
        self._notify("config")
        return self.pipeline

    def get_forwarding_pipeline_config(self) -> Optional[DataplaneProgram]:
        return self.pipeline.program if self.pipeline else None

    def _require_pipeline(self) -> Pipeline:
        if self.pipeline is None:
            raise PipelineError(
                f"device {self.device_id!r} has no forwarding pipeline config"
            )
        return self.pipeline

    # --- table writes -----------------------------------------------------------

    def write(self, controller: str, entry: TableEntry) -> None:
        """Insert a table entry (P4Runtime INSERT)."""
        self._check_master(controller)
        pipeline = self._require_pipeline()
        spec = pipeline.program.table_spec(entry.table)
        if entry.action not in spec.allowed_actions:
            raise PipelineError(
                f"action {entry.action!r} not allowed in table {entry.table!r}"
            )
        action = pipeline.program.action(entry.action)
        pipeline.table(entry.table).insert(
            InstalledEntry(
                keys=entry.keys,
                action_call=ActionCall(action=action, params=entry.params),
                priority=entry.priority,
            )
        )
        self._notify("table")

    def delete(self, controller: str, entry: TableEntry) -> bool:
        """Remove a table entry (P4Runtime DELETE); True if found."""
        self._check_master(controller)
        pipeline = self._require_pipeline()
        action = pipeline.program.action(entry.action)
        removed = pipeline.table(entry.table).remove(
            InstalledEntry(
                keys=entry.keys,
                action_call=ActionCall(action=action, params=entry.params),
                priority=entry.priority,
            )
        )
        if removed:
            self._notify("table")
        return removed

    def read_entries(self, table: str) -> List[InstalledEntry]:
        """Read back a table's entries (P4Runtime READ)."""
        return self._require_pipeline().table(table).entries

    # --- action-selector groups ----------------------------------------------

    def write_group(
        self, controller: str, group_id: int, ports: Tuple[int, ...]
    ) -> None:
        """Install a multipath group's member ports (P4Runtime
        ``ActionProfileGroup`` INSERT/MODIFY).

        Entries written with the ``ecmp_select`` action reference the
        group by id; the pipeline's member-selector hook picks among
        the ports per packet. Master-gated like every write — a rogue
        controller rewriting a next-hop set is exactly as attestable
        as one rewriting an entry.
        """
        self._check_master(controller)
        self._require_pipeline().set_group(group_id, ports)
        self._notify("table")

    def read_groups(self) -> Dict[int, Tuple[int, ...]]:
        """Read back all installed multipath groups."""
        return dict(self._require_pipeline().groups)

    def read_counter(self, counter: str, index: int) -> Dict[str, int]:
        pipeline = self._require_pipeline()
        obj = pipeline.counters.get(counter)
        if obj is None:
            raise PipelineError(f"no counter named {counter!r}")
        return obj.read(index)

    # --- digests ----------------------------------------------------------------

    def subscribe_digest(
        self, name: str, callback: Callable[[DigestMessage], None]
    ) -> None:
        self._digest_subscribers.setdefault(name, []).append(callback)

    def emit_digest(self, name: str, payload: dict) -> int:
        """Called by the dataplane; returns subscriber count."""
        message = DigestMessage(name=name, payload=payload)
        subscribers = self._digest_subscribers.get(name, [])
        for callback in subscribers:
            callback(message)
        return len(subscribers)
