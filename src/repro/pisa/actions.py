"""Actions: the behaviour half of match-action tables.

An :class:`Action` is a named sequence of primitives, each primitive a
small opcode over the packet context — mirroring how P4 compiles action
bodies down to a fixed primitive set (modify_field, drop, ...). Action
*definitions* are part of the program measurement; action *parameters*
arrive per table entry at run time.

Parameter references: a primitive argument given as the string
``"$0"``, ``"$1"``, ... is substituted from the entry's action data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from repro.util.errors import PipelineError


class Primitive(enum.Enum):
    """The primitive opcode set."""

    SET_FIELD = "set_field"  # (field, value)
    COPY_FIELD = "copy_field"  # (dst_field, src_field)
    ADD_TO_FIELD = "add_to_field"  # (field, delta) — wraps at field width? no: int
    FORWARD = "forward"  # (port,)
    DROP = "drop"  # ()
    TO_CPU = "to_cpu"  # () — punt to the control plane
    REGISTER_WRITE = "register_write"  # (register, index, value)
    REGISTER_READ = "register_read"  # (register, index, dst_field)
    COUNT = "count"  # (counter, index)
    MARK_RA = "mark_ra"  # () — request RA processing (PERA hook)
    CLONE = "clone"  # (port,) — duplicate the packet to another port
    NO_OP = "no_op"  # ()
    SELECT_FORWARD = "select_forward"  # (group,) — pick an ECMP group member


Arg = Union[int, str]


@dataclass(frozen=True)
class Step:
    """One primitive invocation with its (possibly symbolic) arguments."""

    primitive: Primitive
    args: Tuple[Arg, ...] = ()


@dataclass(frozen=True)
class Action:
    """A named action: an ordered sequence of steps.

    ``param_count`` declares how many runtime parameters entries must
    supply; ``$i`` references in step args index into them.
    """

    name: str
    steps: Tuple[Step, ...]
    param_count: int = 0

    def describe(self) -> bytes:
        """Canonical byte description for program measurement."""
        parts = [self.name, str(self.param_count)]
        for step in self.steps:
            parts.append(step.primitive.value)
            parts += [str(arg) for arg in step.args]
        return "|".join(parts).encode("utf-8")

    def resolve_args(
        self, step: Step, params: Sequence[int]
    ) -> Tuple[Union[int, str], ...]:
        """Substitute ``$i`` references in ``step`` from ``params``."""
        resolved = []
        for arg in step.args:
            if isinstance(arg, str) and arg.startswith("$"):
                try:
                    index = int(arg[1:])
                except ValueError as exc:
                    raise PipelineError(f"bad parameter reference {arg!r}") from exc
                if not 0 <= index < len(params):
                    raise PipelineError(
                        f"action {self.name!r} step references parameter {arg} "
                        f"but entry supplied {len(params)}"
                    )
                resolved.append(params[index])
            else:
                resolved.append(arg)
        return tuple(resolved)


@dataclass(frozen=True)
class ActionCall:
    """An action bound to concrete runtime parameters (from an entry)."""

    action: Action
    params: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.params) != self.action.param_count:
            raise PipelineError(
                f"action {self.action.name!r} expects "
                f"{self.action.param_count} parameters, got {len(self.params)}"
            )


# --- a small standard library of actions ------------------------------------

def forward_action() -> Action:
    """``forward(port)`` — set the egress port."""
    return Action("forward", (Step(Primitive.FORWARD, ("$0",)),), param_count=1)


def drop_action() -> Action:
    """``drop()`` — discard the packet."""
    return Action("drop", (Step(Primitive.DROP),))


def noop_action() -> Action:
    """``no_op()`` — match but do nothing (used as table defaults)."""
    return Action("no_op", (Step(Primitive.NO_OP),))


def to_cpu_action() -> Action:
    """``to_cpu()`` — punt to the control plane."""
    return Action("to_cpu", (Step(Primitive.TO_CPU),))


def ecmp_select_action() -> Action:
    """``ecmp_select(group)`` — forward via a multipath group member.

    The group id resolves against the pipeline's action-selector
    groups (installed with :meth:`repro.pisa.runtime.P4Runtime.write_group`);
    the pipeline's ``member_selector`` hook picks the member port —
    mirroring a P4 action selector backed by a hash extern.
    """
    return Action(
        "ecmp_select", (Step(Primitive.SELECT_FORWARD, ("$0",)),), param_count=1
    )


def forward_and_mark_ra_action() -> Action:
    """``forward_ra(port)`` — forward and request RA processing."""
    return Action(
        "forward_ra",
        (Step(Primitive.FORWARD, ("$0",)), Step(Primitive.MARK_RA)),
        param_count=1,
    )
