"""Flow specifications, the packet-launching engine, and FCT sinks.

A :class:`FlowSpec` is pure data: who talks to whom, how many packets,
when, how fast, and whether the flow rides an attested path. The
:class:`FlowEngine` turns specs into scheduled sends through
``Simulator.schedule_on`` — the ownership-gated hook — so one build
function drives a monolithic :class:`~repro.net.simulator.Simulator`
and every shard of a :class:`~repro.net.sharding.ShardSimulator`
identically, with each packet sent exactly once.

Every workload packet's payload starts with a self-describing header
(magic, flow id, sequence number) so the receiving
:class:`FlowSink` can account flow progress and completion times
without any out-of-band bookkeeping — and without retaining the
packet objects, which at a million packets per campaign would dwarf
the simulation state itself.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.net.headers import RaShimHeader
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.util.errors import NetworkError

#: Magic prefix marking a workload-engine payload.
_FLOW_MAGIC = b"FLW1"
#: magic + 4-byte flow id + 4-byte sequence number.
FLOW_PAYLOAD_MIN_BYTES = len(_FLOW_MAGIC) + 8

_HEADER = struct.Struct(">4sII")


def encode_flow_payload(flow_id: int, seq: int, size: int) -> bytes:
    """A ``size``-byte payload carrying (flow id, sequence number)."""
    if size < FLOW_PAYLOAD_MIN_BYTES:
        raise NetworkError(
            f"flow payload needs >= {FLOW_PAYLOAD_MIN_BYTES} bytes, got {size}"
        )
    header = _HEADER.pack(_FLOW_MAGIC, flow_id & 0xFFFFFFFF, seq & 0xFFFFFFFF)
    return header + b"\x00" * (size - len(header))


def decode_flow_payload(payload: bytes) -> Optional[Tuple[int, int]]:
    """Return (flow id, sequence number), or None for foreign payloads."""
    if len(payload) < FLOW_PAYLOAD_MIN_BYTES:
        return None
    magic, flow_id, seq = _HEADER.unpack_from(payload)
    if magic != _FLOW_MAGIC:
        return None
    return flow_id, seq


@dataclass(frozen=True)
class FlowSpec:
    """One flow: a pacing of ``packets`` sends from ``src`` to ``dst``.

    ``kind`` is a free-form label ("mouse", "elephant", "request",
    "response") carried into completion records; ``attested`` flows
    get an RA shim from the engine's ``shim_for`` hook and keep their
    telemetry trace, bulk flows send untraced.
    """

    flow_id: int
    src: str
    dst: str
    src_port: int
    dst_port: int
    packets: int
    payload_bytes: int = 64
    start_s: float = 0.0
    gap_s: float = 2e-6
    kind: str = "bulk"
    attested: bool = False

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise NetworkError(f"flow {self.flow_id} needs >= 1 packet")
        if self.payload_bytes < FLOW_PAYLOAD_MIN_BYTES:
            raise NetworkError(
                f"flow {self.flow_id} payload {self.payload_bytes} below "
                f"the {FLOW_PAYLOAD_MIN_BYTES}-byte flow header"
            )
        if self.start_s < 0 or self.gap_s < 0:
            raise NetworkError(f"flow {self.flow_id} has negative timing")
        if self.src == self.dst:
            raise NetworkError(f"flow {self.flow_id} sends to itself")

    @property
    def last_send_s(self) -> float:
        """Scheduled send time of the flow's final packet."""
        return self.start_s + (self.packets - 1) * self.gap_s


class FlowSink(Host):
    """A host that accounts workload flows instead of hoarding packets.

    Bulk workload packets update per-flow ``(count, first_arrival,
    last_arrival)`` records and are then discarded; attested packets
    (and any non-workload traffic) take the normal :class:`Host` path,
    staying in ``received`` for appraisal.
    """

    def __init__(self, name: str, mac: int, ip: int, port: int = 1) -> None:
        super().__init__(name, mac, ip, port)
        # flow id -> [packets received, first arrival, last arrival]
        self.flow_arrivals: Dict[int, List[float]] = {}
        self.packets_sunk = 0
        # flow id -> ECN-marked packets seen; congestion evidence the
        # campaign harvests (docs/CONGESTION.md).
        self.ecn_by_flow: Dict[int, int] = {}
        self.ecn_marked = 0

    def _account(self, flow_id: int, ecn: bool = False) -> None:
        now = self.sim.clock.now
        record = self.flow_arrivals.get(flow_id)
        if record is None:
            self.flow_arrivals[flow_id] = [1.0, now, now]
        else:
            record[0] += 1.0
            record[2] = now
        self.packets_sunk += 1
        if ecn:
            self.ecn_by_flow[flow_id] = self.ecn_by_flow.get(flow_id, 0) + 1
            self.ecn_marked += 1

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        decoded = decode_flow_payload(packet.payload)
        if decoded is not None:
            self._account(decoded[0], ecn=getattr(packet, "ecn", False))
            if packet.ra_shim is None:
                return  # bulk traffic: accounted, not retained
        super().handle_packet(packet, in_port)


class FlowEngine:
    """Schedules every packet of a flow population onto a simulator.

    ``hosts`` maps names to bound :class:`Host` objects (the full
    world — ownership gates decide which sends actually fire in a
    shard). ``shim_for`` supplies the RA shim for attested flows,
    typically a compiled path policy from
    :func:`repro.core.compiler.compile_policy_for_path`; returning
    ``None`` sends the flow unattested.
    """

    def __init__(
        self,
        sim: Simulator,
        hosts: Mapping[str, Host],
        shim_for: Optional[
            Callable[[FlowSpec], Optional[RaShimHeader]]
        ] = None,
    ) -> None:
        self.sim = sim
        self.hosts = hosts
        self.shim_for = shim_for
        self.packets_scheduled = 0
        self.flows_launched = 0

    def launch(self, flows: Iterable[FlowSpec]) -> int:
        """Schedule all packets of ``flows``; returns the packet count.

        Sends are scheduled relative to the simulator's current clock
        (call at build time, clock 0, for absolute starts). Duplicate
        flow ids are rejected up front — the payload header cannot
        disambiguate them at the sink.
        """
        seen: Dict[int, str] = {}
        scheduled = 0
        for flow in flows:
            if flow.flow_id in seen:
                raise NetworkError(
                    f"duplicate flow id {flow.flow_id} "
                    f"({seen[flow.flow_id]} and {flow.src})"
                )
            seen[flow.flow_id] = flow.src
            src = self.hosts.get(flow.src)
            dst = self.hosts.get(flow.dst)
            if src is None or dst is None:
                raise NetworkError(
                    f"flow {flow.flow_id} references unknown host "
                    f"{flow.src if src is None else flow.dst!r}"
                )
            shim = (
                self.shim_for(flow)
                if (flow.attested and self.shim_for is not None)
                else None
            )
            for seq in range(flow.packets):
                payload = encode_flow_payload(
                    flow.flow_id, seq, flow.payload_bytes
                )
                self.sim.schedule_on(
                    flow.src,
                    flow.start_s + seq * flow.gap_s,
                    lambda f=flow, s=src, d=dst, p=payload, sh=shim: s.send_udp(
                        dst_mac=d.mac,
                        dst_ip=d.ip,
                        src_port=f.src_port,
                        dst_port=f.dst_port,
                        payload=p,
                        ra_shim=sh,
                        traced=f.attested,
                    ),
                )
                scheduled += 1
            self.flows_launched += 1
        self.packets_scheduled += scheduled
        return scheduled


def flow_completion_times(
    flows: Iterable[FlowSpec],
    sinks: Iterable[FlowSink],
) -> Dict[int, float]:
    """FCT per completed flow: last arrival minus scheduled start.

    Only flows whose sink saw *every* packet count as complete —
    partial flows (packets still in flight, or lost to faults) are
    omitted rather than reported with an optimistic tail.
    """
    arrivals: Dict[int, List[float]] = {}
    for sink in sinks:
        for flow_id, record in sink.flow_arrivals.items():
            arrivals[flow_id] = record
    fct: Dict[int, float] = {}
    for flow in flows:
        record = arrivals.get(flow.flow_id)
        if record is None or int(record[0]) < flow.packets:
            continue
        fct[flow.flow_id] = record[2] - flow.start_s
    return fct
