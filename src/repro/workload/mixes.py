"""Seeded datacenter traffic mixes: who sends how much, when.

Every generator takes an explicit seed and draws from its own
``random.Random`` in a fixed order, so a mix is a pure function of its
arguments — the property the byte-identity determinism sweep relies
on. Flow start times get a per-flow-id nanosecond-scale stagger: two
flows from different sources landing at one destination at the *exact*
same float timestamp is the one ordering a sharded run cannot pin
(docs/SHARDING.md), so mixes simply never mint such collisions.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.util.errors import NetworkError
from repro.workload.flows import FlowSpec

#: Prime-modulus nanosecond stagger — unique per flow id (mod 1009).
_STAGGER_S = 1e-9
_STAGGER_MOD = 1009


def _staggered(start_s: float, flow_id: int) -> float:
    return start_s + (flow_id % _STAGGER_MOD) * _STAGGER_S


def poisson_starts(
    rng: random.Random, count: int, rate_per_s: float, t0: float = 0.0
) -> List[float]:
    """``count`` arrival times of a Poisson process at ``rate_per_s``."""
    if rate_per_s <= 0:
        raise NetworkError(f"arrival rate must be positive, got {rate_per_s}")
    starts: List[float] = []
    t = t0
    for _ in range(count):
        t += rng.expovariate(rate_per_s)
        starts.append(t)
    return starts


def on_off_starts(
    rng: random.Random,
    count: int,
    burst_len: int,
    on_rate_per_s: float,
    off_gap_s: float,
    t0: float = 0.0,
) -> List[float]:
    """``count`` arrivals from an on-off source: Poisson bursts of
    ``burst_len`` flows, separated by exponential off periods with
    mean ``off_gap_s``."""
    if burst_len < 1:
        raise NetworkError(f"burst length must be >= 1, got {burst_len}")
    if off_gap_s <= 0:
        raise NetworkError(f"off gap must be positive, got {off_gap_s}")
    starts: List[float] = []
    t = t0
    while len(starts) < count:
        for _ in range(min(burst_len, count - len(starts))):
            t += rng.expovariate(on_rate_per_s)
            starts.append(t)
        t += rng.expovariate(1.0 / off_gap_s)
    return starts


def _pick_pair(
    rng: random.Random, hosts: Sequence[str]
) -> Tuple[str, str]:
    src = rng.choice(hosts)
    dst = rng.choice(hosts)
    while dst == src:
        dst = rng.choice(hosts)
    return src, dst


def elephant_mice_mix(
    hosts: Sequence[str],
    seed: int,
    flows: int,
    mice_fraction: float = 0.9,
    mice_packets: Tuple[int, int] = (1, 8),
    elephant_packets: Tuple[int, int] = (64, 256),
    payload_bytes: int = 64,
    gap_s: float = 2e-6,
    arrival_rate_per_s: float = 200_000.0,
    arrival: str = "poisson",
    burst_len: int = 8,
    off_gap_s: float = 100e-6,
    first_flow_id: int = 0,
    base_port: int = 20000,
    t0: float = 0.0,
) -> List[FlowSpec]:
    """The classic heavy-tailed datacenter mix: many mice, few elephants.

    ``mice_fraction`` of flows draw their size uniformly from
    ``mice_packets``, the rest from ``elephant_packets``; arrivals are
    Poisson (``arrival="poisson"``) or bursty on-off
    (``arrival="on_off"``); endpoints are uniform distinct pairs.
    Deterministic in all arguments.
    """
    if len(hosts) < 2:
        raise NetworkError("a traffic mix needs at least two hosts")
    if not 0.0 <= mice_fraction <= 1.0:
        raise NetworkError(f"mice fraction {mice_fraction} out of [0, 1]")
    rng = random.Random(seed)
    if arrival == "poisson":
        starts = poisson_starts(rng, flows, arrival_rate_per_s, t0)
    elif arrival == "on_off":
        starts = on_off_starts(
            rng, flows, burst_len, arrival_rate_per_s, off_gap_s, t0
        )
    else:
        raise NetworkError(f"unknown arrival process {arrival!r}")
    specs: List[FlowSpec] = []
    for i, start in enumerate(starts):
        flow_id = first_flow_id + i
        src, dst = _pick_pair(rng, hosts)
        if rng.random() < mice_fraction:
            kind = "mouse"
            packets = rng.randint(*mice_packets)
        else:
            kind = "elephant"
            packets = rng.randint(*elephant_packets)
        specs.append(
            FlowSpec(
                flow_id=flow_id,
                src=src,
                dst=dst,
                src_port=base_port + (flow_id % 20000),
                dst_port=9000,
                packets=packets,
                payload_bytes=payload_bytes,
                start_s=_staggered(start, flow_id),
                gap_s=gap_s,
                kind=kind,
            )
        )
    return specs


def incast_mix(
    senders: Sequence[str],
    target: str,
    seed: int,
    packets: int = 32,
    payload_bytes: int = 256,
    gap_s: float = 1e-6,
    start_s: float = 0.0,
    sender_stagger_s: float = 1.3e-7,
    first_flow_id: int = 750_000,
    base_port: int = 30000,
) -> List[FlowSpec]:
    """Synchronized fan-in: every sender bursts at one target at once.

    The canonical congestion workload — ``len(senders)`` flows start
    within ``sender_stagger_s`` of each other and all land on
    ``target``, overrunning its egress queue upstream. The per-sender
    stagger is on top of the usual per-flow-id nanosecond stagger, so
    no two sends ever collide on a timestamp (the stagger stays
    collision-free for fan-ins below ~100). The seed is accepted for
    signature symmetry with the other mixes but incast is fully
    deterministic — there is nothing to draw.
    """
    if not senders:
        raise NetworkError("an incast mix needs at least one sender")
    if target in senders:
        raise NetworkError(f"incast target {target!r} is also a sender")
    if packets < 1:
        raise NetworkError(f"incast flows need >= 1 packet, got {packets}")
    del seed  # deterministic by construction; kept for mix symmetry
    specs: List[FlowSpec] = []
    for i, src in enumerate(senders):
        flow_id = first_flow_id + i
        specs.append(
            FlowSpec(
                flow_id=flow_id,
                src=src,
                dst=target,
                src_port=base_port + (flow_id % 20000),
                dst_port=9100,
                packets=packets,
                payload_bytes=payload_bytes,
                start_s=_staggered(start_s + i * sender_stagger_s, flow_id),
                gap_s=gap_s,
                kind="incast",
            )
        )
    return specs


def web_session_mix(
    hosts: Sequence[str],
    seed: int,
    sessions: int,
    servers: Optional[Sequence[str]] = None,
    request_packets: Tuple[int, int] = (1, 2),
    response_packets: Tuple[int, int] = (2, 16),
    payload_bytes: int = 64,
    gap_s: float = 2e-6,
    arrival_rate_per_s: float = 100_000.0,
    think_time_s: float = 30e-6,
    first_flow_id: int = 0,
    base_port: int = 40000,
    t0: float = 0.0,
) -> List[FlowSpec]:
    """Web-like request/response pairs: client asks, server answers.

    Each session is two flows — a short ``request`` from a client to a
    server, and a larger ``response`` back, starting ``think_time_s``
    after the request's last send (a crude server turnaround; the
    engine does not couple them causally, which keeps scheduling
    shard-safe). ``servers`` defaults to the full host list.
    """
    if len(hosts) < 2:
        raise NetworkError("a traffic mix needs at least two hosts")
    rng = random.Random(seed)
    server_pool = list(servers) if servers is not None else list(hosts)
    starts = poisson_starts(rng, sessions, arrival_rate_per_s, t0)
    specs: List[FlowSpec] = []
    flow_id = first_flow_id
    for start in starts:
        client = rng.choice(hosts)
        server = rng.choice(server_pool)
        while server == client:
            server = rng.choice(server_pool if len(server_pool) > 1 else hosts)
        req_packets = rng.randint(*request_packets)
        resp_packets = rng.randint(*response_packets)
        request = FlowSpec(
            flow_id=flow_id,
            src=client,
            dst=server,
            src_port=base_port + (flow_id % 20000),
            dst_port=80,
            packets=req_packets,
            payload_bytes=payload_bytes,
            start_s=_staggered(start, flow_id),
            gap_s=gap_s,
            kind="request",
        )
        flow_id += 1
        response = FlowSpec(
            flow_id=flow_id,
            src=server,
            dst=client,
            src_port=80,
            dst_port=base_port + (request.flow_id % 20000),
            packets=resp_packets,
            payload_bytes=payload_bytes,
            start_s=_staggered(
                request.last_send_s + think_time_s, flow_id
            ),
            gap_s=gap_s,
            kind="response",
        )
        flow_id += 1
        specs.extend((request, response))
    return specs
