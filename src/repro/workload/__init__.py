"""Seeded flow-level workload engine for fabric-scale campaigns.

Generalizes the small :mod:`repro.net.flows` module into a traffic
engine that drives thousands of concurrent flows through attested
fabrics: :mod:`repro.workload.flows` schedules every packet of every
:class:`FlowSpec` through the ownership-gated ``schedule_on`` hook (so
the same build is correct monolithic and sharded), and
:mod:`repro.workload.mixes` generates datacenter-shaped flow
populations — elephant/mice size mixes, web-like request/response
pairs, Poisson and on-off arrival processes — from a single seed.
"""

from repro.workload.flows import (
    FLOW_PAYLOAD_MIN_BYTES,
    FlowEngine,
    FlowSink,
    FlowSpec,
    decode_flow_payload,
    encode_flow_payload,
    flow_completion_times,
)
from repro.workload.mixes import (
    elephant_mice_mix,
    on_off_starts,
    poisson_starts,
    web_session_mix,
)

__all__ = [
    "FLOW_PAYLOAD_MIN_BYTES",
    "FlowEngine",
    "FlowSink",
    "FlowSpec",
    "decode_flow_payload",
    "encode_flow_payload",
    "flow_completion_times",
    "elephant_mice_mix",
    "on_off_starts",
    "poisson_starts",
    "web_session_mix",
]
