"""Byte- and bit-level helpers used across the wire formats.

The network substrate and the PISA parser both manipulate raw byte
strings; these helpers centralise the conversions so off-by-one errors
live in exactly one place.
"""

from __future__ import annotations


def int_to_bytes(value: int, width: int) -> bytes:
    """Encode ``value`` big-endian into exactly ``width`` bytes.

    Raises ``ValueError`` if the value does not fit or is negative —
    wire formats in this library never encode negative integers.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"cannot encode negative value {value}")
    if value >= (1 << (8 * width)):
        raise ValueError(f"value {value} does not fit in {width} bytes")
    return value.to_bytes(width, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian unsigned integer from ``data``."""
    return int.from_bytes(data, "big")


def mask_for_prefix(prefix_len: int, width_bits: int = 32) -> int:
    """Return the integer mask selecting the top ``prefix_len`` bits.

    Used by LPM tables: ``mask_for_prefix(24)`` == ``0xFFFFFF00``.
    """
    if not 0 <= prefix_len <= width_bits:
        raise ValueError(
            f"prefix length {prefix_len} out of range for {width_bits}-bit field"
        )
    if prefix_len == 0:
        return 0
    full = (1 << width_bits) - 1
    return (full >> (width_bits - prefix_len)) << (width_bits - prefix_len)


def checksum16(data: bytes) -> int:
    """Internet checksum (RFC 1071) over ``data``.

    Used for the IPv4 header checksum in the packet substrate.
    """
    if len(data) % 2 == 1:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def hexdump(data: bytes, width: int = 16) -> str:
    """Render ``data`` as a classic offset/hex/ascii dump for debugging."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{offset:08x}  {hexpart:<{width * 3}} {asciipart}")
    return "\n".join(lines)
