"""A bounded append-only buffer whose evictions are counted, not silent.

Unbounded in-memory logs are how long simulations die: the simulator's
packet log and event trace both grow per transmission when tracing is
on. A :class:`RingBuffer` keeps the most recent ``capacity`` entries
and *counts* what it evicted, so an analysis over a truncated log can
say "truncated, 12 034 entries lost" instead of silently reporting on
a partial view — or eating all RAM reporting on a full one.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, List, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Keeps the last ``capacity`` items appended; counts evictions."""

    __slots__ = ("_items", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring buffer capacity must be positive, got {capacity}")
        self._items: "deque[T]" = deque(maxlen=capacity)
        #: How many entries have been evicted to make room.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._items.maxlen or 0

    def append(self, item: T) -> bool:
        """Append ``item``; returns True when an old entry was evicted."""
        evicted = len(self._items) == self._items.maxlen
        if evicted:
            self.dropped += 1
        self._items.append(item)
        return evicted

    def clear(self) -> None:
        """Drop all contents (does not reset the eviction count)."""
        self._items.clear()

    def to_list(self) -> List[T]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._items)[index]
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RingBuffer):
            return list(self._items) == list(other._items)
        if isinstance(other, (list, tuple)):
            return list(self._items) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"RingBuffer(len={len(self._items)}, "
            f"capacity={self.capacity}, dropped={self.dropped})"
        )
