"""Shared utility layer: errors, TLV codec, byte helpers, ids, clocks.

Everything above this layer (crypto, net, pisa, ...) depends only on the
standard library plus this package, keeping the dependency graph a clean
DAG: util -> crypto -> net -> pisa -> netkat/copland -> ra -> pera -> core.
"""

from repro.util.errors import (
    ReproError,
    CodecError,
    ConfigError,
    CryptoError,
    NetworkError,
    PipelineError,
    PolicyError,
    VerificationError,
)
from repro.util.tlv import Tlv, TlvCodec
from repro.util.bits import (
    hexdump,
    int_to_bytes,
    bytes_to_int,
    mask_for_prefix,
    checksum16,
)
from repro.util.ids import IdAllocator, short_id
from repro.util.clock import SimClock

__all__ = [
    "ReproError",
    "CodecError",
    "ConfigError",
    "CryptoError",
    "NetworkError",
    "PipelineError",
    "PolicyError",
    "VerificationError",
    "Tlv",
    "TlvCodec",
    "hexdump",
    "int_to_bytes",
    "bytes_to_int",
    "mask_for_prefix",
    "checksum16",
    "IdAllocator",
    "short_id",
    "SimClock",
]
