"""A small type-length-value codec.

Compiled attestation policies and in-band evidence ride in an options
header on the traffic itself (paper §5.2: "serialized into an options
header in the transport layer"). Both use this TLV format:

    +--------+--------+--------+----------------+
    | type (1B)       | length (2B, big-endian) | value (length bytes)
    +--------+--------+--------+----------------+

Nesting is by convention: a TLV value may itself be a TLV stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

from repro.util.errors import CodecError

_HEADER_LEN = 3
_MAX_VALUE_LEN = 0xFFFF

# Anything the decoders accept: decoding never needs to own the bytes,
# so callers can hand in a memoryview over a packet buffer and no copy
# happens until a terminal field is materialized.
ByteSource = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class Tlv:
    """One type-length-value element."""

    type: int
    value: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise CodecError(f"TLV type {self.type} out of range [0, 255]")
        if len(self.value) > _MAX_VALUE_LEN:
            raise CodecError(
                f"TLV value of {len(self.value)} bytes exceeds {_MAX_VALUE_LEN}"
            )

    def encode(self) -> bytes:
        return bytes([self.type]) + len(self.value).to_bytes(2, "big") + self.value


class TlvCodec:
    """Encode and decode streams of :class:`Tlv` elements."""

    @staticmethod
    def encode(elements: Sequence[Tlv]) -> bytes:
        return b"".join(element.encode() for element in elements)

    @staticmethod
    def decode(data: ByteSource) -> List[Tlv]:
        return list(TlvCodec.iter_decode(data))

    @staticmethod
    def iter_decode(data: ByteSource) -> Iterator[Tlv]:
        for tlv_type, value in TlvCodec.iter_views(data):
            yield Tlv(tlv_type, bytes(value))

    @staticmethod
    def iter_views(data: ByteSource) -> Iterator[Tuple[int, memoryview]]:
        """Walk a TLV stream without copying any value bytes.

        Yields ``(type, value_view)`` pairs where each view is an O(1)
        slice of the input buffer — the zero-copy primitive underneath
        the evidence decoders. Views stay valid as long as the input
        buffer does; callers materialize terminal fields with
        ``bytes(view)`` only where ownership is actually needed.
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        total = len(view)
        offset = 0
        while offset < total:
            if offset + _HEADER_LEN > total:
                raise CodecError(
                    f"truncated TLV header at offset {offset} (have {total} bytes)"
                )
            tlv_type = view[offset]
            length = (view[offset + 1] << 8) | view[offset + 2]
            start = offset + _HEADER_LEN
            end = start + length
            if end > total:
                raise CodecError(
                    f"truncated TLV value at offset {offset}: "
                    f"declared {length} bytes, only {total - start} remain"
                )
            yield tlv_type, view[start:end]
            offset = end
