"""A small type-length-value codec.

Compiled attestation policies and in-band evidence ride in an options
header on the traffic itself (paper §5.2: "serialized into an options
header in the transport layer"). Both use this TLV format:

    +--------+--------+--------+----------------+
    | type (1B)       | length (2B, big-endian) | value (length bytes)
    +--------+--------+--------+----------------+

Nesting is by convention: a TLV value may itself be a TLV stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.util.errors import CodecError

_HEADER_LEN = 3
_MAX_VALUE_LEN = 0xFFFF


@dataclass(frozen=True)
class Tlv:
    """One type-length-value element."""

    type: int
    value: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise CodecError(f"TLV type {self.type} out of range [0, 255]")
        if len(self.value) > _MAX_VALUE_LEN:
            raise CodecError(
                f"TLV value of {len(self.value)} bytes exceeds {_MAX_VALUE_LEN}"
            )

    def encode(self) -> bytes:
        return bytes([self.type]) + len(self.value).to_bytes(2, "big") + self.value


class TlvCodec:
    """Encode and decode streams of :class:`Tlv` elements."""

    @staticmethod
    def encode(elements: Sequence[Tlv]) -> bytes:
        return b"".join(element.encode() for element in elements)

    @staticmethod
    def decode(data: bytes) -> List[Tlv]:
        return list(TlvCodec.iter_decode(data))

    @staticmethod
    def iter_decode(data: bytes) -> Iterator[Tlv]:
        offset = 0
        while offset < len(data):
            if offset + _HEADER_LEN > len(data):
                raise CodecError(
                    f"truncated TLV header at offset {offset} (have {len(data)} bytes)"
                )
            tlv_type = data[offset]
            length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            start = offset + _HEADER_LEN
            end = start + length
            if end > len(data):
                raise CodecError(
                    f"truncated TLV value at offset {offset}: "
                    f"declared {length} bytes, only {len(data) - start} remain"
                )
            yield Tlv(tlv_type, data[start:end])
            offset = end
