"""Simulated clock shared by the network simulator and evidence caches.

Evidence freshness (paper Fig. 4, "Inertia") is defined relative to
simulation time, never wall-clock time, so runs are reproducible.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing simulated clock in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class SkewedClock:
    """A read-only view of another clock, offset by a fixed skew.

    Models a component whose local time drifted from simulation time
    (the clock-skew fault): cache TTL decisions made against a skewed
    clock expire early (positive skew) or serve stale entries longer
    (negative skew). The base clock stays authoritative — a skewed
    clock is never advanced directly.
    """

    def __init__(self, base: SimClock, skew_s: float) -> None:
        self.base = base
        self.skew_s = float(skew_s)

    @property
    def now(self) -> float:
        return self.base.now + self.skew_s

    def __repr__(self) -> str:
        return f"SkewedClock(now={self.now:.6f}, skew={self.skew_s:+.6f})"
