"""Deterministic identifier allocation.

Simulations must be reproducible, so identifiers are never drawn from
``uuid4`` or time. :class:`IdAllocator` hands out sequential ids per
namespace; :func:`short_id` derives a stable short token from content.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import DefaultDict


class IdAllocator:
    """Sequential id allocator with independent per-namespace counters.

    >>> alloc = IdAllocator()
    >>> alloc.next("flow"), alloc.next("flow"), alloc.next("pkt")
    (1, 2, 1)
    """

    def __init__(self, start: int = 1) -> None:
        self._start = start
        self._counters: DefaultDict[str, int] = defaultdict(lambda: start - 1)

    def next(self, namespace: str = "default") -> int:
        self._counters[namespace] += 1
        return self._counters[namespace]

    def peek(self, namespace: str = "default") -> int:
        """Return the id that the next call to :meth:`next` would allocate."""
        return self._counters[namespace] + 1

    def reset(self, namespace: str = "default") -> None:
        self._counters[namespace] = self._start - 1


def short_id(content: bytes, length: int = 8) -> str:
    """Derive a stable hex token of ``length`` chars from ``content``."""
    if length < 1 or length > 64:
        raise ValueError(f"short_id length {length} out of range [1, 64]")
    return hashlib.sha256(content).hexdigest()[:length]


def spawn_seed(seed: int, *labels: object) -> int:
    """Derive a child RNG seed from ``seed`` and a label path.

    The sharded runner (and the per-target fault/loss streams) must
    draw random numbers whose values depend only on *what* is being
    decided — which link, which fault target, which shard — never on
    the order decisions interleave across shards. Hash-derived child
    seeds give every labelled consumer its own independent stream, the
    same trick as ``random.Random.spawn`` / philox counter-based RNGs,
    but stable across processes and Python versions (pure SHA-256).
    """
    material = "\x1f".join([str(seed), *[str(label) for label in labels]])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")
