"""Exception hierarchy for the whole library.

Every subsystem raises subclasses of :class:`ReproError` so applications
can catch library failures with a single ``except`` clause while tests
can still assert on the precise failure class.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class CodecError(ReproError):
    """Raised when encoding or decoding a wire format fails."""


class ConfigError(ReproError):
    """Raised when a component is configured inconsistently."""


class CryptoError(ReproError):
    """Raised on cryptographic failures (bad key, bad signature format)."""


class NetworkError(ReproError):
    """Raised by the network substrate (unknown node, no route, ...)."""


class PipelineError(ReproError):
    """Raised by the PISA pipeline (bad table entry, parser error, ...)."""


class PolicyError(ReproError):
    """Raised when a Copland/NetKAT/hybrid policy is malformed."""


class VerificationError(ReproError):
    """Raised when evidence or a signature fails verification.

    Appraisers generally *return* a verdict rather than raising, but
    lower layers raise this when an operation cannot even be attempted
    (e.g. a signature blob of the wrong length).
    """
