"""Deterministic network substrate.

The paper's evaluation needs a network to attest: hosts, links, and
switches on paths. This package provides byte-accurate packets and
headers, topology graphs, routing, and a discrete-event simulator —
the stand-in for the authors' testbed (see DESIGN.md §2).
"""

from repro.net.headers import (
    EthernetHeader,
    Ipv4Header,
    UdpHeader,
    TcpHeader,
    RaShimHeader,
    ip_to_int,
    int_to_ip,
    mac_to_int,
    int_to_mac,
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    IPPROTO_TCP,
    RA_UDP_PORT,
)
from repro.net.packet import Packet
from repro.net.topology import (
    Topology,
    Link,
    linear_topology,
    star_topology,
    fat_tree,
    fat_tree_topology,
    fabric_pod_map,
    ring_topology,
    leaf_spine,
)
from repro.net.simulator import Simulator, Node, PacketLogEntry, SimStats
from repro.net.sharding import Partition, ShardSimulator, partition_topology
from repro.net.shardrun import (
    ScenarioSpec,
    ShardedResult,
    ShardedRunner,
    run_sharded,
)
from repro.net.routing import (
    EcmpSelector,
    FlowletTable,
    RoutingMode,
    all_pairs_next_hop,
    all_pairs_next_hops,
    predict_multipath_path,
    shortest_path,
    stable_flow_hash,
)
from repro.net.host import Host
from repro.net.flows import Flow, FlowGenerator
from repro.net.trace import TraceAnalysis

# NOTE: repro.net.controller is intentionally NOT imported here — it
# drives PISA switches, and importing it from the package root would
# create an import cycle (net -> pisa -> net). Import it directly:
#     from repro.net.controller import RoutingController

__all__ = [
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "TcpHeader",
    "RaShimHeader",
    "ip_to_int",
    "int_to_ip",
    "mac_to_int",
    "int_to_mac",
    "ETHERTYPE_IPV4",
    "IPPROTO_UDP",
    "IPPROTO_TCP",
    "RA_UDP_PORT",
    "Packet",
    "Topology",
    "Link",
    "linear_topology",
    "star_topology",
    "fat_tree",
    "fat_tree_topology",
    "fabric_pod_map",
    "ring_topology",
    "leaf_spine",
    "Simulator",
    "SimStats",
    "Node",
    "Partition",
    "ShardSimulator",
    "partition_topology",
    "ScenarioSpec",
    "ShardedResult",
    "ShardedRunner",
    "run_sharded",
    "shortest_path",
    "all_pairs_next_hop",
    "all_pairs_next_hops",
    "predict_multipath_path",
    "stable_flow_hash",
    "EcmpSelector",
    "FlowletTable",
    "RoutingMode",
    "Host",
    "Flow",
    "FlowGenerator",
    "PacketLogEntry",
    "TraceAnalysis",
]
