"""The sharded runner: drive N :class:`ShardSimulator` loops to one
merged, canonical result.

Two backends run the identical barrier protocol:

* ``inline`` — every shard in this process, stepped round-robin. This
  is the reference implementation and the fast path on small machines
  (the window engine batches heap work, so even 1 "shard" under the
  runner outruns the monolithic event loop on fabric-scale runs).
* ``mp`` — one ``multiprocessing`` worker per shard (fork start
  method), a pipe per worker, one message round-trip per window.

Whatever the backend or shard count, the *merge* is canonical:
:meth:`~repro.net.simulator.SimStats.merge` folds stats field-wise,
metric snapshots merge by label
(:func:`repro.telemetry.metrics.merge_snapshots`), and audit streams
merge into one journal ordered by ``(sim_time, trace_id, seq)``
(:func:`repro.telemetry.audit.merge_audit_events`). The runner
canonicalizes even at one shard, so ``shards=1`` output is the
byte-identical baseline the determinism tests pin 2- and 4-shard runs
against.

The scenario contract is a :class:`ScenarioSpec`: a topology (or
factory), a ``build(sim)`` callable that constructs the *full* world
on every shard (ownership gates make execution single-writer — see
:mod:`repro.net.sharding`), and an optional ``harvest(sim, ctx)``
returning a picklable per-shard output. Builds must be deterministic
and, for the ``mp`` backend, module-level callables (or
``functools.partial`` of one) so results can cross the pipe.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.net.sharding import (
    KIND_CONTROL,
    Partition,
    ShardSimulator,
    partition_topology,
)
from repro.net.simulator import SimStats
from repro.net.topology import Topology
from repro.telemetry.audit import merge_audit_events
from repro.telemetry.instrument import Telemetry
from repro.telemetry.metrics import merge_snapshots
from repro.telemetry.timeseries import (
    SamplingSpec,
    install_recorder,
    merge_frame_streams,
    renumber_frame_times,
)
from repro.telemetry.tracing import reset_trace_ids
from repro.util.errors import NetworkError

BACKENDS = ("inline", "mp")

#: Runaway guard on the drain/resume cycle (a drain hook that keeps
#: scheduling fresh work forever is a scenario bug, not a slow run).
MAX_DRAIN_ROUNDS = 64


@dataclass(frozen=True)
class ScenarioSpec:
    """A sharding-ready scenario: topology + full-world build + harvest.

    ``topology`` may be a :class:`Topology` instance or a zero-argument
    factory (factories rebuild per worker under ``mp``, instances are
    shared read-only). ``build(sim)`` binds every node and schedules
    all driving events; it runs once per shard and must be
    deterministic. ``harvest(sim, ctx)`` extracts the per-shard output
    (verdicts, received packets, fault stats) after finalization.

    ``drain(sim, ctx)``, when given, runs after the event queues go
    dry, with every shard's clock advanced to the same global time; it
    may schedule fresh events (the canonical use: sealing still-open
    evidence epochs, whose releases forward parked packets). The
    runner then resumes the window loop, repeating until a drain round
    leaves all shards idle — the sharded equivalent of the monolith's
    "flush, then run() again" idiom.

    ``sampling``, when given, installs a
    :class:`~repro.telemetry.timeseries.FlightRecorder` on every shard;
    the runner merges the per-shard frame streams canonically at the
    end (see :func:`~repro.telemetry.timeseries.merge_frame_streams`),
    so ``ShardedResult.frames`` is byte-identical across shard counts
    like stats and the audit journal.
    """

    topology: Union[Topology, Callable[[], Topology]]
    build: Callable[[Any], Any]
    harvest: Optional[Callable[[Any, Any], Any]] = None
    drain: Optional[Callable[[Any, Any], None]] = None
    sampling: Optional[SamplingSpec] = None

    def make_topology(self) -> Topology:
        topo = self.topology() if callable(self.topology) else self.topology
        if not isinstance(topo, Topology):
            raise NetworkError(
                f"scenario topology resolved to {type(topo).__name__}, "
                "expected Topology"
            )
        return topo


@dataclass
class ShardedResult:
    """The canonical merged output of one sharded run."""

    shards: int
    backend: str
    stats: SimStats
    audit_events: List[Dict[str, object]]
    metrics: Dict[str, Dict[str, object]]
    outputs: List[Any]
    lookahead_s: float
    windows: int
    partition: Partition
    telemetry: Optional[Telemetry] = field(default=None, repr=False)
    #: Per-shard compute time (seconds of event processing, summed over
    #: windows). Wall-clock measurements — deliberately *outside* the
    #: deterministic exports.
    shard_busy_s: List[float] = field(default_factory=list)
    #: Merged flight-recorder frames (empty when the spec sampled
    #: nothing). Deterministic: part of the byte-identity contract.
    frames: List[Dict[str, object]] = field(default_factory=list)
    frames_dropped: int = 0
    #: The sampling window width the frames were recorded at.
    sample_interval_s: Optional[float] = None
    #: Per-shard recorder runtime (backlog/busy) — wall-clock flavored,
    #: outside the deterministic exports like ``shard_busy_s``.
    frames_runtime: List[Dict[str, float]] = field(default_factory=list)

    @property
    def events_processed(self) -> int:
        return self.stats.events_processed

    @property
    def critical_path_s(self) -> float:
        """The slowest shard's compute time: what the run's wall clock
        converges to when every shard has its own core (the standard
        conservative-PDES capacity metric)."""
        return max(self.shard_busy_s, default=0.0)

    def audit_export(self) -> str:
        """The merged audit journal as deterministic JSON — the byte
        string the determinism tests compare across shard counts."""
        return json.dumps(self.audit_events, sort_keys=True)

    def stats_export(self) -> str:
        return json.dumps(self.stats.as_dict(), sort_keys=True)

    def frames_export(self) -> str:
        """The merged frame stream as deterministic JSON — compared
        across shard counts exactly like :meth:`audit_export`."""
        return json.dumps(self.frames, sort_keys=True)


def _worker_opts(runner: "ShardedRunner", max_events: int) -> Dict[str, Any]:
    return {
        "seed": runner.seed,
        "control_latency_s": runner.control_latency_s,
        "telemetry_active": runner.telemetry_active,
        "max_events": max_events,
    }


def _build_shard(
    spec: ScenarioSpec,
    topology: Topology,
    partition: Partition,
    shard_id: int,
    opts: Dict[str, Any],
) -> tuple:
    """Construct one shard's simulator and run the scenario build."""
    telemetry = Telemetry(active=opts["telemetry_active"])
    sim = ShardSimulator(
        topology,
        partition,
        shard_id,
        seed=opts["seed"],
        control_latency_s=opts["control_latency_s"],
        telemetry=telemetry,
    )
    ctx = spec.build(sim)
    if spec.sampling is not None:
        install_recorder(sim, spec.sampling)
    return sim, ctx


def _finish_shard(
    spec: ScenarioSpec, sim: ShardSimulator, ctx: Any, until: Optional[float]
) -> Dict[str, Any]:
    """Advance to ``until``, run the final barrier, and bundle the
    shard's picklable contribution to the merge."""
    if until is not None:
        sim.clock.advance_to(until)
    # Ticks due at the final clock fire *before* the barrier sweep, so
    # deltas from barrier-sealed epochs land in the residual window —
    # exactly where the monolith's end-of-run flush puts them.
    sim.pump_recorder()
    sim.run_barrier_hooks()
    sim.finalize()
    output = spec.harvest(sim, ctx) if spec.harvest is not None else None
    recorder = sim.recorder
    return {
        "stats": sim.stats.as_dict(),
        "audit": [event.as_dict() for event in sim.telemetry.audit.events],
        "metrics": sim.telemetry.metrics.snapshot(),
        "output": output,
        "busy_s": sim.busy_seconds,
        "frames": recorder.frames if recorder is not None else [],
        "frames_dropped": (
            recorder.frames_dropped if recorder is not None else 0
        ),
        "frames_runtime": recorder.runtime() if recorder is not None else {},
    }


def _shard_worker(conn, spec, partition, shard_id, opts) -> None:
    """The ``mp`` backend's per-shard process body.

    Protocol (one pipe round-trip per window):

    * worker → parent: ``("ready", next_event_time, clock_now)``
    * parent → worker: ``("step", t_end, hard_limit, inject_entries)``
    * worker → parent: ``("stepped", outbox, processed, next_time,
      clock_now)``
    * parent → worker: ``("drain", t_sync)`` — advance to the global
      sync time, run the scenario's drain hook
    * worker → parent: ``("drained", outbox, next_time, clock_now)``
    * parent → worker: ``("finish", until)``
    * worker → parent: ``("finished", bundle)`` and exit.

    Any exception is shipped back as ``("error", traceback)`` so the
    parent can fail loudly instead of hanging on a dead pipe.
    """
    try:
        reset_trace_ids()
        topology = spec.make_topology()
        sim, ctx = _build_shard(spec, topology, partition, shard_id, opts)
        conn.send(("ready", sim.next_event_time(), sim.clock.now))
        while True:
            message = conn.recv()
            if message[0] == "step":
                _, t_end, hard_limit, entries = message
                sim.inject(entries)
                processed = sim.run_window(
                    t_end, hard_limit=hard_limit,
                    max_events=opts["max_events"],
                )
                sim.run_barrier_hooks()
                conn.send(
                    ("stepped", sim.take_outbox(), processed,
                     sim.next_event_time(), sim.clock.now)
                )
            elif message[0] == "drain":
                sim.clock.advance_to(message[1])
                # Ticks due at the sync time close before drain work
                # (epoch flushes) mutates counters, keeping the flush
                # deltas in the same window the monolith assigns them.
                sim.pump_recorder()
                if spec.drain is not None:
                    spec.drain(sim, ctx)
                conn.send(
                    ("drained", sim.take_outbox(), sim.next_event_time(),
                     sim.clock.now)
                )
            elif message[0] == "finish":
                conn.send(
                    ("finished", _finish_shard(spec, sim, ctx, message[1]))
                )
                return
            else:
                raise NetworkError(f"unknown runner command {message[0]!r}")
    except Exception:
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class ShardedRunner:
    """Partition a scenario, run its shards to completion, merge."""

    def __init__(
        self,
        spec: ScenarioSpec,
        shards: int = 1,
        backend: str = "inline",
        seed: int = 0,
        control_latency_s: float = 50e-6,
        telemetry_active: bool = True,
    ) -> None:
        if backend not in BACKENDS:
            raise NetworkError(
                f"unknown backend {backend!r} (choose from {BACKENDS})"
            )
        self.spec = spec
        self.shards = shards
        self.backend = backend
        self.seed = seed
        self.control_latency_s = control_latency_s
        self.telemetry_active = telemetry_active

    # --- public entry ---------------------------------------------------------

    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> ShardedResult:
        topology = self.spec.make_topology()
        partition = partition_topology(
            topology, self.shards, self.control_latency_s
        )
        if self.backend == "mp":
            bundles, windows = self._run_mp(partition, until, max_events)
        else:
            bundles, windows = self._run_inline(
                topology, partition, until, max_events
            )
        return self._merge(partition, bundles, windows)

    # --- backends -------------------------------------------------------------

    @staticmethod
    def _route(partition: Partition, merged: List[tuple], pending) -> None:
        """Canonically order the merged outboxes and route each entry
        to its destination shard's pending queue. The sort key is the
        entry's data prefix ``(time, kind, endpoint..., index)`` —
        stable, total for entries from distinct endpoints, and
        independent of which shard produced what."""
        merged.sort(key=lambda entry: entry[:5])
        for entry in merged:
            # Control entries carry (sender, recipient); packet and
            # pause entries lead with the destination endpoint.
            target = entry[3] if entry[1] == KIND_CONTROL else entry[2]
            pending[partition.owner[target]].append(entry)

    def _run_inline(self, topology, partition, until, max_events):
        reset_trace_ids()
        opts = _worker_opts(self, max_events)
        sims: List[ShardSimulator] = []
        ctxs: List[Any] = []
        for shard_id in range(partition.shard_count):
            sim, ctx = _build_shard(
                self.spec, topology, partition, shard_id, opts
            )
            sims.append(sim)
            ctxs.append(ctx)
        pending: List[List[tuple]] = [[] for _ in sims]
        windows = 0
        drain_rounds = 0
        while True:
            while True:
                start = self._next_start(
                    [sim.next_event_time() for sim in sims], pending, until
                )
                if start is None:
                    break
                t_end = start + partition.lookahead_s
                merged: List[tuple] = []
                for shard_id, sim in enumerate(sims):
                    if pending[shard_id]:
                        sim.inject(pending[shard_id])
                        pending[shard_id] = []
                    sim.run_window(
                        t_end, hard_limit=until, max_events=max_events
                    )
                    sim.run_barrier_hooks()
                    merged.extend(sim.take_outbox())
                windows += 1
                self._route(partition, merged, pending)
            if self.spec.drain is None:
                break
            drain_rounds += 1
            if drain_rounds > MAX_DRAIN_ROUNDS:
                raise NetworkError(
                    "scenario drain hook kept scheduling work after "
                    f"{MAX_DRAIN_ROUNDS} rounds"
                )
            t_sync = max(sim.clock.now for sim in sims)
            merged = []
            for sim, ctx in zip(sims, ctxs):
                sim.clock.advance_to(t_sync)
                sim.pump_recorder()
                self.spec.drain(sim, ctx)
                merged.extend(sim.take_outbox())
            self._route(partition, merged, pending)
            if (
                self._next_start(
                    [sim.next_event_time() for sim in sims], pending, until
                )
                is None
            ):
                break
        bundles = [
            _finish_shard(self.spec, sim, ctx, until)
            for sim, ctx in zip(sims, ctxs)
        ]
        return bundles, windows

    @staticmethod
    def _next_start(
        next_times: List[Optional[float]],
        pending: List[List[tuple]],
        until: Optional[float],
    ) -> Optional[float]:
        """The next window's start time, or None when the run is over
        (no pending work, or all of it beyond ``until``)."""
        times = [t for t in next_times if t is not None]
        times.extend(entry[0] for queue in pending for entry in queue)
        if not times:
            return None
        start = min(times)
        if until is not None and start > until:
            return None
        return start

    def _run_mp(self, partition, until, max_events):
        mp = multiprocessing.get_context("fork")
        opts = _worker_opts(self, max_events)
        conns = []
        procs = []
        try:
            for shard_id in range(partition.shard_count):
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(
                    target=_shard_worker,
                    args=(child_conn, self.spec, partition, shard_id, opts),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            next_times = []
            clocks = []
            for conn in conns:
                _, next_time, now = self._recv(conn, "ready")
                next_times.append(next_time)
                clocks.append(now)
            pending: List[List[tuple]] = [[] for _ in conns]
            windows = 0
            drain_rounds = 0
            while True:
                while True:
                    start = self._next_start(next_times, pending, until)
                    if start is None:
                        break
                    t_end = start + partition.lookahead_s
                    for shard_id, conn in enumerate(conns):
                        conn.send(("step", t_end, until, pending[shard_id]))
                        pending[shard_id] = []
                    merged: List[tuple] = []
                    for shard_id, conn in enumerate(conns):
                        _, outbox, _processed, next_time, now = self._recv(
                            conn, "stepped"
                        )
                        next_times[shard_id] = next_time
                        clocks[shard_id] = now
                        merged.extend(outbox)
                    windows += 1
                    self._route(partition, merged, pending)
                if self.spec.drain is None:
                    break
                drain_rounds += 1
                if drain_rounds > MAX_DRAIN_ROUNDS:
                    raise NetworkError(
                        "scenario drain hook kept scheduling work after "
                        f"{MAX_DRAIN_ROUNDS} rounds"
                    )
                t_sync = max(clocks)
                for conn in conns:
                    conn.send(("drain", t_sync))
                merged = []
                for shard_id, conn in enumerate(conns):
                    _, outbox, next_time, now = self._recv(conn, "drained")
                    next_times[shard_id] = next_time
                    clocks[shard_id] = now
                    merged.extend(outbox)
                self._route(partition, merged, pending)
                if self._next_start(next_times, pending, until) is None:
                    break
            for conn in conns:
                conn.send(("finish", until))
            bundles = [self._recv(conn, "finished")[1] for conn in conns]
            return bundles, windows
        finally:
            for conn in conns:
                try:
                    conn.close()
                except Exception:
                    pass
            for proc in procs:
                proc.join(timeout=30)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()

    @staticmethod
    def _recv(conn, expected: str):
        try:
            message = conn.recv()
        except EOFError:
            raise NetworkError(
                "shard worker died without reporting an error"
            ) from None
        if message[0] == "error":
            raise NetworkError(f"shard worker failed:\n{message[1]}")
        if message[0] != expected:
            raise NetworkError(
                f"shard worker protocol error: got {message[0]!r}, "
                f"expected {expected!r}"
            )
        return message

    # --- merge ----------------------------------------------------------------

    def _merge(
        self,
        partition: Partition,
        bundles: List[Dict[str, Any]],
        windows: int,
    ) -> ShardedResult:
        stats = SimStats()
        for bundle in bundles:
            stats = stats.merge(SimStats(**bundle["stats"]))
        audit = merge_audit_events(
            [bundle["audit"] for bundle in bundles]
        )
        metrics = merge_snapshots(
            [bundle["metrics"] for bundle in bundles]
        )
        telemetry: Optional[Telemetry] = None
        if self.telemetry_active:
            telemetry = Telemetry(active=True)
            telemetry.audit.load(audit)
            telemetry.metrics.absorb_snapshot(metrics)
        frames: List[Dict[str, object]] = []
        frames_dropped = 0
        frames_runtime: List[Dict[str, float]] = []
        interval_s: Optional[float] = None
        if self.spec.sampling is not None:
            interval_s = self.spec.sampling.interval_s
            frames = merge_frame_streams(
                [bundle.get("frames", []) for bundle in bundles]
            )
            renumber_frame_times(frames, interval_s)
            frames_dropped = sum(
                int(bundle.get("frames_dropped", 0)) for bundle in bundles
            )
            frames_runtime = [
                dict(bundle.get("frames_runtime", {})) for bundle in bundles
            ]
        return ShardedResult(
            shards=partition.shard_count,
            backend=self.backend,
            stats=stats,
            audit_events=audit,
            metrics=metrics,
            outputs=[bundle["output"] for bundle in bundles],
            lookahead_s=partition.lookahead_s,
            windows=windows,
            partition=partition,
            telemetry=telemetry,
            shard_busy_s=[
                float(bundle.get("busy_s", 0.0)) for bundle in bundles
            ],
            frames=frames,
            frames_dropped=frames_dropped,
            sample_interval_s=interval_s,
            frames_runtime=frames_runtime,
        )


def run_sharded(
    spec: ScenarioSpec,
    shards: int = 1,
    backend: str = "inline",
    seed: int = 0,
    until: Optional[float] = None,
    max_events: int = 1_000_000,
    control_latency_s: float = 50e-6,
    telemetry_active: bool = True,
) -> ShardedResult:
    """One-call convenience wrapper around :class:`ShardedRunner`."""
    return ShardedRunner(
        spec,
        shards=shards,
        backend=backend,
        seed=seed,
        control_latency_s=control_latency_s,
        telemetry_active=telemetry_active,
    ).run(until=until, max_events=max_events)


__all__ = [
    "BACKENDS",
    "ScenarioSpec",
    "ShardedResult",
    "ShardedRunner",
    "run_sharded",
]
