"""Partitioned event loops: the sharded simulation core.

A :class:`~repro.net.topology.Topology` is split into per-switch-group
shards by :func:`partition_topology`; each shard runs its own
:class:`ShardSimulator` event loop inside a bounded *lookahead window*
and exchanges cross-boundary packets and control messages through
typed outbox entries at window barriers (the classic conservative /
YAWNS synchronisation scheme).

Why this is safe — the lookahead theorem this module relies on: let
``L`` be the minimum latency over all *cut* links (links whose
endpoints live in different shards) and the control-plane latency,
whichever is smaller. Every cross-shard effect generated at local time
``t`` arrives no earlier than ``t + L`` (serialization delay only adds
to that). So while a shard processes events in the window
``[t0, t0 + L)``, nothing another shard does *in the same window* can
influence it: any message born in the window lands at or after
``t0 + L``, i.e. in a later window. Shards therefore run the window
independently, swap outboxes at the barrier, and repeat.

Determinism is the hard requirement, not a nice-to-have: the same seed
must produce byte-identical merged stats, verdicts and audit journals
for 1, 2 or 4 shards. Three design rules make that hold:

* **Full-world build, single-writer execution.** Every shard builds
  the complete scenario (same nodes, same keys, same RNG streams), but
  ownership gates — :meth:`Simulator.owns` consulted by ``bind``,
  ``transmit``, ``send_control``, ``Host.send`` and ``schedule_on`` —
  ensure each logical action executes in exactly one shard.
* **Keyed randomness.** Loss and fault draws come from per-directed-
  link streams (:func:`repro.util.ids.spawn_seed`), and trace ids from
  per-origin serials, so no draw sequence depends on the global event
  interleaving that sharding changes.
* **Canonical exchange order.** Outbox entries carry a deterministic
  ``(arrival_time, kind, endpoint..., per-endpoint index)`` prefix;
  the runner sorts the merged entries on it before injecting, so the
  receiving shard's tie-breaking sequence numbers are assigned in an
  order independent of how many shards produced the entries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.net.packet import Packet
from repro.net.simulator import Node, Simulator
from repro.net.topology import Link, Topology, fabric_pod_map
from repro.telemetry.tracing import TraceContext
from repro.util.errors import NetworkError

#: Outbox entry kinds (sort lexicographically: control before packets
#: before pause frames on arrival-time ties, which is part of the
#: canonical order).
KIND_CONTROL = "ctl"
KIND_PACKET = "pkt"
KIND_PAUSE = "pse"


@dataclass(frozen=True)
class Partition:
    """An assignment of topology nodes to shards, plus the window size.

    ``shard_count`` is the *effective* count (never more than the
    number of anchor nodes); ``owner`` maps every node name to its
    shard; ``lookahead_s`` is the conservative window width derived
    from the minimum cut-link latency and the control-plane latency;
    ``cut_links`` are the links crossing shard boundaries.
    """

    shard_count: int
    owner: Mapping[str, int]
    lookahead_s: float
    cut_links: Tuple[Link, ...] = field(default_factory=tuple)

    def nodes_of(self, shard_id: int) -> List[str]:
        """Sorted node names owned by ``shard_id``."""
        return sorted(n for n, s in self.owner.items() if s == shard_id)


def _assign_pod_groups(
    anchors: List[str],
    pods: Mapping[str, str],
    shards: int,
    owner: Dict[str, int],
) -> int:
    """Chunk pod groups onto shards, balancing anchor counts.

    Groups (pods, plus singletons for unmapped anchors) are ordered by
    their smallest member name and assigned contiguously: a shard
    keeps taking whole groups while that moves its size strictly
    closer to the running balance target, always leaving at least one
    group per remaining shard. Returns the effective shard count.
    """
    by_tag: Dict[str, List[str]] = {}
    for name in anchors:
        by_tag.setdefault(pods.get(name, name), []).append(name)
    groups = [
        by_tag[tag] for tag in sorted(by_tag, key=lambda t: min(by_tag[t]))
    ]
    effective = min(shards, len(groups))
    remaining = len(anchors)
    gi = 0
    for shard in range(effective):
        remaining_shards = effective - shard
        target = remaining / remaining_shards
        took = 0
        while gi < len(groups):
            size = len(groups[gi])
            if took > 0 and shard < effective - 1:
                groups_left_if_skipped = len(groups) - gi
                if groups_left_if_skipped <= remaining_shards - 1:
                    break
                if abs(took + size - target) >= abs(took - target):
                    break
            for name in groups[gi]:
                owner[name] = shard
            took += size
            gi += 1
            if (
                shard < effective - 1
                and len(groups) - gi == remaining_shards - 1
            ):
                break
        remaining -= took
    return effective


def partition_topology(
    topology: Topology,
    shards: int,
    control_latency_s: float = 50e-6,
    pods: Optional[Mapping[str, str]] = None,
) -> Partition:
    """Split ``topology`` into ``shards`` balanced switch groups.

    Anchors (non-host nodes) are sorted by name and cut into
    contiguous, balanced chunks — deterministic, and for the canned
    topologies (chains, leaf–spine with zero-padded names) contiguity
    follows the physical layout, keeping the cut small. Hosts join the
    shard of their lowest-named assigned neighbor, so an edge host
    never sits across a one-hop boundary from its switch.

    ``pods`` optionally groups anchors into atomic units a shard
    boundary never splits: a fat-tree pod's edge and aggregation
    switches stay together, so the only cut links are pod–core
    uplinks (whose latency then sets the lookahead window). When
    ``pods`` is ``None`` the grouping is inferred from
    :func:`repro.net.topology.fabric_pod_map`, which returns an empty
    map for anything but :func:`~repro.net.topology.fat_tree`-style
    names — legacy topologies keep the exact per-anchor chunking.
    Unmapped anchors form singleton groups.

    The effective shard count is capped at the anchor count (group
    count when pods apply); asking for 4 shards of a 2-switch chain
    yields 2. A cut link with zero latency (or a non-positive control
    latency) would make the lookahead window empty — that is a
    configuration error, reported as :class:`NetworkError` rather
    than a silent livelock.
    """
    if shards < 1:
        raise NetworkError(f"shard count must be >= 1, got {shards}")
    names = topology.node_names
    anchors = [n for n in names if topology.kind_of(n) != "host"]
    if not anchors:
        anchors = list(names)
    if pods is None:
        pods = fabric_pod_map(topology)
    owner: Dict[str, int] = {}
    if pods:
        effective = _assign_pod_groups(anchors, pods, shards, owner)
    else:
        effective = min(shards, len(anchors))
        base, extra = divmod(len(anchors), effective)
        start = 0
        for shard in range(effective):
            size = base + (1 if shard < extra else 0)
            for name in anchors[start : start + size]:
                owner[name] = shard
            start += size
    for name in names:
        if name in owner:
            continue
        assigned = [p for p in topology.neighbors_of(name) if p in owner]
        owner[name] = owner[min(assigned)] if assigned else 0
    cut = tuple(
        link
        for link in topology.links
        if owner[link.node_a] != owner[link.node_b]
    )
    if effective == 1:
        lookahead = float("inf")
    else:
        lookahead = min(
            [link.latency_s for link in cut] + [control_latency_s]
        )
        if lookahead <= 0:
            raise NetworkError(
                "cannot shard: a zero-latency cross-shard path leaves no "
                "lookahead window (cut links and the control latency must "
                "all be > 0)"
            )
    return Partition(
        shard_count=effective,
        owner=dict(owner),
        lookahead_s=lookahead,
        cut_links=cut,
    )


class ShardSimulator(Simulator):
    """One shard's event loop: a :class:`Simulator` with ownership
    gates and a windowed engine.

    The scenario build binds the *full* node set; foreign nodes are
    accepted (so their names resolve and their behaviours can be
    driven by the owner shard's messages via injection) but get no
    ``on_bind``, no registration, and every output path they could
    take — transmit, control send, host send, scheduled driving — is
    gated on :meth:`owns`.

    The engine replaces the monolith's single heap with a *backlog*
    (events at or beyond the current window) plus an *overlay* heap
    (events landing inside the open window). ``run_window`` drains the
    merged stream in ``(time, seq)`` order; deliveries aimed at
    foreign-owned nodes leave through :meth:`take_outbox` instead of
    the local queue.
    """

    def __init__(
        self,
        topology: Topology,
        partition: Partition,
        shard_id: int,
        **kwargs: Any,
    ) -> None:
        if not 0 <= shard_id < partition.shard_count:
            raise NetworkError(
                f"shard id {shard_id} out of range for "
                f"{partition.shard_count} shards"
            )
        super().__init__(topology, **kwargs)
        self.partition = partition
        self.shard_id = shard_id
        self._foreign_nodes: Dict[str, Node] = {}
        # (time, seq, counted, action) tuples; seq is unique so tuple
        # comparison never reaches the (incomparable) action.
        self._backlog: List[Tuple[float, int, bool, Callable[[], None]]] = []
        self._overlay: List[Tuple[float, int, bool, Callable[[], None]]] = []
        self._window_end: Optional[float] = None
        self._window_hard: Optional[float] = None
        self._outbox: List[tuple] = []
        self._pkt_counters: Dict[Tuple[str, int], int] = {}
        self._ctl_counters: Dict[Tuple[str, str], int] = {}
        self._pause_counters: Dict[Tuple[str, int], int] = {}
        self._processed_accum = 0
        self._uncounted_accum = 0
        self._finalized = False
        self.busy_seconds = 0.0

    # --- ownership ----------------------------------------------------------

    def owns(self, name: str) -> bool:
        return self.partition.owner.get(name, 0) == self.shard_id

    def bind(self, node: Node) -> None:
        if self.owns(node.name):
            super().bind(node)
            return
        # Foreign replica: keep the behaviour resolvable (controllers
        # and appraisers consult the full world), give the node a
        # back-reference so its own ownership gates work, but skip
        # on_bind (no caches, no barrier hooks, no timers) — the owner
        # shard runs the real instance, and telemetry collection skips
        # replicas so per-node gauges merge exactly once.
        if not self.topology.has_node(node.name):
            raise NetworkError(f"topology has no node named {node.name!r}")
        if node.name in self._foreign_nodes or node.name in self._nodes:
            raise NetworkError(f"node {node.name!r} already bound")
        node.sim = self
        self._foreign_nodes[node.name] = node

    def node(self, name: str) -> Node:
        behaviour = self._foreign_nodes.get(name)
        if behaviour is not None:
            return behaviour
        return super().node(name)

    @property
    def bound_nodes(self) -> List[str]:
        return sorted(set(self._nodes) | set(self._foreign_nodes))

    def _is_bound_anywhere(self, name: str) -> bool:
        return name in self._nodes or name in self._foreign_nodes

    def transmit(
        self,
        from_node: str,
        out_port: int,
        packet: Packet,
        resend_budget: int = 0,
    ) -> bool:
        if not self.owns(from_node):
            # The owner shard performs (and accounts) this send.
            return True
        return super().transmit(from_node, out_port, packet, resend_budget)

    def send_control(
        self,
        sender: str,
        recipient: str,
        message: Any,
        size_hint: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> bool:
        if not self.owns(sender):
            return True
        return super().send_control(sender, recipient, message, size_hint, trace)

    # --- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise NetworkError(f"cannot schedule in the past (delay {delay})")
        self._schedule_event(delay, action, counted=True)

    def schedule_on(
        self, node_name: str, delay: float, action: Callable[[], None]
    ) -> None:
        if self.owns(node_name):
            self.schedule(delay, action)

    def schedule_replicated(
        self, owner_hint: str, delay: float, action: Callable[[], None]
    ) -> None:
        self._schedule_event(delay, action, counted=self.owns(owner_hint))

    def _schedule_event(
        self, delay: float, action: Callable[[], None], counted: bool
    ) -> None:
        self._seq += 1
        time = self.clock.now + delay
        entry = (time, self._seq, counted, action)
        if (
            self._window_end is not None
            and time < self._window_end
            and (self._window_hard is None or time <= self._window_hard)
        ):
            heapq.heappush(self._overlay, entry)
        else:
            self._backlog.append(entry)

    # --- cross-shard routing --------------------------------------------------

    def _schedule_packet_delivery(
        self, peer: str, peer_port: int, packet: Packet, delay: float
    ) -> None:
        if self.owns(peer):
            super()._schedule_packet_delivery(peer, peer_port, packet, delay)
            return
        arrival = self.clock.now + delay
        if self._window_end is not None and arrival < self._window_end:
            raise NetworkError(
                f"lookahead violation: packet for {peer!r} arrives at "
                f"{arrival} inside the open window ending {self._window_end}"
            )
        key = (peer, peer_port)
        index = self._pkt_counters.get(key, 0)
        self._pkt_counters[key] = index + 1
        self._outbox.append(
            (arrival, KIND_PACKET, peer, peer_port, index, packet)
        )

    def _schedule_control_delivery(
        self,
        sender: str,
        recipient: str,
        message: Any,
        trace: Optional[TraceContext],
    ) -> None:
        if self.owns(recipient):
            super()._schedule_control_delivery(sender, recipient, message, trace)
            return
        arrival = self.clock.now + self.control_latency_s
        if self._window_end is not None and arrival < self._window_end:
            raise NetworkError(
                f"lookahead violation: control for {recipient!r} arrives at "
                f"{arrival} inside the open window ending {self._window_end}"
            )
        key = (sender, recipient)
        index = self._ctl_counters.get(key, 0)
        self._ctl_counters[key] = index + 1
        self._outbox.append(
            (arrival, KIND_CONTROL, sender, recipient, index, message, trace)
        )

    def _schedule_pause_delivery(
        self,
        to_node: str,
        to_port: int,
        paused: bool,
        from_node: str,
        delay: float,
    ) -> None:
        if self.owns(to_node):
            super()._schedule_pause_delivery(
                to_node, to_port, paused, from_node, delay
            )
            return
        # A pause frame travels its link's propagation latency; on a
        # cut link that is at least the lookahead window, so the same
        # conservative argument as packets applies.
        arrival = self.clock.now + delay
        if self._window_end is not None and arrival < self._window_end:
            raise NetworkError(
                f"lookahead violation: pause frame for {to_node!r} arrives "
                f"at {arrival} inside the open window ending "
                f"{self._window_end}"
            )
        key = (to_node, to_port)
        index = self._pause_counters.get(key, 0)
        self._pause_counters[key] = index + 1
        self._outbox.append(
            (arrival, KIND_PAUSE, to_node, to_port, index, paused, from_node)
        )

    def take_outbox(self) -> List[tuple]:
        """Drain and return this window's cross-shard entries."""
        entries, self._outbox = self._outbox, []
        return entries

    def inject(self, entries: List[tuple]) -> None:
        """Accept cross-shard entries routed here by the runner.

        Entries must already be in canonical order (the runner sorts
        the merged outboxes); injection assigns local tie-breaking
        sequence numbers in that order, which is what makes same-time
        delivery interleaving independent of the shard count. The
        delivery event is scheduled (counted) here and nowhere else,
        so ``events_processed`` still sums to the monolith's count.
        """
        for entry in entries:
            if entry[1] == KIND_PACKET:
                time, _, peer, peer_port, _index, packet = entry
                self.schedule_at(
                    time,
                    lambda p=peer, pp=peer_port, pk=packet: (
                        self._deliver_packet(p, pp, pk)
                    ),
                )
            elif entry[1] == KIND_CONTROL:
                time, _, sender, recipient, _index, message, trace = entry
                self.schedule_at(
                    time,
                    lambda s=sender, r=recipient, m=message, tr=trace: (
                        self._deliver_control(s, r, m, tr)
                    ),
                )
            elif entry[1] == KIND_PAUSE:
                time, _, to_node, to_port, _index, paused, from_node = entry
                self.schedule_at(
                    time,
                    lambda n=to_node, p=to_port, f=paused, s=from_node: (
                        self._deliver_pause(n, p, f, s)
                    ),
                )
            else:
                raise NetworkError(f"unknown outbox entry kind {entry[1]!r}")

    # --- the windowed engine ---------------------------------------------------

    def next_event_time(self) -> Optional[float]:
        """Earliest pending event time, or None when the shard is idle."""
        if not self._backlog:
            return None
        return min(entry[0] for entry in self._backlog)

    def run_window(
        self,
        t_end: float,
        hard_limit: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> int:
        """Process every event with ``time < t_end`` (and ``time <=
        hard_limit`` when given); returns the number of *counted*
        events.

        Events scheduled mid-window that land inside the window run in
        the same pass (overlay heap); everything else accumulates in
        the backlog for later windows. The window bound is exclusive
        while the hard limit (the run's ``until``) is inclusive —
        matching the monolith, which processes events at exactly
        ``until``.
        """
        due: List[Tuple[float, int, bool, Callable[[], None]]] = []
        rest: List[Tuple[float, int, bool, Callable[[], None]]] = []
        for entry in self._backlog:
            if entry[0] < t_end and (
                hard_limit is None or entry[0] <= hard_limit
            ):
                due.append(entry)
            else:
                rest.append(entry)
        due.sort()
        self._backlog = rest
        self._window_end = t_end
        self._window_hard = hard_limit
        overlay = self._overlay
        processed = 0
        uncounted = 0
        index = 0
        recorder = self._recorder
        tick_due = (
            recorder.next_tick_s if recorder is not None else float("inf")
        )
        busy_from = perf_counter()
        try:
            while processed + uncounted < max_events:
                head = due[index] if index < len(due) else None
                if overlay and (head is None or overlay[0] < head):
                    entry = heapq.heappop(overlay)
                elif head is not None:
                    entry = head
                    index += 1
                else:
                    break
                time, _seq, counted, action = entry
                if time >= tick_due:
                    # Same virtual-tick rule as the monolith loop: the
                    # tick at `time` closes its window before the event
                    # at `time` executes.
                    recorder.advance_to(time)
                    tick_due = recorder.next_tick_s
                self.clock.advance_to(time)
                action()
                if counted:
                    processed += 1
                else:
                    uncounted += 1
        finally:
            # On a max_events abort (or a node behaviour raising),
            # park the unprocessed remainder back in the backlog so
            # state stays consistent for finalization.
            self._backlog.extend(due[index:])
            while overlay:
                self._backlog.append(heapq.heappop(overlay))
            self._window_end = None
            self._window_hard = None
            self._processed_accum += processed
            self._uncounted_accum += uncounted
            # Wall-clock this shard actually computed, summed across
            # windows: on k-core hardware the run's critical path is
            # max over shards of this, the capacity number the scaling
            # benchmark reports next to raw wall time. Never part of
            # SimStats — wall time is not deterministic.
            self.busy_seconds += perf_counter() - busy_from
        return processed

    def finalize(self) -> None:
        """End-of-run accounting and telemetry export (idempotent).

        Mirrors the monolith ``run``'s ``finally`` block: fold the
        processed-event count into stats, snapshot simulator gauges,
        and flush sinks — swallowing flush errors so they never mask a
        scenario exception.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._recorder is not None:
            # Close the residual window before gauges are collected so
            # the frame stream reflects exactly the simulated activity
            # (collector gauges never enter frames anyway, but the
            # ordering keeps finalize single-pass).
            self._recorder.finish(self.clock.now)
        self.stats.events_processed += self._processed_accum
        if self.telemetry.active:
            from repro.telemetry.instrument import collect_simulator

            collect_simulator(self.telemetry, self)
        try:
            self.telemetry.flush()
        except Exception:
            pass

    def recorder_runtime(self) -> Tuple[float, float]:
        """``(backlog, busy_seconds)`` — this shard's runtime view."""
        return (
            float(len(self._backlog) + len(self._overlay)),
            self.busy_seconds,
        )

    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> int:
        """Standalone drain — only meaningful for a 1-shard partition.

        Multi-shard simulators must run under a
        :class:`~repro.net.shardrun.ShardedRunner`, which owns the
        barrier protocol; calling ``run`` directly on one shard of
        many would silently drop cross-shard traffic.
        """
        if self.partition.shard_count != 1:
            raise NetworkError(
                "a multi-shard ShardSimulator runs under a ShardedRunner; "
                "direct run() is only valid for shard_count == 1"
            )
        total = 0
        while total < max_events:
            start = self.next_event_time()
            if start is None:
                break
            if until is not None and start > until:
                break
            total += self.run_window(
                float("inf"), hard_limit=until, max_events=max_events - total
            )
            self.run_barrier_hooks()
        if until is not None:
            self.clock.advance_to(until)
        self.finalize()
        return total


__all__ = [
    "KIND_CONTROL",
    "KIND_PACKET",
    "KIND_PAUSE",
    "Partition",
    "ShardSimulator",
    "partition_topology",
]
