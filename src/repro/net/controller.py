"""A central routing controller.

Computes shortest paths over a topology and installs LPM forwarding
entries on every switch through its P4Runtime endpoint — the standard
control-plane scripting workflow. Works with any switch class built on
:class:`~repro.pisa.switch.PisaSwitch` (plain, PERA, network-aware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.retry import RetryPolicy
from repro.net.host import Host
from repro.net.routing import all_pairs_next_hops, shortest_path
from repro.net.simulator import Simulator
from repro.pisa.program import DataplaneProgram
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.switch import PisaSwitch
from repro.pisa.tables import MatchKey, MatchKind
from repro.telemetry.audit import AuditKind
from repro.util.errors import NetworkError


@dataclass
class RoutingController:
    """Installs host routes on every bound switch."""

    sim: Simulator
    name: str = "controller"
    election_id: int = 1
    #: Bounds :meth:`reprovision`'s arbitration escalation attempts.
    retry_policy: Optional[RetryPolicy] = None

    def switches(self) -> List[PisaSwitch]:
        found = []
        for node_name in self.sim.bound_nodes:
            behaviour = self.sim.node(node_name)
            if isinstance(behaviour, PisaSwitch):
                found.append(behaviour)
        return found

    def hosts(self) -> List[Host]:
        return [
            self.sim.node(name)
            for name in self.sim.bound_nodes
            if isinstance(self.sim.node(name), Host)
        ]

    def take_mastership(self) -> None:
        for switch in self.switches():
            if not switch.runtime.arbitrate(self.name, self.election_id):
                raise NetworkError(
                    f"controller lost arbitration on {switch.name!r}"
                )

    def install_programs(
        self, program_factory=ipv4_forwarding_program
    ) -> Dict[str, DataplaneProgram]:
        """Install a freshly built program on every switch."""
        installed: Dict[str, DataplaneProgram] = {}
        for switch in self.switches():
            program = program_factory()
            switch.runtime.set_forwarding_pipeline_config(self.name, program)
            installed[switch.name] = program
        return installed

    def install_host_routes(self, table: str = "ipv4_lpm") -> int:
        """Write one /32 route per (switch, host) pair; returns count.

        Routes follow the lowest-latency path from each switch to each
        host; switches with no path to some host simply skip it.
        """
        written = 0
        for switch in self.switches():
            written += self._install_routes_on(switch, table)
        return written

    def _install_routes_on(self, switch: PisaSwitch, table: str = "ipv4_lpm") -> int:
        """Write this switch's /32 host routes; returns count written."""
        written = 0
        topology = self.sim.topology
        for host in self.hosts():
            try:
                path = shortest_path(topology, switch.name, host.name)
            except NetworkError:
                continue
            if len(path) < 2:
                continue
            port = topology.port_towards(switch.name, path[1])
            switch.runtime.write(self.name, TableEntry(
                table=table,
                keys=(MatchKey(
                    MatchKind.LPM, host.ip, prefix_len=32,
                ),),
                action="forward", params=(port,),
            ))
            written += 1
        return written

    def install_multipath_routes(
        self,
        destinations: Optional[Sequence[Tuple[str, int]]] = None,
        table: str = "ipv4_lpm",
        next_hops: Optional[
            Dict[Tuple[str, str], Tuple[int, ...]]
        ] = None,
    ) -> int:
        """Write ECMP next-hop sets: groups plus /32 entries; returns
        the number of entries written.

        ``destinations`` is ``[(host_name, host_ip), ...]`` (defaults
        to every bound host). For each switch and destination the
        equal-cost egress port set comes from
        :func:`~repro.net.routing.all_pairs_next_hops` (pass
        ``next_hops`` to reuse a precomputed table); a single-member
        set becomes a plain ``forward`` entry, a multi-member set
        becomes a ``write_group`` + ``ecmp_select`` entry. Group ids
        are per-switch ordinals over the sorted destination list, so
        every shard computes identical ids. The program installed must
        allow ``ecmp_select`` in ``table``
        (:func:`~repro.pisa.programs.fabric_multipath_program`).
        """
        if destinations is None:
            destinations = [(h.name, h.ip) for h in self.hosts()]
        dsts = sorted(destinations)
        if next_hops is None:
            next_hops = all_pairs_next_hops(
                self.sim.topology, [name for name, _ip in dsts]
            )
        written = 0
        for switch in self.switches():
            written += self._install_multipath_on(
                switch, dsts, next_hops, table, self.name
            )
        return written

    def _install_multipath_on(
        self,
        switch: PisaSwitch,
        dsts: Sequence[Tuple[str, int]],
        next_hops: Dict[Tuple[str, str], Tuple[int, ...]],
        table: str,
        as_controller: str,
    ) -> int:
        written = 0
        for group_id, (host_name, host_ip) in enumerate(dsts, start=1):
            members = next_hops.get((switch.name, host_name))
            if not members:
                continue
            key = MatchKey(MatchKind.LPM, host_ip, prefix_len=32)
            if len(members) == 1:
                entry = TableEntry(
                    table=table, keys=(key,),
                    action="forward", params=(members[0],),
                )
            else:
                switch.runtime.write_group(as_controller, group_id, members)
                entry = TableEntry(
                    table=table, keys=(key,),
                    action="ecmp_select", params=(group_id,),
                )
            switch.runtime.write(as_controller, entry)
            written += 1
        return written

    def provision(self, program_factory=ipv4_forwarding_program) -> int:
        """One-call setup: mastership, programs, routes."""
        self.take_mastership()
        self.install_programs(program_factory)
        return self.install_host_routes()

    def reprovision(
        self, switch_name: str, program_factory=ipv4_forwarding_program
    ) -> DataplaneProgram:
        """Recover one switch after a compromise: re-win mastership,
        reinstall the vetted program, rewrite its host routes.

        A compromising controller holds mastership with a higher
        election id, so re-arbitrating at our old id loses; P4Runtime's
        remedy is to come back with a higher id. Each attempt doubles
        the id, an exponential search that out-bids any incumbent in
        ``log2(incumbent_id)`` attempts (bounded by
        ``retry_policy.max_attempts`` when set, else 32 — enough for
        any 32-bit election id). Emits a ``recovery.reprovisioned``
        audit event on success.
        """
        behaviour = self.sim.node(switch_name)
        if not isinstance(behaviour, PisaSwitch):
            raise NetworkError(f"{switch_name!r} is not a switch")
        attempts = (
            self.retry_policy.max_attempts
            if self.retry_policy is not None
            else 32
        )
        won = False
        for attempt in range(attempts):
            if behaviour.runtime.arbitrate(self.name, self.election_id):
                won = True
                break
            # Outbid whoever took over; the doubling converges fast.
            self.election_id *= 2
        if not won:
            raise NetworkError(
                f"controller could not re-win mastership on {switch_name!r} "
                f"after {attempts} attempt(s)"
            )
        program = program_factory()
        behaviour.runtime.set_forwarding_pipeline_config(self.name, program)
        routes = self._install_routes_on(behaviour)
        tel = self.sim.telemetry
        if tel.active:
            tel.audit_event(
                AuditKind.RECOVERY_REPROVISIONED,
                self.name,
                target=switch_name,
                election_id=self.election_id,
                routes=routes,
            )
        return program
