"""The packet model shared by hosts, switches and the simulator.

A :class:`Packet` is a parsed header stack plus payload. Switches
operate on the *parsed* form (that is what a PISA pipeline sees after
its parser stage); :meth:`encode`/:meth:`decode` give the byte-accurate
wire form for size accounting and for exercising the programmable
parser on real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.headers import (
    ETHERTYPE_IPV4,
    IPPROTO_TCP,
    IPPROTO_UDP,
    RA_UDP_PORT,
    EthernetHeader,
    Ipv4Header,
    RaShimHeader,
    TcpHeader,
    UdpHeader,
)
from repro.telemetry.tracing import TraceContext
from repro.util.errors import CodecError


@dataclass(frozen=True)
class Packet:
    """An immutable parsed packet.

    Mutation returns new packets (``dataclasses.replace`` style), which
    keeps the simulator honest: a switch cannot accidentally alias a
    packet it already forwarded.
    """

    eth: EthernetHeader
    ipv4: Optional[Ipv4Header] = None
    udp: Optional[UdpHeader] = None
    tcp: Optional[TcpHeader] = None
    ra_shim: Optional[RaShimHeader] = None
    payload: bytes = b""
    #: Causal trace metadata — ancillary data like an skb annotation,
    #: never on the wire: excluded from equality and the encoded form.
    trace: Optional[TraceContext] = field(
        default=None, compare=False, repr=False
    )
    #: ECN-style congestion-experienced mark, set by a congested
    #: egress queue (:mod:`repro.net.qdisc`). Ancillary metadata like
    #: ``trace`` — a stand-in for the IP ECN codepoint that keeps the
    #: wire form (and every size/digest computed from it) unchanged.
    ecn: bool = field(default=False, compare=False, repr=False)

    # --- construction helpers -------------------------------------------

    @classmethod
    def udp_packet(
        cls,
        src_mac: int,
        dst_mac: int,
        src_ip: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        payload: bytes = b"",
        ttl: int = 64,
        ra_shim: Optional[RaShimHeader] = None,
    ) -> "Packet":
        """Build a UDP packet with consistent length fields."""
        shim_len = ra_shim.wire_length if ra_shim is not None else 0
        udp_len = UdpHeader.WIRE_LEN + shim_len + len(payload)
        actual_dst_port = RA_UDP_PORT if ra_shim is not None else dst_port
        return cls(
            eth=EthernetHeader(dst=dst_mac, src=src_mac),
            ipv4=Ipv4Header(
                src=src_ip,
                dst=dst_ip,
                protocol=IPPROTO_UDP,
                ttl=ttl,
                total_length=Ipv4Header.WIRE_LEN + udp_len,
            ),
            udp=UdpHeader(src_port=src_port, dst_port=actual_dst_port, length=udp_len),
            ra_shim=ra_shim,
            payload=payload,
        )

    @classmethod
    def tcp_packet(
        cls,
        src_mac: int,
        dst_mac: int,
        src_ip: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        payload: bytes = b"",
        flags: int = 0,
        ttl: int = 64,
    ) -> "Packet":
        """Build a TCP packet with consistent length fields."""
        return cls(
            eth=EthernetHeader(dst=dst_mac, src=src_mac),
            ipv4=Ipv4Header(
                src=src_ip,
                dst=dst_ip,
                protocol=IPPROTO_TCP,
                ttl=ttl,
                total_length=Ipv4Header.WIRE_LEN + TcpHeader.WIRE_LEN + len(payload),
            ),
            tcp=TcpHeader(src_port=src_port, dst_port=dst_port, flags=flags),
            payload=payload,
        )

    # --- wire form -------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to wire bytes (Ethernet frame).

        The result is cached on the (frozen, immutable) instance:
        measurement engines, simulators and appraisers all want the
        same bytes, and mutation always goes through
        :func:`dataclasses.replace`, which produces a fresh object.
        """
        cached = self.__dict__.get("_wire")
        if cached is not None:
            return cached
        out = self.eth.encode()
        if self.ipv4 is not None:
            out += self.ipv4.encode()
            if self.udp is not None:
                out += self.udp.encode()
                if self.ra_shim is not None:
                    out += self.ra_shim.encode()
            elif self.tcp is not None:
                out += self.tcp.encode()
        out += self.payload
        object.__setattr__(self, "_wire", out)
        return out

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        """Parse wire bytes back into a header stack.

        Unknown ethertypes/protocols keep the remainder as payload —
        the same graceful degradation a hardware parser exhibits.
        """
        eth = EthernetHeader.decode(data)
        rest = data[EthernetHeader.WIRE_LEN :]
        if eth.ethertype != ETHERTYPE_IPV4:
            return cls(eth=eth, payload=rest)
        ipv4 = Ipv4Header.decode(rest)
        rest = rest[Ipv4Header.WIRE_LEN :]
        if ipv4.protocol == IPPROTO_UDP:
            udp = UdpHeader.decode(rest)
            rest = rest[UdpHeader.WIRE_LEN :]
            shim: Optional[RaShimHeader] = None
            if udp.dst_port == RA_UDP_PORT and rest[:2] == b"\x52\x41":
                shim = RaShimHeader.decode(rest)
                rest = rest[shim.wire_length :]
            return cls(eth=eth, ipv4=ipv4, udp=udp, ra_shim=shim, payload=rest)
        if ipv4.protocol == IPPROTO_TCP:
            tcp = TcpHeader.decode(rest)
            return cls(
                eth=eth, ipv4=ipv4, tcp=tcp, payload=rest[TcpHeader.WIRE_LEN :]
            )
        return cls(eth=eth, ipv4=ipv4, payload=rest)

    # --- accessors -------------------------------------------------------

    @property
    def wire_length(self) -> int:
        """Total frame length in bytes (without re-encoding)."""
        cached = self.__dict__.get("_wire")
        if cached is not None:
            return len(cached)
        length = EthernetHeader.WIRE_LEN + len(self.payload)
        if self.ipv4 is not None:
            length += Ipv4Header.WIRE_LEN
        if self.udp is not None:
            length += UdpHeader.WIRE_LEN
        if self.tcp is not None:
            length += TcpHeader.WIRE_LEN
        if self.ra_shim is not None:
            length += self.ra_shim.wire_length
        return length

    @property
    def five_tuple(self) -> tuple:
        """(src_ip, dst_ip, protocol, src_port, dst_port) or Nones."""
        if self.ipv4 is None:
            return (None, None, None, None, None)
        l4 = self.udp or self.tcp
        return (
            self.ipv4.src,
            self.ipv4.dst,
            self.ipv4.protocol,
            l4.src_port if l4 else None,
            l4.dst_port if l4 else None,
        )

    def with_shim(self, shim: Optional[RaShimHeader]) -> "Packet":
        """Return a copy carrying (or stripped of) an RA shim header.

        Recomputes the UDP and IPv4 length fields so the wire form
        stays self-consistent.
        """
        if self.udp is None:
            raise CodecError("RA shim requires a UDP packet")
        old_len = self.ra_shim.wire_length if self.ra_shim is not None else 0
        new_len = shim.wire_length if shim is not None else 0
        delta = new_len - old_len
        return replace(
            self,
            ra_shim=shim,
            udp=replace(self.udp, length=self.udp.length + delta),
            ipv4=replace(self.ipv4, total_length=self.ipv4.total_length + delta),
        )

    def with_trace(self, trace: Optional[TraceContext]) -> "Packet":
        """Return a copy carrying ``trace`` as ancillary metadata.

        Trace context never reaches the wire, so the cached encoded
        form (if any) is carried over to the copy.
        """
        updated = replace(self, trace=trace)
        cached = self.__dict__.get("_wire")
        if cached is not None:
            object.__setattr__(updated, "_wire", cached)
        return updated

    def with_ecn(self, marked: bool = True) -> "Packet":
        """Return a copy carrying the congestion-experienced mark.

        Like :meth:`with_trace`, the mark never reaches the wire, so
        the cached encoded form is carried over.
        """
        updated = replace(self, ecn=marked)
        cached = self.__dict__.get("_wire")
        if cached is not None:
            object.__setattr__(updated, "_wire", cached)
        return updated

    def with_ttl_decremented(self) -> "Packet":
        if self.ipv4 is None:
            raise CodecError("cannot decrement TTL of a non-IP packet")
        return replace(self, ipv4=self.ipv4.decrement_ttl())

    def __repr__(self) -> str:  # keep simulator logs readable
        parts = [f"eth({self.eth.ethertype:#06x})"]
        if self.ipv4 is not None:
            parts.append(f"ipv4({self.ipv4.src:#010x}->{self.ipv4.dst:#010x})")
        if self.udp is not None:
            parts.append(f"udp({self.udp.src_port}->{self.udp.dst_port})")
        if self.tcp is not None:
            parts.append(f"tcp({self.tcp.src_port}->{self.tcp.dst_port})")
        if self.ra_shim is not None:
            parts.append(f"ra(hops={self.ra_shim.hop_count},{len(self.ra_shim.body)}B)")
        return f"Packet[{' '.join(parts)} payload={len(self.payload)}B]"
