"""Finite egress queues, congestion signals, and link-local recovery.

Links in :mod:`repro.net.topology` model latency, bandwidth and loss
but (without this module) not *contention*: every transmission departs
immediately, so buffers never fill and attestation overhead never
competes with user traffic for queue space. Attaching a
:class:`QueueConfig` to a link changes that. The sending endpoint
grows a per-egress-port :class:`EgressQueue` driven by
:class:`QdiscEngine`:

* **Finite buffers, deterministic tail-drop.** A packet that would
  push the queue past ``capacity_bytes`` or ``capacity_packets`` is
  dropped at enqueue (reason ``queue_full``) — no RED, no RNG, so
  sharded runs stay byte-identical.
* **Serialization occupancy.** A packet holds the port for its
  transfer time (``wire_bytes * 8 / bandwidth_bps``); queued arrivals
  wait their turn in FIFO order.
* **ECN-style marking.** When the queue's depth at enqueue is at or
  above ``ecn_threshold_bytes`` the packet is marked
  congestion-experienced. The mark is ancillary packet metadata
  (:attr:`repro.net.packet.Packet.ecn`), mirroring how trace context
  is carried — congestion-aware sinks and flowlet tables read it,
  the wire form never changes.
* **PFC-style pause/resume.** When a node's *aggregate* egress
  occupancy crosses a link's ``pause_threshold_bytes`` the node sends
  a pause frame up that link's reverse direction; the upstream
  endpoint's egress queue toward the requester stops starting new
  serializations until a resume frame (sent when occupancy falls to
  ``resume_below_bytes``) releases it. Frames travel with the link's
  propagation latency, which on shard-cut links is at least the
  conservative lookahead window — so pause frames cross shard
  boundaries through the typed outboxes like any other event.
* **Link-local recovery (LinkGuardian-style).** With a
  :class:`RecoveryConfig`, corruption or loss detected on the link
  (receiver-side CRC, modelled by the fault hook's
  ``detect_corruption`` mode and the link's seeded loss stream)
  triggers retransmission from the sender's holding buffer: each
  failed attempt costs one serialization plus a NACK round-trip
  (``transfer + 2 * latency``), the recovered packet re-establishes
  the link's in-order *release floor*, and later packets that would
  overtake it are held back (``SimStats.recovery_held``) up to
  ``holding_packets`` deep. Downstream — and the attestation
  appraiser — never sees a gap or a reordering, so a corrupting link
  causes zero verdict churn.

Determinism contract: the engine introduces **no new randomness**.
Loss draws still come from the simulator's per-directed-link streams,
fault draws from the injector's keyed streams; queue state lives only
with the owning shard (enqueue sits behind the ``transmit`` ownership
gate, pause delivery is routed to the owner), so 1-, 2- and 4-shard
runs replay the same decisions in the same order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.telemetry.audit import AuditKind
from repro.util.errors import NetworkError


@dataclass(frozen=True)
class RecoveryConfig:
    """Link-local corruption-tolerant retransmission knobs.

    ``retransmit_limit`` bounds retries per packet (a down link is
    never retryable); ``holding_packets`` bounds how many subsequent
    packets the in-order release window may delay behind a recovered
    packet before overflowing (reason ``recovery_hold_overflow``).
    """

    retransmit_limit: int = 4
    holding_packets: int = 64

    def __post_init__(self) -> None:
        if self.retransmit_limit < 1:
            raise NetworkError(
                f"retransmit limit must be >= 1, got {self.retransmit_limit}"
            )
        if self.holding_packets < 1:
            raise NetworkError(
                f"holding buffer must hold >= 1 packet, got "
                f"{self.holding_packets}"
            )


@dataclass(frozen=True)
class QueueConfig:
    """Egress-queue discipline for one link (attached via
    :attr:`repro.net.topology.Link.queue`).

    Thresholds are optional: ``None`` disables ECN marking / PFC pause
    respectively, leaving only finite buffering and serialization
    occupancy. ``resume_threshold_bytes`` defaults to half the pause
    threshold (classic hysteresis) via :attr:`resume_below_bytes`.
    """

    capacity_bytes: int = 65536
    capacity_packets: int = 256
    ecn_threshold_bytes: Optional[int] = None
    pause_threshold_bytes: Optional[int] = None
    resume_threshold_bytes: Optional[int] = None
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.capacity_packets <= 0:
            raise NetworkError(
                f"queue capacity must be positive, got "
                f"{self.capacity_bytes}B / {self.capacity_packets}p"
            )
        if (
            self.ecn_threshold_bytes is not None
            and self.ecn_threshold_bytes <= 0
        ):
            raise NetworkError(
                f"ECN threshold must be positive, got "
                f"{self.ecn_threshold_bytes}"
            )
        if self.pause_threshold_bytes is not None:
            if self.pause_threshold_bytes <= 0:
                raise NetworkError(
                    f"pause threshold must be positive, got "
                    f"{self.pause_threshold_bytes}"
                )
            if (
                self.resume_threshold_bytes is not None
                and not 0 < self.resume_threshold_bytes
                <= self.pause_threshold_bytes
            ):
                raise NetworkError(
                    f"resume threshold {self.resume_threshold_bytes} must "
                    f"be in (0, pause threshold "
                    f"{self.pause_threshold_bytes}]"
                )
        elif self.resume_threshold_bytes is not None:
            raise NetworkError(
                "resume threshold without a pause threshold is meaningless"
            )

    @property
    def resume_below_bytes(self) -> Optional[int]:
        """The occupancy at or below which a paused link resumes."""
        if self.pause_threshold_bytes is None:
            return None
        if self.resume_threshold_bytes is not None:
            return self.resume_threshold_bytes
        return self.pause_threshold_bytes // 2


class EgressQueue:
    """One egress port's FIFO plus its serialization/recovery state.

    Pure state — all transitions are driven by :class:`QdiscEngine`.
    ``tx_seq`` shadows the link-local sequence number a LinkGuardian
    sender stamps on frames; ``release_floor_s`` is the earliest time
    a later packet may arrive downstream without overtaking a
    recovered one.
    """

    __slots__ = (
        "node",
        "port",
        "link",
        "config",
        "fifo",
        "depth_bytes",
        "depth_packets",
        "busy",
        "paused",
        "release_floor_s",
        "held_streak",
        "tx_seq",
    )

    def __init__(self, node: str, port: int, link) -> None:
        self.node = node
        self.port = port
        self.link = link
        self.config: QueueConfig = link.queue
        self.fifo: Deque[Tuple[object, int]] = deque()
        self.depth_bytes = 0
        self.depth_packets = 0
        self.busy = False
        self.paused = False
        self.release_floor_s = 0.0
        self.held_streak = 0
        self.tx_seq = 0


class QdiscEngine:
    """Drives every :class:`EgressQueue` of one simulator (or shard).

    Created lazily by :meth:`repro.net.simulator.Simulator.transmit`
    the first time a queued link is used. The engine calls back into
    the simulator for scheduling, stats, drops and delivery, so the
    sharded engine's outbox routing applies unchanged.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.queues: Dict[Tuple[str, int], EgressQueue] = {}
        #: Aggregate buffered bytes per node — the PFC watermark input.
        self.node_depth: Dict[str, int] = {}
        #: Per (node, port): whether a pause is outstanding up that link.
        self._pause_sent: Dict[Tuple[str, int], bool] = {}
        self._pfc_ports: Dict[str, List[int]] = {}

    # --- enqueue --------------------------------------------------------------

    def offer(
        self, from_node: str, out_port: int, link, packet, resend_budget: int
    ) -> bool:
        """Enqueue ``packet`` on ``from_node``'s egress queue.

        Returns ``False`` only on an immediate tail-drop; a packet
        accepted here may still be lost at serve time (the sender
        cannot know, exactly as on a real NIC).
        """
        sim = self.sim
        queue = self._queue_for(from_node, out_port, link)
        config = queue.config
        wire = packet.wire_length
        if (
            queue.depth_packets + 1 > config.capacity_packets
            or queue.depth_bytes + wire > config.capacity_bytes
        ):
            sim.stats.queue_drops += 1
            sim._count_drop(from_node, "queue_full", packet)
            sim._note(
                f"{from_node}:{out_port} queue full; dropped {packet!r}"
            )
            return False
        if (
            config.ecn_threshold_bytes is not None
            and queue.depth_bytes >= config.ecn_threshold_bytes
            and not packet.ecn
        ):
            packet = packet.with_ecn()
            sim.stats.ecn_marked += 1
            if sim.telemetry.active:
                sim.telemetry.counter(
                    "net.qdisc.ecn_marked",
                    node=from_node,
                    port=str(out_port),
                ).inc()
        queue.fifo.append((packet, resend_budget))
        queue.depth_bytes += wire
        queue.depth_packets += 1
        self.node_depth[from_node] = (
            self.node_depth.get(from_node, 0) + wire
        )
        self._pfc_update(from_node)
        if not queue.busy and not queue.paused:
            self._serve(queue)
        return True

    def _queue_for(self, node: str, port: int, link) -> EgressQueue:
        key = (node, port)
        queue = self.queues.get(key)
        if queue is None:
            queue = EgressQueue(node, port, link)
            self.queues[key] = queue
        return queue

    # --- service --------------------------------------------------------------

    def _serve(self, queue: EgressQueue) -> None:
        """Start serializing queued packets until the port goes busy.

        Zero-occupancy drops (legacy budget-path losses, down links)
        fall straight through to the next packet in the same event.
        """
        while queue.fifo and not queue.busy and not queue.paused:
            if self._serve_one(queue):
                return

    def _serve_one(self, queue: EgressQueue) -> bool:
        """Dequeue and transmit one packet; True iff the port is now
        held (a completion event has been scheduled)."""
        sim = self.sim
        packet, budget = queue.fifo.popleft()
        wire = packet.wire_length
        queue.depth_bytes -= wire
        queue.depth_packets -= 1
        node = queue.node
        self.node_depth[node] = self.node_depth.get(node, 0) - wire
        self._pfc_update(node)
        link = queue.link
        out_port = queue.port
        peer, peer_port = link.other_end(node)
        recovery = queue.config.recovery
        limit = recovery.retransmit_limit if recovery is not None else budget
        faults = sim.faults
        attempts = 0
        while True:
            reason: Optional[str] = None
            outgoing = packet
            if faults is not None:
                reason, outgoing = faults.filter_transmit(
                    node, peer, packet,
                    detect_corruption=recovery is not None,
                )
            if (
                reason is None
                and link.drop_rate > 0
                and sim._loss_stream(node, out_port).random()
                < link.drop_rate
            ):
                reason = "link_loss"
            if reason is None:
                packet = outgoing
                break
            if reason == "fault_link_down" or attempts >= limit:
                return self._give_up(
                    queue, packet, reason, attempts, link
                )
            attempts += 1
            sim.stats.local_resends += 1
            if recovery is not None:
                sim.stats.recovery_retransmits += 1
            sim._note(
                f"{node}:{out_port} resending {packet!r} after {reason}"
            )
        transfer = (packet.wire_length * 8) / link.bandwidth_bps
        latency = link.latency_s
        # With recovery, each failed attempt serialized a doomed copy
        # and waited out the NACK round-trip; the legacy budget path
        # keeps its instant re-offer semantics (zero port time).
        penalty = (
            attempts * (transfer + 2.0 * latency)
            if recovery is not None
            else 0.0
        )
        busy_for = penalty + transfer
        now = sim.clock.now
        natural = now + busy_for + latency
        arrival = natural
        queue.tx_seq += 1
        if recovery is not None:
            if attempts:
                # The recovered packet defines the new release floor:
                # nothing behind it may arrive downstream earlier.
                queue.release_floor_s = max(
                    queue.release_floor_s, natural
                )
                queue.held_streak = 0
            elif natural < queue.release_floor_s:
                queue.held_streak += 1
                if queue.held_streak > recovery.holding_packets:
                    sim._count_drop(
                        node, "recovery_hold_overflow", packet
                    )
                    sim._note(
                        f"{node}:{out_port} holding buffer overflow; "
                        f"dropped {packet!r}"
                    )
                    return self._hold_port(queue, busy_for)
                sim.stats.recovery_held += 1
                arrival = queue.release_floor_s
            else:
                queue.held_streak = 0
        sim.stats.packets_transmitted += 1
        sim.stats.bytes_transmitted += packet.wire_length
        tel = sim.telemetry
        if packet.trace is not None:
            packet = packet.with_trace(packet.trace.hopped(node))
        if tel.active:
            link_label = f"{node}:{out_port}->{peer}:{peer_port}"
            tel.counter("net.link.tx_packets", link=link_label).inc()
            tel.counter("net.link.tx_bytes", link=link_label).inc(
                packet.wire_length
            )
            if packet.trace is not None:
                tel.audit_event(
                    AuditKind.PACKET_FORWARDED,
                    node,
                    trace=packet.trace,
                    link=link_label,
                )
            if attempts:
                tel.audit_event(
                    AuditKind.RECOVERY_RESENT,
                    node,
                    trace=packet.trace,
                    attempts=attempts,
                    link=link_label,
                    seq=queue.tx_seq,
                )
        if sim.trace_enabled:
            sim._note(
                f"{node}:{out_port} -> {peer}:{peer_port} {packet!r}"
            )
            sim._log_transmission(node, out_port, peer, peer_port, packet)
        sim._schedule_packet_delivery(
            peer, peer_port, packet, arrival - now
        )
        return self._hold_port(queue, busy_for)

    def _give_up(
        self, queue: EgressQueue, packet, reason: str, attempts: int, link
    ) -> bool:
        """Final-drop path for a serve that exhausted its retries."""
        sim = self.sim
        node = queue.node
        recovery = queue.config.recovery
        recovering = recovery is not None and reason != "fault_link_down"
        final_reason = "recovery_exhausted" if recovering else reason
        sim._count_drop(node, final_reason, packet)
        sim._note(
            f"{node}:{queue.port} lost {packet!r} ({final_reason})"
        )
        if recovering:
            if sim.telemetry.active and packet.trace is not None:
                peer, _ = link.other_end(node)
                sim.telemetry.audit_event(
                    AuditKind.RECOVERY_GAVE_UP,
                    node,
                    trace=packet.trace,
                    to=peer,
                    attempts=attempts,
                )
            transfer = (packet.wire_length * 8) / link.bandwidth_bps
            busy_for = (attempts + 1) * (
                transfer + 2.0 * link.latency_s
            )
            return self._hold_port(queue, busy_for)
        return False

    def _hold_port(self, queue: EgressQueue, busy_for: float) -> bool:
        queue.busy = True
        self.sim.schedule(busy_for, lambda: self._complete(queue))
        return True

    def _complete(self, queue: EgressQueue) -> None:
        """Serialization finished: free the port, serve the next packet."""
        queue.busy = False
        if queue.fifo and not queue.paused:
            self._serve(queue)

    # --- PFC pause/resume -----------------------------------------------------

    def _pfc_ports_of(self, node: str) -> List[int]:
        ports = self._pfc_ports.get(node)
        if ports is None:
            topo = self.sim.topology
            ports = []
            for port in topo.ports_of(node):
                link = topo.link_at(node, port)
                if (
                    link is not None
                    and link.queue is not None
                    and link.queue.pause_threshold_bytes is not None
                ):
                    ports.append(port)
            self._pfc_ports[node] = ports
        return ports

    def _pfc_update(self, node: str) -> None:
        """Re-evaluate pause watermarks after a depth change at ``node``."""
        depth = self.node_depth.get(node, 0)
        topo = self.sim.topology
        for port in self._pfc_ports_of(node):
            link = topo.link_at(node, port)
            config = link.queue
            key = (node, port)
            sent = self._pause_sent.get(key, False)
            if not sent and depth > config.pause_threshold_bytes:
                self._pause_sent[key] = True
                self._send_pause(node, port, link, True)
            elif sent and depth <= config.resume_below_bytes:
                self._pause_sent[key] = False
                self._send_pause(node, port, link, False)

    def _send_pause(self, node: str, port: int, link, paused: bool) -> None:
        """Emit a pause/resume frame up ``link`` towards the upstream
        endpoint, delivered after the link's propagation latency."""
        sim = self.sim
        peer, peer_port = link.other_end(node)
        if paused:
            sim.stats.pause_frames += 1
        if sim.telemetry.active:
            name = (
                "net.qdisc.pause_frames"
                if paused
                else "net.qdisc.resume_frames"
            )
            sim.telemetry.counter(
                name, link=f"{peer}:{peer_port}->{node}:{port}"
            ).inc()
        sim._note(
            f"{node}:{port} {'pause' if paused else 'resume'} -> "
            f"{peer}:{peer_port}"
        )
        sim._schedule_pause_delivery(
            peer, peer_port, paused, node, link.latency_s
        )

    def on_pause(
        self, node: str, port: int, paused: bool, from_node: str
    ) -> None:
        """A pause/resume frame from ``from_node`` arrived at
        ``node``'s egress port ``port`` (the port facing the sender)."""
        link = self.sim.topology.link_at(node, port)
        if link is None or link.queue is None:
            # The requester's reverse link carries no queue — nothing
            # to pause; note and ignore (never a crash).
            self.sim._note(
                f"{node}:{port} ignored pause frame from {from_node}"
            )
            return
        queue = self._queue_for(node, port, link)
        queue.paused = paused
        self.sim._note(
            f"{node}:{port} {'paused' if paused else 'resumed'} by "
            f"{from_node}"
        )
        if not paused and not queue.busy and queue.fifo:
            self._serve(queue)

    # --- introspection --------------------------------------------------------

    def owned_depths(self) -> List[Tuple[str, int, int]]:
        """Sorted ``(node, port, depth_bytes)`` for owned queues — the
        flight-recorder probe input (foreign replicas are skipped so
        depth series merge exactly once across shards)."""
        sim = self.sim
        out: List[Tuple[str, int, int]] = []
        for node, port in sorted(self.queues):
            if sim.owns(node):
                out.append((node, port, self.queues[(node, port)].depth_bytes))
        return out


__all__ = [
    "EgressQueue",
    "QdiscEngine",
    "QueueConfig",
    "RecoveryConfig",
]
