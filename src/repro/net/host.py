"""Host endpoints: send traffic, receive traffic, run app callbacks.

Hosts are the Relying Parties and end principals of the paper's use
cases (the bank's client, the sensor, the peer behind a NAT). They are
deliberately simple: one port, a MAC/IP identity, received-packet log,
and an optional application callback.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.net.headers import RaShimHeader
from repro.net.packet import Packet
from repro.net.simulator import Node
from repro.telemetry.audit import AuditKind
from repro.telemetry.tracing import start_trace
from repro.util.errors import NetworkError


class Host(Node):
    """A single-homed host."""

    def __init__(self, name: str, mac: int, ip: int, port: int = 1) -> None:
        super().__init__(name)
        self.mac = mac
        self.ip = ip
        self.port = port
        self.received: List[Tuple[float, Packet]] = []
        self.control_received: List[Tuple[float, str, Any]] = []
        self.on_packet: Optional[Callable[[Packet], None]] = None
        self.on_control: Optional[Callable[[str, Any], None]] = None
        # Local resend budget for lossy first hops (see Simulator.transmit).
        self.resend_budget = 0

    # --- sending ------------------------------------------------------------

    def send(self, packet: Packet, traced: bool = True) -> Packet:
        """Transmit ``packet`` out of the host's single port.

        When telemetry is active the host is a trace origin: packets
        leaving without a :class:`TraceContext` get a fresh one stamped
        here, so every downstream span/audit event joins back to this
        send. Returns the packet as transmitted (trace attached).
        Pass ``traced=False`` to skip the origin stamp — bulk workload
        traffic at fabric scale would otherwise mint millions of
        traces and overflow the audit ring, drowning the attested
        flows the journal exists to explain.
        """
        if self.sim is None:
            raise NetworkError(f"host {self.name!r} is not bound to a simulator")
        if not self.sim.owns(self.name):
            # A foreign-shard replica of this host: the owning shard
            # performs the send (and stamps the trace) — bailing before
            # the trace stamp keeps per-origin id serials identical in
            # every shard.
            return packet
        tel = self.sim.telemetry
        if tel.active and traced and packet.trace is None:
            packet = packet.with_trace(start_trace(self.name))
            tel.audit_event(
                AuditKind.TRACE_STARTED,
                self.name,
                trace=packet.trace,
                five_tuple=repr(packet.five_tuple),
            )
        self.sim.transmit(
            self.name, self.port, packet, resend_budget=self.resend_budget
        )
        return packet

    def send_udp(
        self,
        dst_mac: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        payload: bytes = b"",
        ra_shim: Optional[RaShimHeader] = None,
        traced: bool = True,
    ) -> Packet:
        """Build and send a UDP packet from this host; returns it."""
        packet = Packet.udp_packet(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            ra_shim=ra_shim,
        )
        return self.send(packet, traced=traced)

    # --- receiving ------------------------------------------------------------

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        self.received.append((self.sim.clock.now, packet))
        if packet.trace is not None and self.sim.telemetry.active:
            self.sim.telemetry.audit_event(
                AuditKind.PACKET_DELIVERED, self.name, trace=packet.trace
            )
        if self.on_packet is not None:
            self.on_packet(packet)

    def handle_control(self, sender: str, message: Any) -> None:
        self.control_received.append((self.sim.clock.now, sender, message))
        if self.on_control is not None:
            self.on_control(sender, message)

    # --- convenience ------------------------------------------------------------

    @property
    def received_packets(self) -> List[Packet]:
        return [packet for _, packet in self.received]

    def clear(self) -> None:
        self.received.clear()
        self.control_received.clear()
