"""A deterministic discrete-event network simulator.

Nodes implement :class:`Node`; the simulator owns the clock and the
event queue. Packet hand-off between nodes goes through
:meth:`Simulator.transmit`, which applies link latency and
serialization delay. Determinism: ties in the event queue break on a
monotonically increasing sequence number, never on object identity.

The simulator also offers an out-of-band *control channel*
(:meth:`send_control`) used for evidence sent "directly to the
appraiser" (paper Fig. 2, out-of-band variant) — modelled as a
message with its own latency, not as dataplane packets, matching the
common deployment where the control network is separate. Control
deliveries to absent nodes are *counted* (``SimStats.control_dropped``)
symmetrically with dataplane drops, never silently lost and never a
crash — an unobservable control plane is exactly what the paper
argues against.

Observability: the simulator owns a
:class:`~repro.telemetry.instrument.Telemetry` domain (inert unless
enabled) and feeds it per-link transmit/drop/control counters as they
happen plus a full stats snapshot at the end of every :meth:`run`.
The event trace and packet log are bounded ring buffers
(``trace_limit`` entries each); evictions under heavy traffic are
counted in ``SimStats.dropped_trace_entries`` instead of growing the
heap without bound.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.qdisc import QdiscEngine
from repro.net.topology import Topology
from repro.telemetry.audit import AuditKind
from repro.telemetry.instrument import (
    Telemetry,
    collect_simulator,
    default_telemetry,
)
from repro.telemetry.tracing import TraceContext
from repro.util.clock import SimClock
from repro.util.errors import NetworkError
from repro.util.ids import spawn_seed
from repro.util.ring import RingBuffer

#: Default bound on the event trace and the packet log, each.
DEFAULT_TRACE_LIMIT = 65536


class Node:
    """Behaviour attached to a topology node.

    Subclasses override :meth:`handle_packet` (dataplane) and
    :meth:`handle_control` (out-of-band channel).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None  # bound by Simulator.bind

    def on_bind(self, sim: "Simulator") -> None:
        """Hook called when the node is attached to a simulator."""

    def handle_packet(self, packet: Packet, in_port: int) -> None:
        """Receive a dataplane packet on ``in_port``. Default: drop."""

    def handle_control(self, sender: str, message: Any) -> None:
        """Receive an out-of-band control message. Default: drop."""


# Events live on the heap as bare (time, seq, action) tuples: seq is
# unique, so comparisons resolve before reaching the (incomparable)
# action, and tuple ordering is several times cheaper than a dataclass
# __lt__ on the ~1 heap op per simulated event the run loop performs.


@dataclass(frozen=True)
class PacketLogEntry:
    """One transmission, recorded when tracing is enabled."""

    time: float
    from_node: str
    out_port: int
    to_node: str
    in_port: int
    wire_length: int
    five_tuple: tuple
    summary: str


@dataclass
class SimStats:
    """Aggregate counters the benchmarks read off after a run."""

    packets_transmitted: int = 0
    bytes_transmitted: int = 0
    packets_dropped: int = 0
    control_messages: int = 0
    control_bytes: int = 0
    control_dropped: int = 0
    events_processed: int = 0
    dropped_trace_entries: int = 0
    #: Lost transmit attempts recovered by a sender's local resend
    #: budget (LinkGuardian-style); not counted in packets_dropped.
    local_resends: int = 0
    #: Tail drops at a full egress queue (repro.net.qdisc); also
    #: counted in packets_dropped (reason ``queue_full``).
    queue_drops: int = 0
    #: Packets ECN-marked above an egress queue's marking threshold.
    ecn_marked: int = 0
    #: PFC-style pause frames sent upstream (resumes not counted).
    pause_frames: int = 0
    #: Link-local recovery retransmissions (a subset of
    #: local_resends: the attempts driven by a RecoveryConfig).
    recovery_retransmits: int = 0
    #: Packets delayed by in-order release behind a recovered packet.
    recovery_held: int = 0

    def merge(self, other: "SimStats") -> "SimStats":
        """Combine two shards' stats. Every field is a pure per-shard
        count (no averages, no shared globals), so merge is field-wise
        addition — commutative and associative, which is what lets the
        sharded runner fold any number of shards in any grouping and
        get the same totals."""
        return SimStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def as_dict(self) -> Dict[str, int]:
        """Picklable/JSON export form (field order is declaration order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Simulator:
    """Event loop binding node behaviours onto a :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        control_latency_s: float = 50e-6,
        seed: int = 0,
        trace_limit: int = DEFAULT_TRACE_LIMIT,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.topology = topology
        self.clock = SimClock()
        self.stats = SimStats()
        self.control_latency_s = control_latency_s
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        self.telemetry.bind_clock(self.clock)
        # Loss draws come from one independent stream per *directed*
        # link, derived by hashing (seed, "loss", "node:port"). A
        # directed link's transmissions happen in its sender's causal
        # order no matter how the fabric is partitioned, so the draw
        # sequence — hence every drop decision — is invariant under
        # sharding (a single shared sequential RNG would entangle
        # unrelated links through global event interleaving).
        self.seed = seed
        self._loss_streams: Dict[str, random.Random] = {}
        self._nodes: Dict[str, Node] = {}
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._barrier_hooks: List[Callable[[], None]] = []
        self._trace: RingBuffer[Tuple[float, str, str]] = RingBuffer(trace_limit)
        self.trace_enabled = False
        self.packet_log: RingBuffer[PacketLogEntry] = RingBuffer(trace_limit)
        # Fault-injection hook (see repro.faults); None = no faults, and
        # the dataplane fast path costs exactly one is-None branch.
        self.faults = None
        # Egress-queue engine (see repro.net.qdisc); created lazily on
        # the first transmit over a link carrying a QueueConfig, so
        # queue-less worlds pay one is-None branch and nothing else.
        self._qdisc_engine: Optional[QdiscEngine] = None
        # Flight recorder (see repro.telemetry.timeseries); None = no
        # sampling. Ticks are virtual — fired by the run loop before
        # the first event at or past each tick time — so the recorder
        # never perturbs the event queue or the processed count.
        self._recorder = None

    def install_faults(self, hook) -> None:
        """Install a fault-injection hook (duck-typed; see
        :class:`~repro.faults.injector.FaultInjector`). The hook is
        consulted on every transmission, delivery and control send."""
        if self.faults is not None:
            raise NetworkError("a fault hook is already installed")
        self.faults = hook

    def install_recorder(self, recorder) -> None:
        """Install a flight recorder (see
        :func:`repro.telemetry.timeseries.install_recorder`)."""
        if self._recorder is not None:
            raise NetworkError("a flight recorder is already installed")
        self._recorder = recorder

    @property
    def recorder(self):
        return self._recorder

    def pump_recorder(self) -> None:
        """Fire every recorder tick due at or before the current clock.

        The run loop pumps automatically; campaign code calls this
        around out-of-loop mutations (drain flushes, barrier sweeps) so
        their deltas land in the window the monolith would put them in.
        """
        if self._recorder is not None:
            self._recorder.advance_to(self.clock.now)

    def recorder_runtime(self) -> Tuple[float, float]:
        """``(backlog, busy_seconds)`` for the runtime export section."""
        return (float(len(self._queue)), 0.0)

    # --- setup ------------------------------------------------------------

    def bind(self, node: Node) -> None:
        """Attach a behaviour object to its topology node."""
        if not self.topology.has_node(node.name):
            raise NetworkError(f"topology has no node named {node.name!r}")
        if node.name in self._nodes:
            raise NetworkError(f"node {node.name!r} already bound")
        node.sim = self
        self._nodes[node.name] = node
        node.on_bind(self)

    def node(self, name: str) -> Node:
        behaviour = self._nodes.get(name)
        if behaviour is None:
            raise NetworkError(f"no behaviour bound for node {name!r}")
        return behaviour

    @property
    def bound_nodes(self) -> List[str]:
        return sorted(self._nodes)

    # --- event queue --------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise NetworkError(f"cannot schedule in the past (delay {delay})")
        self._seq += 1
        heapq.heappush(
            self._queue, (self.clock.now + delay, self._seq, action)
        )

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``time`` (≥ now)."""
        self.schedule(time - self.clock.now, action)

    def owns(self, name: str) -> bool:
        """Whether this simulator is responsible for node ``name``.

        The monolithic simulator owns everything; a
        :class:`~repro.net.sharding.ShardSimulator` owns only its
        partition's nodes. Scenario code and node behaviours consult
        this to stay single-writer under sharding (a foreign replica
        of a host must not originate the traffic its owner sends).
        """
        return True

    def schedule_on(
        self, node_name: str, delay: float, action: Callable[[], None]
    ) -> None:
        """Schedule scenario-driving work attributed to ``node_name``.

        Same as :meth:`schedule` on the monolith; under sharding the
        action runs only in the shard that owns ``node_name``, so a
        scripted send fires exactly once no matter how many shards
        replay the scenario build.
        """
        self.schedule(delay, action)

    def schedule_replicated(
        self, owner_hint: str, delay: float, action: Callable[[], None]
    ) -> None:
        """Schedule state-sync work that must run in *every* shard.

        ``owner_hint`` names the node whose shard counts the event in
        ``SimStats.events_processed`` (all other shards process it
        uncounted), keeping the merged count invariant under
        re-partitioning. The fault injector uses this for activations:
        a link-down toggle must flip state wherever either endpoint
        lives, but is one logical event.
        """
        self.schedule(delay, action)

    def run_barrier_hooks(self) -> None:
        """Fire every registered barrier hook (window boundaries)."""
        for hook in self._barrier_hooks:
            hook()

    def add_barrier_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook run at every window barrier.

        The monolithic engine has no windows, so hooks registered here
        never fire in a plain :meth:`run` — but node behaviours (epoch
        batchers, telemetry flushers) register unconditionally and get
        barrier-synced sealing for free when the same scenario runs
        under :class:`~repro.net.sharding.ShardSimulator`.
        """
        self._barrier_hooks.append(hook)

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` bounds simulated time; ``max_events`` guards against
        runaway loops in buggy node behaviours.
        """
        processed = 0
        recorder = self._recorder
        due = recorder.next_tick_s if recorder is not None else float("inf")
        try:
            while self._queue and processed < max_events:
                if until is not None and self._queue[0][0] > until:
                    break
                time, _seq, action = heapq.heappop(self._queue)
                if time >= due:
                    # A tick at exactly `time` fires first: frame w
                    # covers [w·Δ, (w+1)·Δ), so this event's effects
                    # belong to the next window.
                    recorder.advance_to(time)
                    due = recorder.next_tick_s
                self.clock.advance_to(time)
                action()
                processed += 1
            if until is not None:
                self.clock.advance_to(until)
                if recorder is not None:
                    recorder.advance_to(until)
        finally:
            # Account for and export what DID happen even when a node
            # behaviour raised mid-event: a crashed run must still
            # leave a usable trace on disk. Flush errors are swallowed
            # so they can never mask the original exception.
            self.stats.events_processed += processed
            if self.telemetry.active:
                collect_simulator(self.telemetry, self)
            try:
                self.telemetry.flush()
            except Exception:
                pass
        return processed

    # --- dataplane ----------------------------------------------------------

    def transmit(
        self,
        from_node: str,
        out_port: int,
        packet: Packet,
        resend_budget: int = 0,
    ) -> bool:
        """Send ``packet`` out of ``from_node``'s ``out_port``.

        Returns ``False`` (and counts a drop) when the port is unwired,
        mirroring a real switch forwarding to a dark port.

        ``resend_budget`` is a LinkGuardian-style local recovery knob:
        a sender that can see the loss (link-level ack/corruption
        detection) immediately re-offers the packet up to that many
        times. Resent losses count in ``SimStats.local_resends``, not
        ``packets_dropped``; a down link is never retryable.
        """
        link = self.topology.link_at(from_node, out_port)
        if link is None:
            self._count_drop(from_node, "dark_port", packet)
            self._note(f"{from_node} dropped {packet!r}: port {out_port} unwired")
            return False
        if link.queue is not None:
            # Queued link: contention, congestion signals and recovery
            # live in the qdisc engine (repro.net.qdisc).
            return self._qdisc().offer(
                from_node, out_port, link, packet, resend_budget
            )
        peer, peer_port = link.other_end(from_node)
        faults = self.faults
        attempts = 0
        while True:
            reason: Optional[str] = None
            outgoing = packet
            if faults is not None:
                reason, outgoing = faults.filter_transmit(
                    from_node, peer, packet
                )
            if (
                reason is None
                and link.drop_rate > 0
                and self._loss_stream(from_node, out_port).random()
                < link.drop_rate
            ):
                reason = "link_loss"
            if reason is None:
                packet = outgoing
                break
            if reason == "fault_link_down" or attempts >= resend_budget:
                self._count_drop(from_node, reason, packet)
                self._note(
                    f"{from_node}:{out_port} lost {packet!r} ({reason})"
                )
                return False
            attempts += 1
            self.stats.local_resends += 1
            self._note(
                f"{from_node}:{out_port} resending {packet!r} after {reason}"
            )
        delay = link.transit_delay(packet.wire_length)
        self.stats.packets_transmitted += 1
        self.stats.bytes_transmitted += packet.wire_length
        tel = self.telemetry
        if packet.trace is not None:
            # Each link crossing advances the causal context: hop+1,
            # the forwarding node appended to the lineage.
            packet = packet.with_trace(packet.trace.hopped(from_node))
        if tel.active:
            link_label = f"{from_node}:{out_port}->{peer}:{peer_port}"
            tel.counter("net.link.tx_packets", link=link_label).inc()
            tel.counter("net.link.tx_bytes", link=link_label).inc(
                packet.wire_length
            )
            if packet.trace is not None:
                tel.audit_event(
                    AuditKind.PACKET_FORWARDED,
                    from_node,
                    trace=packet.trace,
                    link=link_label,
                )
            if attempts:
                tel.audit_event(
                    AuditKind.RECOVERY_RESENT,
                    from_node,
                    trace=packet.trace,
                    attempts=attempts,
                    link=link_label,
                )
        if self.trace_enabled:
            # Building the note (a Packet repr) is the expensive part;
            # gate it here rather than inside _note.
            self._note(
                f"{from_node}:{out_port} -> {peer}:{peer_port} {packet!r}"
            )
            self._log_transmission(
                from_node, out_port, peer, peer_port, packet
            )

        self._schedule_packet_delivery(peer, peer_port, packet, delay)
        return True

    def _log_transmission(
        self,
        from_node: str,
        out_port: int,
        peer: str,
        peer_port: int,
        packet: Packet,
    ) -> None:
        """Append one packet-log entry (caller gates on trace_enabled)."""
        if self.packet_log.append(PacketLogEntry(
            time=self.clock.now,
            from_node=from_node,
            out_port=out_port,
            to_node=peer,
            in_port=peer_port,
            wire_length=packet.wire_length,
            five_tuple=packet.five_tuple,
            summary=repr(packet),
        )):
            self.stats.dropped_trace_entries += 1

    # --- egress queues (repro.net.qdisc) ------------------------------------

    def _qdisc(self) -> QdiscEngine:
        engine = self._qdisc_engine
        if engine is None:
            engine = QdiscEngine(self)
            self._qdisc_engine = engine
        return engine

    def qdisc_queue_depths(self) -> List[Tuple[str, int, int]]:
        """Sorted ``(node, port, depth_bytes)`` for every egress queue
        this simulator owns — the flight-recorder probe input."""
        if self._qdisc_engine is None:
            return []
        return self._qdisc_engine.owned_depths()

    def queue_depth_bytes(self, node: str, port: int) -> int:
        """Current buffered bytes on one egress queue (0 if none)."""
        if self._qdisc_engine is None:
            return 0
        queue = self._qdisc_engine.queues.get((node, port))
        return queue.depth_bytes if queue is not None else 0

    def _schedule_pause_delivery(
        self,
        to_node: str,
        to_port: int,
        paused: bool,
        from_node: str,
        delay: float,
    ) -> None:
        """Arrange for a PFC pause/resume frame to reach ``to_node``.

        Split out like :meth:`_schedule_packet_delivery` so the
        sharded engine can route frames aimed at foreign-owned
        upstream nodes through the barrier outboxes.
        """
        self.schedule(
            delay,
            lambda: self._deliver_pause(to_node, to_port, paused, from_node),
        )

    def _deliver_pause(
        self, to_node: str, to_port: int, paused: bool, from_node: str
    ) -> None:
        self._qdisc().on_pause(to_node, to_port, paused, from_node)

    def _loss_stream(self, from_node: str, out_port: int) -> random.Random:
        """The loss RNG for one directed link (lazily spawned)."""
        key = f"{from_node}:{out_port}"
        stream = self._loss_streams.get(key)
        if stream is None:
            stream = random.Random(spawn_seed(self.seed, "loss", key))
            self._loss_streams[key] = stream
        return stream

    def _schedule_packet_delivery(
        self, peer: str, peer_port: int, packet: Packet, delay: float
    ) -> None:
        """Arrange for ``packet`` to hit ``peer`` after ``delay``.

        Split out of :meth:`transmit` so the sharded engine can route
        deliveries whose target lives in another shard through the
        barrier outboxes instead of the local queue.
        """
        self.schedule(delay, lambda: self._deliver_packet(peer, peer_port, packet))

    def _deliver_packet(self, peer: str, peer_port: int, packet: Packet) -> None:
        behaviour = self._nodes.get(peer)
        if behaviour is None:
            self._count_drop(peer, "unbound_node", packet)
            self._note(f"{peer} has no behaviour; dropped {packet!r}")
            return
        if self.faults is not None and self.faults.node_is_down(peer):
            self._count_drop(peer, "node_down", packet)
            self._note(f"{peer} is down; dropped {packet!r}")
            return
        behaviour.handle_packet(packet, peer_port)

    def drop(self, at_node: str, packet: Packet, reason: str) -> None:
        """Record an intentional drop (policy decision, TTL expiry...)."""
        self._count_drop(at_node, "policy", packet)
        self._note(f"{at_node} dropped {packet!r}: {reason}")

    def _count_drop(
        self, at_node: str, reason: str, packet: Optional[Packet] = None
    ) -> None:
        self.stats.packets_dropped += 1
        tel = self.telemetry
        if tel.active:
            tel.counter("net.link.dropped", node=at_node, reason=reason).inc()
            if packet is not None and packet.trace is not None:
                tel.audit_event(
                    AuditKind.PACKET_DROPPED,
                    at_node,
                    trace=packet.trace,
                    reason=reason,
                )

    # --- control channel ------------------------------------------------------

    def send_control(
        self,
        sender: str,
        recipient: str,
        message: Any,
        size_hint: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> bool:
        """Deliver an out-of-band message after the control-plane latency.

        Returns ``False`` (and counts a control drop, symmetrically
        with dataplane drops) when the recipient has no behaviour bound
        at send *or* at delivery time — an evidence stream aimed at an
        absent appraiser must be observable as loss, not an exception
        and not silence.
        """
        faults = self.faults
        if faults is not None:
            if faults.node_is_down(recipient):
                self._count_control_drop(recipient, "node_down", trace=trace)
                self._note(
                    f"control {sender} -> {recipient}: dropped (node down)"
                )
                return False
            reason, message = faults.filter_control(
                sender, recipient, message, trace
            )
            if reason is not None:
                self._count_control_drop(recipient, reason, trace=trace)
                self._note(
                    f"control {sender} -> {recipient}: dropped ({reason})"
                )
                return False
        if not self._is_bound_anywhere(recipient):
            self._count_control_drop(recipient, "unbound_at_send", trace=trace)
            self._note(
                f"control {sender} -> {recipient}: dropped (no behaviour bound)"
            )
            return False
        self.stats.control_messages += 1
        self.stats.control_bytes += size_hint
        tel = self.telemetry
        if tel.active:
            tel.counter(
                "net.control.messages", sender=sender, recipient=recipient
            ).inc()
            tel.counter(
                "net.control.bytes", sender=sender, recipient=recipient
            ).inc(size_hint)
            if trace is not None:
                tel.audit_event(
                    AuditKind.CONTROL_SENT,
                    sender,
                    trace=trace,
                    recipient=recipient,
                    message=type(message).__name__,
                )
        self._note(f"control {sender} -> {recipient}: {type(message).__name__}")
        self._schedule_control_delivery(sender, recipient, message, trace)
        return True

    def _is_bound_anywhere(self, name: str) -> bool:
        """Whether ``name`` has a behaviour in this world (any shard)."""
        return name in self._nodes

    def _schedule_control_delivery(
        self,
        sender: str,
        recipient: str,
        message: Any,
        trace: Optional[TraceContext],
    ) -> None:
        """Arrange control delivery after the control-plane latency.

        Split out of :meth:`send_control` for the same reason as
        :meth:`_schedule_packet_delivery`: a sharded engine overrides
        this to route cross-shard messages through barrier outboxes.
        """
        self.schedule(
            self.control_latency_s,
            lambda: self._deliver_control(sender, recipient, message, trace),
        )

    def _deliver_control(
        self,
        sender: str,
        recipient: str,
        message: Any,
        trace: Optional[TraceContext],
    ) -> None:
        behaviour = self._nodes.get(recipient)
        if behaviour is None:
            self._count_control_drop(
                recipient, "unbound_at_delivery", trace=trace
            )
            self._note(
                f"control {sender} -> {recipient}: dropped at delivery"
            )
            return
        if self.faults is not None and self.faults.node_is_down(recipient):
            self._count_control_drop(
                recipient, "node_down_at_delivery", trace=trace
            )
            self._note(
                f"control {sender} -> {recipient}: dropped (node down)"
            )
            return
        behaviour.handle_control(sender, message)

    def _count_control_drop(
        self,
        recipient: str,
        reason: str,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.stats.control_dropped += 1
        tel = self.telemetry
        if tel.active:
            tel.counter(
                "net.control.dropped", recipient=recipient, reason=reason
            ).inc()
            tel.audit_event(
                AuditKind.CONTROL_DROPPED,
                recipient,
                trace=trace,
                reason=reason,
            )

    # --- tracing ------------------------------------------------------------

    def _note(self, text: str) -> None:
        if self.trace_enabled:
            if self._trace.append((self.clock.now, "event", text)):
                self.stats.dropped_trace_entries += 1

    @property
    def trace(self) -> List[Tuple[float, str, str]]:
        return self._trace.to_list()
