"""Packet-trace analysis over the simulator's structured log.

With ``sim.trace_enabled = True`` the simulator records one
:class:`~repro.net.simulator.PacketLogEntry` per transmission. This
module answers the questions the attestation story keeps asking of a
run: which path did a flow actually take, who transmitted how much,
and what happened in time order — the observational ground truth that
appraised evidence claims to describe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.net.simulator import PacketLogEntry, Simulator


@dataclass
class TraceAnalysis:
    """A view over one run's packet log.

    The log is a bounded ring buffer: under heavy traffic the oldest
    entries are evicted. ``dropped_entries`` carries the eviction
    count so an analysis over a truncated log says so instead of
    passing a partial view off as the whole run.
    """

    entries: List[PacketLogEntry]
    dropped_entries: int = 0

    @classmethod
    def of(cls, sim: Simulator) -> "TraceAnalysis":
        return cls(
            entries=list(sim.packet_log),
            dropped_entries=sim.packet_log.dropped,
        )

    @property
    def truncated(self) -> bool:
        """True when the underlying ring buffer evicted entries."""
        return self.dropped_entries > 0

    # --- flows ------------------------------------------------------------

    def flows(self) -> List[tuple]:
        """Distinct five-tuples seen, in first-seen order."""
        seen: List[tuple] = []
        for entry in self.entries:
            if entry.five_tuple not in seen:
                seen.append(entry.five_tuple)
        return seen

    def path_of(self, five_tuple: tuple) -> List[str]:
        """Node path one flow took (first packet's transmissions)."""
        hops: List[str] = []
        for entry in self.entries:
            if entry.five_tuple != five_tuple:
                continue
            if not hops:
                hops.append(entry.from_node)
            if hops[-1] == entry.from_node:
                hops.append(entry.to_node)
        return hops

    def packets_between(self, from_node: str, to_node: str) -> int:
        return sum(
            1
            for entry in self.entries
            if entry.from_node == from_node and entry.to_node == to_node
        )

    # --- volumes -----------------------------------------------------------

    def bytes_by_node(self) -> Dict[str, int]:
        """Bytes transmitted per node."""
        totals: Counter = Counter()
        for entry in self.entries:
            totals[entry.from_node] += entry.wire_length
        return dict(totals)

    def growth_along_path(self, five_tuple: tuple) -> List[int]:
        """Per-hop wire lengths of a flow's first packet.

        In-band evidence makes packets *grow* hop by hop — this makes
        that visible: a strictly increasing sequence is the signature
        of in-band attestation.
        """
        lengths: List[int] = []
        seen_links: set = set()
        for entry in self.entries:
            if entry.five_tuple != five_tuple:
                continue
            link = (entry.from_node, entry.to_node)
            if link in seen_links:
                continue
            seen_links.add(link)
            lengths.append(entry.wire_length)
        return lengths

    # --- rendering ------------------------------------------------------------

    def timeline(self, limit: int = 50) -> str:
        lines = []
        if self.truncated:
            lines.append(
                f"(truncated: {self.dropped_entries} older entries evicted)"
            )
        for entry in self.entries[:limit]:
            lines.append(
                f"{entry.time * 1e6:10.2f}us  "
                f"{entry.from_node}:{entry.out_port} -> "
                f"{entry.to_node}:{entry.in_port}  "
                f"{entry.wire_length:4d}B  {entry.summary}"
            )
        if len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)
