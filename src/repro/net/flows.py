"""Workload generation: flows of packets between hosts.

Benchmarks need repeatable traffic mixes (legitimate flows, attack
flows, background noise). A :class:`Flow` describes one unidirectional
packet train; :class:`FlowGenerator` schedules packet send events onto
a simulator deterministically (seeded ``random.Random``, never the
global RNG).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.headers import RaShimHeader
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.util.errors import NetworkError


@dataclass
class Flow:
    """One unidirectional UDP packet train between two hosts."""

    src_host: str
    dst_host: str
    src_port: int
    dst_port: int
    packet_count: int
    payload_size: int = 64
    interval_s: float = 1e-4
    start_s: float = 0.0
    label: str = ""
    jitter_s: float = 0.0
    ra_shim: Optional[RaShimHeader] = None

    def __post_init__(self) -> None:
        if self.packet_count < 0:
            raise NetworkError(f"negative packet count in flow {self.label!r}")
        if self.interval_s < 0 or self.start_s < 0 or self.jitter_s < 0:
            raise NetworkError(f"negative timing parameter in flow {self.label!r}")


class FlowGenerator:
    """Schedules flows onto a simulator with deterministic timing."""

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self._rng = random.Random(seed)
        self.sent: Dict[str, int] = {}

    def schedule_flow(self, flow: Flow) -> None:
        """Queue all of ``flow``'s packet send events."""
        src = self.sim.node(flow.src_host)
        dst = self.sim.node(flow.dst_host)
        if not isinstance(src, Host) or not isinstance(dst, Host):
            raise NetworkError(
                f"flow endpoints must be Hosts: {flow.src_host!r}, {flow.dst_host!r}"
            )
        label = flow.label or f"{flow.src_host}->{flow.dst_host}:{flow.dst_port}"
        self.sent.setdefault(label, 0)
        payload = bytes(flow.payload_size)
        send_time = flow.start_s
        for _ in range(flow.packet_count):
            if flow.jitter_s:
                send_time += self._rng.uniform(0, flow.jitter_s)

            def fire(at_src: Host = src, at_dst: Host = dst, lbl: str = label) -> None:
                at_src.send_udp(
                    dst_mac=at_dst.mac,
                    dst_ip=at_dst.ip,
                    src_port=flow.src_port,
                    dst_port=flow.dst_port,
                    payload=payload,
                    ra_shim=flow.ra_shim,
                )
                self.sent[lbl] += 1

            delay = max(0.0, send_time - self.sim.clock.now)
            self.sim.schedule(delay, fire)
            send_time += flow.interval_s

    def schedule_all(self, flows: List[Flow]) -> None:
        for flow in flows:
            self.schedule_flow(flow)

    def total_sent(self) -> int:
        return sum(self.sent.values())
