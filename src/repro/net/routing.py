"""Shortest-path and multipath routing over topologies.

Control-plane helpers: computes paths, next-hop tables, and
equal-cost next-hop *sets* that the P4Runtime-style controller
installs into switch forwarding tables. Dijkstra over link latency;
lexicographic tie-break on the path keeps results deterministic.

Multipath building blocks (ECMP / flowlet) live here too, because
they are pure control-plane math: a process-stable flow hash, a
stateless :class:`EcmpSelector`, and a :class:`FlowletTable` that
re-picks a member after a configurable idle gap or packet budget.
All selection is seeded and hash-based — the same seed reproduces
the same member choices in any process, which is what keeps sharded
runs byte-identical (docs/SHARDING.md) and lets the control plane
*predict* the exact path a stateless-ECMP flow will take
(:func:`predict_multipath_path`).
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import heapq

from repro.net.topology import Topology
from repro.util.errors import NetworkError

# Two equal-cost paths can accumulate the same latency in different
# addition orders; real cost differences are at least one link's
# latency quantum, far above this relative tolerance.
_COST_REL_TOL = 1e-9


class RoutingMode(enum.Enum):
    """How a switch picks among equal-cost next-hop members."""

    #: One fixed member per flow five-tuple — stateless, predictable.
    ECMP = "ecmp"
    #: Per-flowlet member: re-pick after an idle gap / packet budget.
    FLOWLET = "flowlet"


def shortest_path(topology: Topology, src: str, dst: str) -> List[str]:
    """Return the lowest-latency node path from ``src`` to ``dst``.

    Ties break lexicographically on the path so repeated runs agree.
    Raises :class:`NetworkError` when no path exists.
    """
    for name in (src, dst):
        if not topology.has_node(name):
            raise NetworkError(f"unknown node {name!r}")
    if src == dst:
        return [src]
    # (cost, path) heap; the path tuple itself is the tie-break. An
    # equal-cost rediscovery is pushed too (<=, not <): the heap then
    # pops the lexicographically smallest path among equals first,
    # which is what pins the tie-break.
    heap: List[Tuple[float, Tuple[str, ...]]] = [(0.0, (src,))]
    best: Dict[str, float] = {src: 0.0}
    while heap:
        cost, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        if cost > best.get(node, float("inf")):
            continue
        for port in topology.ports_of(node):
            link = topology.link_at(node, port)
            peer, _ = link.other_end(node)
            if peer in path:
                continue
            new_cost = cost + link.latency_s
            if new_cost <= best.get(peer, float("inf")):
                best[peer] = new_cost
                heapq.heappush(heap, (new_cost, path + (peer,)))
    raise NetworkError(f"no path from {src!r} to {dst!r}")


def path_ports(topology: Topology, path: List[str]) -> List[Tuple[str, int]]:
    """For each node on ``path`` except the last, the egress port to take."""
    hops: List[Tuple[str, int]] = []
    for node, nxt in zip(path, path[1:]):
        hops.append((node, topology.port_towards(node, nxt)))
    return hops


def all_pairs_next_hop(topology: Topology) -> Dict[Tuple[str, str], int]:
    """Map (node, destination) -> egress port, for every switch.

    This is what the controller walks when populating single-path
    forwarding tables: for each destination host, each switch learns
    the port towards it along the shortest path.
    """
    table: Dict[Tuple[str, str], int] = {}
    names = topology.node_names
    for dst in names:
        for src in names:
            if src == dst:
                continue
            try:
                path = shortest_path(topology, src, dst)
            except NetworkError:
                continue
            table[(src, dst)] = topology.port_towards(src, path[1])
    return table


def _adjacency(
    topology: Topology,
) -> Dict[str, List[Tuple[int, str, float]]]:
    """node -> sorted [(port, peer, latency)] built once per call.

    ``Topology.ports_of`` scans the whole port map; inside a Dijkstra
    inner loop over hundreds of destinations that is quadratic, so
    multipath computation works off this local adjacency instead.
    """
    adj: Dict[str, List[Tuple[int, str, float]]] = {
        name: [] for name in topology.node_names
    }
    for link in topology.links:
        adj[link.node_a].append((link.port_a, link.node_b, link.latency_s))
        adj[link.node_b].append((link.port_b, link.node_a, link.latency_s))
    for entries in adj.values():
        entries.sort()
    return adj


def all_pairs_next_hops(
    topology: Topology,
    destinations: Optional[Iterable[str]] = None,
) -> Dict[Tuple[str, str], Tuple[int, ...]]:
    """Map (node, destination) -> sorted equal-cost egress port set.

    One reverse Dijkstra per destination (not per pair): a port is a
    member when the link it starts lands on a minimum-latency path to
    the destination. Costs compare with a relative tolerance so that
    equal-cost paths summed in different orders still tie. Nodes with
    no path to a destination simply have no entry for it.
    """
    adj = _adjacency(topology)
    if destinations is None:
        dsts = list(topology.node_names)
    else:
        dsts = list(destinations)
        for name in dsts:
            if not topology.has_node(name):
                raise NetworkError(f"unknown destination {name!r}")
    table: Dict[Tuple[str, str], Tuple[int, ...]] = {}
    for dst in dsts:
        dist: Dict[str, float] = {dst: 0.0}
        heap: List[Tuple[float, str]] = [(0.0, dst)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > dist.get(node, float("inf")):
                continue
            for _port, peer, latency in adj[node]:
                new_cost = cost + latency
                if new_cost < dist.get(peer, float("inf")):
                    dist[peer] = new_cost
                    heapq.heappush(heap, (new_cost, peer))
        for node, cost in dist.items():
            if node == dst:
                continue
            members = tuple(
                port
                for port, peer, latency in adj[node]
                if peer in dist
                and math.isclose(
                    dist[peer] + latency, cost, rel_tol=_COST_REL_TOL
                )
            )
            if members:
                table[(node, dst)] = members
    return table


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_flow_hash(seed: int, *fields: object) -> int:
    """64-bit FNV-1a over the seed and flow-key fields.

    Process-stable on purpose (never Python's randomized ``hash()``):
    member selection must reproduce across interpreter restarts and
    multiprocessing workers for sharded determinism.
    """
    h = _FNV_OFFSET ^ (seed & _MASK64)
    for field in fields:
        for byte in str(field).encode("utf-8"):
            h = ((h ^ byte) * _FNV_PRIME) & _MASK64
        # Field separator so ("ab", "c") never collides with ("a", "bc").
        h = ((h ^ 0x1F) * _FNV_PRIME) & _MASK64
    return h


class EcmpSelector:
    """Stateless seeded ECMP: one fixed member per flow key.

    Two selectors with the same seed agree everywhere, so the control
    plane can precompute exactly which member a flow will take.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def pick(self, members: Tuple[int, ...], flow_key: tuple) -> int:
        """Return the member port this flow key hashes to."""
        if not members:
            raise NetworkError("cannot select from an empty member set")
        return members[stable_flow_hash(self.seed, *flow_key) % len(members)]


class FlowletTable:
    """Flowlet switching: re-pick a member after an idle gap.

    A *flowlet* is a burst of packets from one flow separated from
    the next burst by more than ``idle_gap_s`` of simulated time (or,
    when ``flowlet_n_packets`` is non-zero, capped at that many
    packets). Within a flowlet the member choice is pinned; at each
    flowlet boundary the serial number bumps and the hash re-picks,
    spreading one flow's bursts across members while keeping each
    burst in-order on a single path. Selection is a pure function of
    (seed, flow key, serial) so shards replay identically.

    Congestion awareness: a caller that sees a congestion signal for
    the flow (an ECN-marked packet, a deep local queue) passes
    ``congested=True`` to :meth:`pick`, which forces a flowlet
    boundary — the burst ends early and the re-pick hash moves the
    flow off the hot path. A per-flow cooldown of ``idle_gap_s``
    between congestion-driven re-picks stops one marked burst from
    thrashing the path every packet. The signal only changes *when*
    the serial bumps, never *how* the member is chosen, so the
    determinism contract is unchanged.
    """

    def __init__(
        self,
        seed: int,
        idle_gap_s: float = 50e-6,
        flowlet_n_packets: int = 0,
    ) -> None:
        if idle_gap_s <= 0:
            raise NetworkError("flowlet idle gap must be positive")
        if flowlet_n_packets < 0:
            raise NetworkError("flowlet packet budget cannot be negative")
        self.seed = seed
        self.idle_gap_s = idle_gap_s
        self.flowlet_n_packets = flowlet_n_packets
        self.repicks = 0
        #: Boundaries forced by the congestion signal alone (a subset
        #: of ``repicks``): the campaign-visible evidence that
        #: congestion actually moved flows.
        self.congestion_repicks = 0
        # flow key -> [last_seen_s, packets_in_flowlet, serial,
        #              last_congestion_repick_s]
        self._state: Dict[tuple, List[float]] = {}

    def serial_of(self, flow_key: tuple) -> int:
        """Current flowlet serial for a flow key (0 before first packet)."""
        state = self._state.get(flow_key)
        return int(state[2]) if state is not None else 0

    def pick(
        self,
        members: Tuple[int, ...],
        flow_key: tuple,
        now_s: float,
        congested: bool = False,
    ) -> int:
        """Return the member for this packet, rotating at boundaries."""
        if not members:
            raise NetworkError("cannot select from an empty member set")
        state = self._state.get(flow_key)
        if state is None:
            state = [now_s, 0.0, 0.0, float("-inf")]
            self._state[flow_key] = state
        else:
            expired = now_s - state[0] > self.idle_gap_s
            exhausted = (
                self.flowlet_n_packets > 0
                and state[1] >= self.flowlet_n_packets
            )
            nudged = (
                congested
                and now_s - state[3] > self.idle_gap_s
            )
            if expired or exhausted or nudged:
                state[2] += 1
                state[1] = 0.0
                self.repicks += 1
                if nudged:
                    state[3] = now_s
                    if not (expired or exhausted):
                        self.congestion_repicks += 1
            state[0] = now_s
        state[1] += 1
        index = stable_flow_hash(
            self.seed, *flow_key, int(state[2])
        ) % len(members)
        return members[index]


def predict_multipath_path(
    topology: Topology,
    next_hops: Dict[Tuple[str, str], Tuple[int, ...]],
    src: str,
    dst: str,
    flow_key: tuple,
    selector_for: Callable[[str], EcmpSelector],
) -> List[str]:
    """Walk the exact node path a stateless-ECMP flow will take.

    ``selector_for(node)`` must return a selector seeded identically
    to the one the switch itself uses; because stateless ECMP is a
    pure hash, the control plane can then compile per-flow path
    policies (UC1 path attestation) for multipath fabrics without
    ever sending a probe.
    """
    path = [src]
    node = src
    limit = len(topology.node_names) + 1
    while node != dst:
        members = next_hops.get((node, dst))
        if not members:
            raise NetworkError(f"no next hop from {node!r} to {dst!r}")
        if len(members) == 1:
            port = members[0]
        else:
            port = selector_for(node).pick(members, flow_key)
        node, _ = topology.neighbor(node, port)
        path.append(node)
        if len(path) > limit:
            raise NetworkError(
                f"next-hop walk from {src!r} to {dst!r} loops"
            )
    return path
