"""Shortest-path routing over topologies.

Control-plane helper: computes paths and next-hop tables that the
P4Runtime-style controller installs into switch forwarding tables.
Dijkstra over link latency; BFS tie-break on node name keeps results
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.net.topology import Topology
from repro.util.errors import NetworkError


def shortest_path(topology: Topology, src: str, dst: str) -> List[str]:
    """Return the lowest-latency node path from ``src`` to ``dst``.

    Ties break lexicographically on the path so repeated runs agree.
    Raises :class:`NetworkError` when no path exists.
    """
    for name in (src, dst):
        if not topology.has_node(name):
            raise NetworkError(f"unknown node {name!r}")
    if src == dst:
        return [src]
    # (cost, path) heap; the path tuple itself is the tie-break.
    heap: List[Tuple[float, Tuple[str, ...]]] = [(0.0, (src,))]
    best: Dict[str, float] = {src: 0.0}
    while heap:
        cost, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        if cost > best.get(node, float("inf")):
            continue
        for port in topology.ports_of(node):
            link = topology.link_at(node, port)
            peer, _ = link.other_end(node)
            if peer in path:
                continue
            new_cost = cost + link.latency_s
            if new_cost < best.get(peer, float("inf")) or (
                new_cost == best.get(peer, float("inf"))
            ):
                if new_cost <= best.get(peer, float("inf")):
                    best[peer] = new_cost
                    heapq.heappush(heap, (new_cost, path + (peer,)))
    raise NetworkError(f"no path from {src!r} to {dst!r}")


def path_ports(topology: Topology, path: List[str]) -> List[Tuple[str, int]]:
    """For each node on ``path`` except the last, the egress port to take."""
    hops: List[Tuple[str, int]] = []
    for node, nxt in zip(path, path[1:]):
        hops.append((node, topology.port_towards(node, nxt)))
    return hops


def all_pairs_next_hop(topology: Topology) -> Dict[Tuple[str, str], int]:
    """Map (node, destination) -> egress port, for every switch.

    This is what the controller walks when populating forwarding
    tables: for each destination host, each switch learns the port
    towards it along the shortest path.
    """
    table: Dict[Tuple[str, str], int] = {}
    names = topology.node_names
    for dst in names:
        for src in names:
            if src == dst:
                continue
            try:
                path = shortest_path(topology, src, dst)
            except NetworkError:
                continue
            table[(src, dst)] = topology.port_towards(src, path[1])
    return table
