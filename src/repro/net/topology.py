"""Topology graphs: named nodes, numbered ports, and links.

A topology is pure structure — it knows nothing about what the nodes
*do*. The simulator binds node names to behaviour objects at run time,
so the same topology can be populated with plain switches, PERA
switches, or adversarial nodes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.qdisc import QueueConfig
from repro.util.errors import NetworkError


@dataclass(frozen=True)
class Link:
    """A bidirectional link between two (node, port) endpoints.

    ``drop_rate`` injects loss: the simulator drops each transmission
    with this probability (from its own seeded RNG, so runs replay).
    ``queue``, when set, gives each *sending* endpoint a finite egress
    queue with serialization occupancy and congestion signals (see
    :mod:`repro.net.qdisc`); ``None`` keeps the legacy
    transmit-immediately path.
    """

    node_a: str
    port_a: int
    node_b: str
    port_b: int
    latency_s: float = 1e-6
    bandwidth_bps: float = 10e9
    drop_rate: float = 0.0
    queue: Optional[QueueConfig] = None

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise NetworkError(f"negative latency on link {self.node_a}-{self.node_b}")
        if self.bandwidth_bps <= 0:
            raise NetworkError(
                f"non-positive bandwidth on link {self.node_a}-{self.node_b}"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise NetworkError(
                f"drop rate {self.drop_rate} out of range [0, 1) on link "
                f"{self.node_a}-{self.node_b}"
            )

    def other_end(self, node: str) -> Tuple[str, int]:
        """Return (peer node, peer port) as seen from ``node``."""
        if node == self.node_a:
            return (self.node_b, self.port_b)
        if node == self.node_b:
            return (self.node_a, self.port_a)
        raise NetworkError(f"node {node!r} is not an endpoint of this link")

    def transit_delay(self, frame_bytes: int) -> float:
        """Propagation plus serialization delay for a frame."""
        return self.latency_s + (frame_bytes * 8) / self.bandwidth_bps


class Topology:
    """A collection of nodes and the links wiring their ports together."""

    def __init__(self) -> None:
        self._nodes: Dict[str, str] = {}  # name -> kind ("switch" | "host" | ...)
        self._links: List[Link] = []
        self._port_map: Dict[Tuple[str, int], Link] = {}

    # --- construction ----------------------------------------------------

    def add_node(self, name: str, kind: str = "switch") -> None:
        if name in self._nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        self._nodes[name] = kind

    def add_link(
        self,
        node_a: str,
        port_a: int,
        node_b: str,
        port_b: int,
        latency_s: float = 1e-6,
        bandwidth_bps: float = 10e9,
        drop_rate: float = 0.0,
        queue: Optional[QueueConfig] = None,
    ) -> Link:
        for name in (node_a, node_b):
            if name not in self._nodes:
                raise NetworkError(f"unknown node {name!r}")
        for endpoint in ((node_a, port_a), (node_b, port_b)):
            if endpoint in self._port_map:
                raise NetworkError(f"port already wired: {endpoint}")
        link = Link(
            node_a,
            port_a,
            node_b,
            port_b,
            latency_s,
            bandwidth_bps,
            drop_rate,
            queue,
        )
        self._links.append(link)
        self._port_map[(node_a, port_a)] = link
        self._port_map[(node_b, port_b)] = link
        return link

    def configure_queues(
        self,
        config: Optional[QueueConfig],
        predicate: Optional[Callable[[Link], bool]] = None,
    ) -> int:
        """Attach ``config`` to every link (or those ``predicate``
        selects); returns how many links changed.

        Links are frozen, so each selected link is rebuilt and both
        port-map entries re-registered — the canned generators stay
        queue-agnostic and scenarios layer congestion on afterwards.
        Passing ``config=None`` strips queues back off.
        """
        changed = 0
        for i, link in enumerate(self._links):
            if predicate is not None and not predicate(link):
                continue
            updated = replace(link, queue=config)
            self._links[i] = updated
            self._port_map[(link.node_a, link.port_a)] = updated
            self._port_map[(link.node_b, link.port_b)] = updated
            changed += 1
        return changed

    # --- queries ----------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return sorted(self._nodes)

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def kind_of(self, name: str) -> str:
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        return self._nodes[name]

    def nodes_of_kind(self, kind: str) -> List[str]:
        return sorted(name for name, k in self._nodes.items() if k == kind)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link_at(self, node: str, port: int) -> Optional[Link]:
        return self._port_map.get((node, port))

    def neighbor(self, node: str, port: int) -> Tuple[str, int]:
        """Return the (peer, peer port) wired to ``node``'s ``port``."""
        link = self._port_map.get((node, port))
        if link is None:
            raise NetworkError(f"no link at {node!r} port {port}")
        return link.other_end(node)

    def ports_of(self, node: str) -> List[int]:
        return sorted(port for (name, port) in self._port_map if name == node)

    def neighbors_of(self, node: str) -> List[str]:
        """Distinct peer node names, sorted."""
        peers: Set[str] = set()
        for (name, _port), link in self._port_map.items():
            if name == node:
                peers.add(link.other_end(node)[0])
        return sorted(peers)

    def port_towards(self, node: str, neighbor: str) -> int:
        """The (lowest-numbered) port on ``node`` facing ``neighbor``."""
        for port in self.ports_of(node):
            if self.neighbor(node, port)[0] == neighbor:
                return port
        raise NetworkError(f"{node!r} has no port towards {neighbor!r}")

    def adjacency(self) -> Dict[str, List[str]]:
        return {name: self.neighbors_of(name) for name in self._nodes}


# --- canned topologies -----------------------------------------------------


def linear_topology(
    switch_count: int,
    hosts: bool = True,
    latency_s: float = 1e-6,
    bandwidth_bps: float = 10e9,
) -> Topology:
    """A chain ``h-src — s1 — s2 — ... — sN — h-dst``.

    Port convention on switches: port 1 faces "left" (towards h-src),
    port 2 faces "right". Hosts use port 1.
    """
    if switch_count < 1:
        raise NetworkError("linear topology needs at least one switch")
    topo = Topology()
    switches = [f"s{i}" for i in range(1, switch_count + 1)]
    for name in switches:
        topo.add_node(name, kind="switch")
    for left, right in zip(switches, switches[1:]):
        topo.add_link(left, 2, right, 1, latency_s, bandwidth_bps)
    if hosts:
        topo.add_node("h-src", kind="host")
        topo.add_node("h-dst", kind="host")
        topo.add_link("h-src", 1, switches[0], 1, latency_s, bandwidth_bps)
        topo.add_link(switches[-1], 2, "h-dst", 1, latency_s, bandwidth_bps)
    return topo


def star_topology(
    leaf_count: int, latency_s: float = 1e-6, bandwidth_bps: float = 10e9
) -> Topology:
    """One core switch ``core`` with ``leaf_count`` hosts ``h1..hN``."""
    if leaf_count < 1:
        raise NetworkError("star topology needs at least one leaf")
    topo = Topology()
    topo.add_node("core", kind="switch")
    for i in range(1, leaf_count + 1):
        host = f"h{i}"
        topo.add_node(host, kind="host")
        topo.add_link("core", i, host, 1, latency_s, bandwidth_bps)
    return topo


def ring_topology(
    switch_count: int, latency_s: float = 1e-6, bandwidth_bps: float = 10e9
) -> Topology:
    """A ring of switches, each with one host hanging off port 3."""
    if switch_count < 3:
        raise NetworkError("ring topology needs at least three switches")
    topo = Topology()
    switches = [f"s{i}" for i in range(1, switch_count + 1)]
    for name in switches:
        topo.add_node(name, kind="switch")
    for i, name in enumerate(switches):
        nxt = switches[(i + 1) % switch_count]
        topo.add_link(name, 2, nxt, 1, latency_s, bandwidth_bps)
    for i, name in enumerate(switches, start=1):
        host = f"h{i}"
        topo.add_node(host, kind="host")
        topo.add_link(name, 3, host, 1, latency_s, bandwidth_bps)
    return topo


def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int = 2,
    leaf_spine_latency_s: float = 2e-6,
    host_latency_s: float = 1e-6,
    bandwidth_bps: float = 10e9,
    parallel_links: int = 1,
) -> Topology:
    """A two-tier leaf–spine fabric: every leaf uplinks to every spine.

    Names: leaves ``leaf0..``, spines ``spine0..``, hosts
    ``h-<leaf>-<i>`` (zero-padded so lexicographic order == numeric
    order — the shard partitioner groups by sorted names). Ports on a
    leaf: downlinks ``1..hosts_per_leaf``, then ``parallel_links``
    uplinks per spine at ``hosts_per_leaf+1 + si*parallel_links + p``
    towards ``spine<si>``; a spine faces ``leaf<li>`` on ports
    ``1 + li*parallel_links + p``. With ``parallel_links == 1`` this
    reduces exactly to the original single-link convention. Leaf–spine
    links default to a slightly higher latency than host links: the
    fabric's min cross-shard latency sets the conservative lookahead
    window, and uplinks are the natural shard cut.
    """
    if leaves < 1 or spines < 1:
        raise NetworkError("leaf_spine needs at least one leaf and one spine")
    if hosts_per_leaf < 0:
        raise NetworkError(f"negative hosts_per_leaf: {hosts_per_leaf}")
    if parallel_links < 1:
        raise NetworkError(f"parallel_links must be >= 1, got {parallel_links}")
    topo = Topology()
    width = max(2, len(str(max(leaves, spines) - 1)))
    leaf_names = [f"leaf{i:0{width}d}" for i in range(leaves)]
    spine_names = [f"spine{i:0{width}d}" for i in range(spines)]
    for name in leaf_names + spine_names:
        topo.add_node(name, kind="switch")
    for li, leaf in enumerate(leaf_names):
        for si, spine in enumerate(spine_names):
            for p in range(parallel_links):
                topo.add_link(
                    leaf,
                    hosts_per_leaf + 1 + si * parallel_links + p,
                    spine,
                    1 + li * parallel_links + p,
                    leaf_spine_latency_s,
                    bandwidth_bps,
                )
        for i in range(hosts_per_leaf):
            host = f"h-{leaf}-{i}"
            topo.add_node(host, kind="host")
            topo.add_link(
                leaf, 1 + i, host, 1, host_latency_s, bandwidth_bps
            )
    return topo


def fat_tree(
    k: int = 4,
    hosts_per_edge: Optional[int] = None,
    host_latency_s: float = 1e-6,
    fabric_latency_s: float = 2e-6,
    bandwidth_bps: float = 10e9,
) -> Topology:
    """A k-ary fat-tree with pod-contiguous, shard-friendly names.

    Layout (k even): k pods of k/2 edge + k/2 aggregation switches,
    (k/2)^2 cores, and ``hosts_per_edge`` (default k/2) hosts per edge
    switch. Unlike :func:`fat_tree_topology`, names sort pod-by-pod —
    ``p<pod>a<i>`` / ``p<pod>e<i>`` (aggregation before edge within a
    pod) with cores last as ``zcore<idx>`` — so the shard
    partitioner's sorted-contiguous chunking, and especially the
    pod-aware grouping built on :func:`fabric_pod_map`, keeps each
    pod's switches in one shard and cuts the fabric only at
    pod–core boundaries.

    Ports: edge downlinks ``1..hosts_per_edge`` (host ``j`` on
    ``1+j``), edge uplink to aggregation ``ai`` on
    ``hosts_per_edge+1+ai``; aggregation downlink to edge ``ei`` on
    ``1+ei``, uplink ``j`` on ``k/2+1+j`` to core ``ai*(k/2)+j``; a
    core faces pod ``p`` on port ``1+p``. Hosts are named
    ``h-<edge>-<j>``. Intra-fabric links use ``fabric_latency_s``
    (the conservative-lookahead floor for pod cuts), host links
    ``host_latency_s``.
    """
    if k < 2 or k % 2 != 0:
        raise NetworkError(f"fat-tree parameter k must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if hosts_per_edge < 0:
        raise NetworkError(f"negative hosts_per_edge: {hosts_per_edge}")
    topo = Topology()
    pw = max(2, len(str(k - 1)))
    sw = max(2, len(str(half - 1)))
    cw = max(2, len(str(half * half - 1)))
    core_names = [f"zcore{i:0{cw}d}" for i in range(half * half)]
    for name in core_names:
        topo.add_node(name, kind="switch")
    for pod in range(k):
        aggs = [f"p{pod:0{pw}d}a{i:0{sw}d}" for i in range(half)]
        edges = [f"p{pod:0{pw}d}e{i:0{sw}d}" for i in range(half)]
        for name in aggs + edges:
            topo.add_node(name, kind="switch")
        for ei, edge in enumerate(edges):
            for ai, agg in enumerate(aggs):
                topo.add_link(
                    edge,
                    hosts_per_edge + 1 + ai,
                    agg,
                    1 + ei,
                    fabric_latency_s,
                    bandwidth_bps,
                )
        for ai, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(
                    agg,
                    half + 1 + j,
                    core_names[ai * half + j],
                    1 + pod,
                    fabric_latency_s,
                    bandwidth_bps,
                )
        for ei, edge in enumerate(edges):
            for j in range(hosts_per_edge):
                host = f"h-{edge}-{j}"
                topo.add_node(host, kind="host")
                topo.add_link(
                    edge, 1 + j, host, 1, host_latency_s, bandwidth_bps
                )
    return topo


_POD_NAME = re.compile(r"^(p\d+)[ae]\d+$")
_CORE_NAME = re.compile(r"^zcore\d+$")


def fabric_pod_map(topology: Topology) -> Dict[str, str]:
    """Infer a pod tag for every non-host node from :func:`fat_tree` names.

    Returns ``{switch_name: pod_tag}`` — ``p<pod>`` for pod switches,
    ``zcore`` for the core block — or an *empty* dict unless **every**
    non-host node matches the convention. The all-or-nothing rule
    keeps the pod-aware shard partitioner conservative: hand-built and
    legacy topologies fall back to plain sorted-contiguous chunking.
    """
    pods: Dict[str, str] = {}
    for name in topology.node_names:
        if topology.kind_of(name) == "host":
            continue
        match = _POD_NAME.match(name)
        if match is not None:
            pods[name] = match.group(1)
            continue
        if _CORE_NAME.match(name) is not None:
            pods[name] = "zcore"
            continue
        return {}
    return pods


def fat_tree_topology(
    k: int = 4, latency_s: float = 1e-6, bandwidth_bps: float = 10e9
) -> Topology:
    """A k-ary fat-tree (k even): (k/2)^2 core, k pods of k/2+k/2 switches.

    Hosts: one per edge-switch downlink, named ``h-<pod>-<edge>-<i>``.
    Port numbering per switch: downlinks first (1..k/2), then uplinks.
    """
    if k < 2 or k % 2 != 0:
        raise NetworkError(f"fat-tree parameter k must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology()
    core = [[f"c{i}-{j}" for j in range(half)] for i in range(half)]
    for row in core:
        for name in row:
            topo.add_node(name, kind="switch")
    for pod in range(k):
        aggs = [f"a{pod}-{i}" for i in range(half)]
        edges = [f"e{pod}-{i}" for i in range(half)]
        for name in aggs + edges:
            topo.add_node(name, kind="switch")
        # Edge <-> aggregation full bipartite inside the pod.
        for ei, edge in enumerate(edges):
            for ai, agg in enumerate(aggs):
                topo.add_link(
                    edge, half + 1 + ai, agg, 1 + ei, latency_s, bandwidth_bps
                )
        # Aggregation <-> core.
        for ai, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(
                    agg, half + 1 + j, core[ai][j], 1 + pod, latency_s, bandwidth_bps
                )
        # Hosts on edge downlinks.
        for ei, edge in enumerate(edges):
            for i in range(half):
                host = f"h-{pod}-{ei}-{i}"
                topo.add_node(host, kind="host")
                topo.add_link(edge, 1 + i, host, 1, latency_s, bandwidth_bps)
    return topo
