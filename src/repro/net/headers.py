"""Byte-accurate protocol headers.

The PISA programmable parser (:mod:`repro.pisa.parser_engine`) consumes
these encodings, so they follow the real wire layouts: Ethernet II,
IPv4 (RFC 791), UDP (RFC 768), TCP (RFC 793), plus the RA shim header
this library defines for in-band attestation material.

Paper §5.2: "The policy will be compiled by the Relying Party and
serialized into an options header in the transport layer, to be
evaluated along the path of traffic that it is sending out." The
:class:`RaShimHeader` is that options header: it rides over UDP on a
well-known port and carries a TLV body (compiled policy + accrued
evidence stack).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.bits import checksum16
from repro.util.errors import CodecError

ETHERTYPE_IPV4 = 0x0800
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# Well-known UDP destination port for the RA shim header (unassigned in
# the IANA registry; chosen for the simulation).
RA_UDP_PORT = 0x9A7A

RA_SHIM_MAGIC = 0x5241  # "RA"
RA_SHIM_VERSION = 1


def ip_to_int(address: str) -> int:
    """Parse dotted-quad ``address`` into a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise CodecError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise CodecError(f"malformed IPv4 address {address!r}") from exc
        if not 0 <= octet <= 255:
            raise CodecError(f"IPv4 octet {octet} out of range in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as a dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise CodecError(f"IPv4 value {value:#x} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(address: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = address.split(":")
    if len(parts) != 6:
        raise CodecError(f"malformed MAC address {address!r}")
    try:
        octets = [int(part, 16) for part in parts]
    except ValueError as exc:
        raise CodecError(f"malformed MAC address {address!r}") from exc
    if any(not 0 <= o <= 255 for o in octets):
        raise CodecError(f"malformed MAC address {address!r}")
    value = 0
    for octet in octets:
        value = (value << 8) | octet
    return value


def int_to_mac(value: int) -> str:
    """Render a 48-bit integer as a colon-separated MAC string."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise CodecError(f"MAC value {value:#x} out of range")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II header (14 bytes)."""

    dst: int
    src: int
    ethertype: int = ETHERTYPE_IPV4

    WIRE_LEN = 14

    def encode(self) -> bytes:
        return (
            self.dst.to_bytes(6, "big")
            + self.src.to_bytes(6, "big")
            + self.ethertype.to_bytes(2, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.WIRE_LEN:
            raise CodecError(f"Ethernet header needs 14 bytes, got {len(data)}")
        return cls(
            dst=int.from_bytes(data[0:6], "big"),
            src=int.from_bytes(data[6:12], "big"),
            ethertype=int.from_bytes(data[12:14], "big"),
        )


@dataclass(frozen=True)
class Ipv4Header:
    """IPv4 header without options (20 bytes).

    ``total_length`` covers header plus payload; :meth:`encode`
    recomputes the checksum so callers never set it by hand.
    """

    src: int
    dst: int
    protocol: int = IPPROTO_UDP
    ttl: int = 64
    total_length: int = 20
    identification: int = 0
    dscp: int = 0

    WIRE_LEN = 20

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        head = bytes(
            [
                version_ihl,
                (self.dscp << 2) & 0xFF,
            ]
        )
        head += self.total_length.to_bytes(2, "big")
        head += self.identification.to_bytes(2, "big")
        head += (0).to_bytes(2, "big")  # flags + fragment offset
        head += bytes([self.ttl & 0xFF, self.protocol])
        head += (0).to_bytes(2, "big")  # checksum placeholder
        head += self.src.to_bytes(4, "big")
        head += self.dst.to_bytes(4, "big")
        csum = checksum16(head)
        return head[:10] + csum.to_bytes(2, "big") + head[12:]

    @classmethod
    def decode(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.WIRE_LEN:
            raise CodecError(f"IPv4 header needs 20 bytes, got {len(data)}")
        version = data[0] >> 4
        ihl = data[0] & 0x0F
        if version != 4:
            raise CodecError(f"not an IPv4 header (version {version})")
        if ihl != 5:
            raise CodecError(f"IPv4 options unsupported (IHL {ihl})")
        if checksum16(data[:20]) != 0:
            raise CodecError("IPv4 header checksum mismatch")
        return cls(
            dscp=data[1] >> 2,
            total_length=int.from_bytes(data[2:4], "big"),
            identification=int.from_bytes(data[4:6], "big"),
            ttl=data[8],
            protocol=data[9],
            src=int.from_bytes(data[12:16], "big"),
            dst=int.from_bytes(data[16:20], "big"),
        )

    def decrement_ttl(self) -> "Ipv4Header":
        if self.ttl == 0:
            raise CodecError("cannot decrement TTL below zero")
        return replace(self, ttl=self.ttl - 1)


@dataclass(frozen=True)
class UdpHeader:
    """UDP header (8 bytes). Checksum is left zero (legal for IPv4)."""

    src_port: int
    dst_port: int
    length: int = 8

    WIRE_LEN = 8

    def encode(self) -> bytes:
        return (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
            + (0).to_bytes(2, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.WIRE_LEN:
            raise CodecError(f"UDP header needs 8 bytes, got {len(data)}")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            length=int.from_bytes(data[4:6], "big"),
        )


@dataclass(frozen=True)
class TcpHeader:
    """TCP header without options (20 bytes); enough for flow matching."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    WIRE_LEN = 20

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def encode(self) -> bytes:
        data_offset = 5 << 4
        return (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.seq.to_bytes(4, "big")
            + self.ack.to_bytes(4, "big")
            + bytes([data_offset, self.flags & 0xFF])
            + self.window.to_bytes(2, "big")
            + (0).to_bytes(2, "big")  # checksum (unused in simulation)
            + (0).to_bytes(2, "big")  # urgent pointer
        )

    @classmethod
    def decode(cls, data: bytes) -> "TcpHeader":
        if len(data) < cls.WIRE_LEN:
            raise CodecError(f"TCP header needs 20 bytes, got {len(data)}")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=data[13],
            window=int.from_bytes(data[14:16], "big"),
        )


@dataclass(frozen=True)
class RaShimHeader:
    """The in-band RA options header (paper §5.2).

    Layout (8-byte fixed part + TLV body):

        magic (2B) | version (1B) | flags (1B) | body_length (2B) | hop_count (2B)

    ``body`` is a TLV stream (see :mod:`repro.core.wire`): the compiled
    policy, the accrued evidence stack, and the nonce ride there.
    ``hop_count`` counts attesting hops that have processed the packet,
    so the appraiser can detect evidence stripped by a non-attesting
    adversary in the middle of the path.
    """

    flags: int = 0
    hop_count: int = 0
    body: bytes = b""

    WIRE_LEN = 8  # fixed part only

    FLAG_POLICY = 0x01  # body carries a compiled policy
    FLAG_EVIDENCE = 0x02  # body carries an evidence stack
    FLAG_TERMINAL = 0x04  # policy asks the last hop to divert to appraiser

    def encode(self) -> bytes:
        return (
            RA_SHIM_MAGIC.to_bytes(2, "big")
            + bytes([RA_SHIM_VERSION, self.flags & 0xFF])
            + len(self.body).to_bytes(2, "big")
            + self.hop_count.to_bytes(2, "big")
            + self.body
        )

    @classmethod
    def decode(cls, data: bytes) -> "RaShimHeader":
        if len(data) < cls.WIRE_LEN:
            raise CodecError(f"RA shim header needs 8 bytes, got {len(data)}")
        magic = int.from_bytes(data[0:2], "big")
        if magic != RA_SHIM_MAGIC:
            raise CodecError(f"bad RA shim magic {magic:#06x}")
        version = data[2]
        if version != RA_SHIM_VERSION:
            raise CodecError(f"unsupported RA shim version {version}")
        body_length = int.from_bytes(data[4:6], "big")
        if len(data) < cls.WIRE_LEN + body_length:
            raise CodecError(
                f"truncated RA shim body: declared {body_length}, "
                f"have {len(data) - cls.WIRE_LEN}"
            )
        return cls(
            flags=data[3],
            hop_count=int.from_bytes(data[6:8], "big"),
            body=data[cls.WIRE_LEN : cls.WIRE_LEN + body_length],
        )

    @property
    def wire_length(self) -> int:
        return self.WIRE_LEN + len(self.body)

    def with_hop(self) -> "RaShimHeader":
        return replace(self, hop_count=self.hop_count + 1)
