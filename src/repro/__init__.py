"""Remote attestation for programmable dataplanes.

A full reproduction of "A Case for Remote Attestation in Programmable
Dataplanes" (Sultana, Shands, Yegneswaran — HotNets '22): the Copland
RA policy language, a NetKAT core, the network-aware Copland hybrid,
and PERA — a PISA switch extended with remote attestation — all running
over a deterministic simulated network.

Subpackages (bottom-up):

- :mod:`repro.util`    — TLV codec, byte helpers, simulated clock.
- :mod:`repro.crypto`  — root of trust: SHA-256, Ed25519, Merkle, pseudonyms.
- :mod:`repro.net`     — packets, topologies, discrete-event simulator.
- :mod:`repro.pisa`    — programmable parser + match-action pipeline + runtime.
- :mod:`repro.netkat`  — NetKAT language and reachability.
- :mod:`repro.copland` — Copland language, VM, adversary analysis.
- :mod:`repro.ra`      — RATS principals: attester, appraiser, relying party.
- :mod:`repro.pera`    — PISA Extended with RA (the paper's Fig. 3 switch).
- :mod:`repro.core`    — network-aware Copland: the paper's contribution.
- :mod:`repro.analysis`— automated trust analysis of policies.
- :mod:`repro.faults`  — deterministic fault injection + retry/fail-mode vocabulary.
"""

__version__ = "0.1.0"
