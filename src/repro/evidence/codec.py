"""The one evidence wire codec.

Encoding lives on the nodes themselves (:attr:`Evidence.wire`, cached);
this module is the matching decoder plus the shim-body framing shared
by every layer. The shim body of an attested packet is a flat TLV
stream ``[policy TLV][hop TLV]*``: compiled policies are type ``0x20``
(:data:`POLICY_TLV_TYPE`, decoded by :mod:`repro.core.wire`), hop
records are type ``0x10`` (:data:`RECORD_TLV_TYPE` ==
:data:`~repro.evidence.nodes.KIND_HOP`, decoded here). Each decoder
skips the other's types, exactly as the paper's §5.2 options header
requires.

Decoders raise only :class:`~repro.util.errors.CodecError` on malformed
input — they sit directly on the attack surface.

Decoding is **zero-copy**: every decoder accepts ``bytes | memoryview``
and walks :meth:`TlvCodec.iter_views` slices (O(1) views into the
packet buffer) through all nesting levels, materializing owned bytes
only at terminal fields. :func:`iter_lazy_nodes` defers even node
construction until a consumer asks, so filtering a shim body by TLV
type costs header walks alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.evidence.nodes import (
    BATCH_F_EPOCH,
    BATCH_F_HOP,
    BATCH_F_ROOT,
    BATCH_F_ROOT_SIG,
    BATCH_F_SIBLING_LEFT,
    BATCH_F_SIBLING_RIGHT,
    F_CHILD,
    HOP_F_CHAIN_HEAD,
    HOP_F_INGRESS_PORT,
    HOP_F_MEASUREMENT,
    HOP_F_PACKET_DIGEST,
    HOP_F_PLACE,
    HOP_F_SEQUENCE,
    HOP_F_SIGNATURE,
    KIND_BATCHED_HOP,
    KIND_EMPTY,
    KIND_HASH,
    KIND_HOP,
    KIND_MEASUREMENT,
    KIND_NONCE,
    KIND_PARALLEL,
    KIND_SEQUENCE,
    KIND_SIGNATURE,
    BatchedHopEvidence,
    EmptyEvidence,
    Evidence,
    HashEvidence,
    HopEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)
from repro.util.errors import CodecError
from repro.util.tlv import ByteSource, Tlv, TlvCodec

# Shim-body framing types (one namespace for everything riding in the
# RA options header).
RECORD_TLV_TYPE = KIND_HOP  # 0x10 — one hop record
BATCHED_RECORD_TLV_TYPE = KIND_BATCHED_HOP  # 0x11 — hop record + proof
POLICY_TLV_TYPE = 0x20  # one compiled policy (see repro.core.wire)

# Guard against adversarial deep nesting blowing the Python stack.
_MAX_DEPTH = 64


def _text(value: ByteSource, what: str) -> str:
    try:
        return str(value, "utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"{what} is not valid UTF-8") from exc


def encode_node(node: Evidence) -> bytes:
    """Canonical encoding of one node (cached on the node itself)."""
    return node.wire


def decode_node(data: ByteSource) -> Evidence:
    """Decode exactly one evidence node from ``data``."""
    elements = list(TlvCodec.iter_views(data))
    if len(elements) != 1:
        raise CodecError(
            f"expected exactly one evidence node TLV, found {len(elements)}"
        )
    kind, body = elements[0]
    return _node_from_view(kind, body, depth=0)


def iter_decode_nodes(data: ByteSource) -> Iterator[Evidence]:
    """Decode a flat stream of evidence node TLVs."""
    for kind, body in TlvCodec.iter_views(data):
        yield _node_from_view(kind, body, depth=0)


@dataclass
class LazyNode:
    """One top-level evidence TLV, materialized only on demand.

    Holds the node's kind tag and a zero-copy view of its body;
    :meth:`node` runs the actual decoder on first call and caches the
    result. Consumers that filter a stream by kind (the appraiser
    skipping policy TLVs, a collector counting records) never pay for
    decoding nodes they do not touch. The view borrows the input
    buffer — materialize before the buffer is recycled.
    """

    kind: int
    body: memoryview
    _node: Optional[Evidence] = field(default=None, repr=False, compare=False)

    def node(self) -> Evidence:
        if self._node is None:
            self._node = _node_from_view(self.kind, self.body, depth=0)
        return self._node


def iter_lazy_nodes(data: ByteSource) -> Iterator[LazyNode]:
    """Walk a node stream yielding unmaterialized :class:`LazyNode`s."""
    for kind, body in TlvCodec.iter_views(data):
        yield LazyNode(kind, body)


_View = Tuple[int, memoryview]


def _walk_body(body: memoryview) -> Tuple[Dict[int, memoryview], List[memoryview]]:
    """Split a generic node body into field views and child views."""
    fields: Dict[int, memoryview] = {}
    children: List[memoryview] = []
    for tlv_type, value in TlvCodec.iter_views(body):
        if tlv_type == F_CHILD:
            children.append(value)
        else:
            fields.setdefault(tlv_type, value)
    return fields, children


def _child_nodes(children: List[memoryview], depth: int) -> List[Evidence]:
    return [
        _node_from_view(*_single_view(child), depth=depth + 1)
        for child in children
    ]


def _single_view(data: memoryview) -> _View:
    elements = list(TlvCodec.iter_views(data))
    if len(elements) != 1:
        raise CodecError(
            f"child field must hold exactly one node TLV, found {len(elements)}"
        )
    return elements[0]


def _node_from_view(kind: int, body: memoryview, depth: int) -> Evidence:
    if depth > _MAX_DEPTH:
        raise CodecError(f"evidence tree deeper than {_MAX_DEPTH} levels")
    if kind == KIND_HOP:
        return decode_hop_body(body)
    if kind == KIND_BATCHED_HOP:
        return decode_batched_hop_body(body)
    if kind == KIND_EMPTY:
        # Walk (and thereby validate) the body even though mt is empty.
        _walk_body(body)
        return EmptyEvidence()
    fields, children = _walk_body(body)
    if kind == KIND_NONCE:
        if 1 not in fields or 2 not in fields:
            raise CodecError("nonce node missing name or value")
        return NonceEvidence(
            name=_text(fields[1], "nonce name"), value=bytes(fields[2])
        )
    if kind == KIND_MEASUREMENT:
        nodes = _child_nodes(children, depth)
        if len(nodes) != 1:
            raise CodecError("measurement node needs exactly one prior child")
        missing = [f for f in (1, 2, 3, 4, 5) if f not in fields]
        if missing:
            raise CodecError(f"measurement node missing fields {missing}")
        return MeasurementEvidence(
            asp=_text(fields[1], "asp name"),
            place=_text(fields[2], "place name"),
            target=_text(fields[3], "target name"),
            target_place=_text(fields[4], "target place"),
            value=bytes(fields[5]),
            prior=nodes[0],
        )
    if kind == KIND_SIGNATURE:
        nodes = _child_nodes(children, depth)
        if len(nodes) != 1:
            raise CodecError("signature node needs exactly one child")
        if 1 not in fields or 2 not in fields:
            raise CodecError("signature node missing place or signature")
        return SignedEvidence(
            evidence=nodes[0],
            place=_text(fields[1], "signer place"),
            signature=bytes(fields[2]),
        )
    if kind == KIND_HASH:
        if 1 not in fields or 2 not in fields:
            raise CodecError("hash node missing place or digest")
        return HashEvidence(
            digest_value=bytes(fields[2]), place=_text(fields[1], "hasher place")
        )
    if kind in (KIND_SEQUENCE, KIND_PARALLEL):
        nodes = _child_nodes(children, depth)
        if len(nodes) != 2:
            raise CodecError("pair node needs exactly two children")
        cls = SequenceEvidence if kind == KIND_SEQUENCE else ParallelEvidence
        return cls(left=nodes[0], right=nodes[1])
    raise CodecError(f"unknown evidence node kind {kind:#04x}")


# --- hop records (the in-band fast path) ------------------------------


def encode_hop_body(hop: HopEvidence) -> bytes:
    """The flat hop-record TLV stream (payload + signature field)."""
    return hop.signed_payload() + Tlv(HOP_F_SIGNATURE, hop.signature).encode()



# The canonical payload field order emitted by ``signed_payload()``:
# place, measurements, sequence, then the optional fixed-position tail.
# Ranks are positional, not numeric-by-type (sequence/ingress-port were
# added after chain-head/packet-digest and encode *before* them).
_CANONICAL_HOP_RANK = {
    HOP_F_PLACE: 0,
    HOP_F_MEASUREMENT: 1,
    HOP_F_SEQUENCE: 2,
    HOP_F_INGRESS_PORT: 3,
    HOP_F_CHAIN_HEAD: 4,
    HOP_F_PACKET_DIGEST: 5,
}


def decode_hop_body(data: ByteSource) -> HopEvidence:
    """Decode the flat hop-record field stream into a canonical node.

    When the wire layout is canonical — payload fields in the exact
    order ``signed_payload()`` emits them (each at most once, except
    measurements, and the mandatory sequence field present), signature
    field last or absent as in batched inner hops — the signed-payload
    prefix of the input is seeded into the node's ``_payload`` cache,
    so appraisal-side digest and signature checks reuse the received
    bytes instead of re-encoding the record. Any deviation (reordered
    or duplicated payload fields, a missing sequence field, fields
    after the signature) falls back to the canonical re-encode, so a
    wire whose *content* matches what the signer signed still verifies
    regardless of field order, and a payload mismatch can never hide
    behind the seeded cache.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    place = None
    measurements: List[tuple] = []
    sequence = 0
    sequence_seen = False
    ingress_port = None
    chain_head = None
    packet_digest = None
    signature = b""
    offset = 0
    payload_end = None  # where the signed prefix stops, if canonical
    canonical = True
    last_rank = -1
    for tlv_type, value in TlvCodec.iter_views(view):
        if tlv_type == HOP_F_SIGNATURE:
            if payload_end is not None:
                canonical = False  # duplicate signature field
            payload_end = offset
        else:
            if payload_end is not None:
                canonical = False  # payload field after the signature
            rank = _CANONICAL_HOP_RANK.get(tlv_type, -1)
            if rank < last_rank or (
                rank == last_rank and tlv_type != HOP_F_MEASUREMENT
            ):
                canonical = False  # out-of-order or duplicated field
            else:
                last_rank = rank
        offset += 3 + len(value)
        if tlv_type == HOP_F_PLACE:
            place = _text(value, "hop place")
        elif tlv_type == HOP_F_MEASUREMENT:
            if len(value) < 1:
                raise CodecError("measurement TLV too short")
            measurements.append((value[0], bytes(value[1:])))
        elif tlv_type == HOP_F_SEQUENCE:
            if len(value) != 4:
                raise CodecError("sequence TLV must be 4 bytes")
            sequence = int.from_bytes(value, "big")
            sequence_seen = True
        elif tlv_type == HOP_F_INGRESS_PORT:
            if len(value) != 2:
                raise CodecError("ingress-port TLV must be 2 bytes")
            ingress_port = int.from_bytes(value, "big")
        elif tlv_type == HOP_F_CHAIN_HEAD:
            chain_head = bytes(value)
        elif tlv_type == HOP_F_PACKET_DIGEST:
            packet_digest = bytes(value)
        elif tlv_type == HOP_F_SIGNATURE:
            signature = bytes(value)
        else:
            raise CodecError(f"unknown hop-record TLV type {tlv_type}")
    if place is None:
        raise CodecError("hop record missing place")
    hop = HopEvidence(
        place=place,
        measurements=tuple(measurements),
        sequence=sequence,
        ingress_port=ingress_port,
        chain_head=chain_head,
        packet_digest=packet_digest,
        signature=signature,
    )
    # The canonical encoder always emits the sequence field (even for
    # sequence 0); a wire without one cannot be its own signed payload.
    if canonical and sequence_seen:
        end = len(view) if payload_end is None else payload_end
        object.__setattr__(hop, "_payload", bytes(view[:end]))
    return hop


# --- batched hop records (epoch-root header + Merkle proof) -----------


def encode_batched_hop_body(record: BatchedHopEvidence) -> bytes:
    """The batched-record TLV stream (hop payload + epoch header + proof)."""
    elements = [
        Tlv(BATCH_F_HOP, record.signed_payload()),
        Tlv(
            BATCH_F_EPOCH,
            record.epoch_id.to_bytes(8, "big")
            + record.leaf_index.to_bytes(4, "big")
            + record.leaf_count.to_bytes(4, "big"),
        ),
        Tlv(BATCH_F_ROOT, record.epoch_root),
        Tlv(BATCH_F_ROOT_SIG, record.root_signature),
    ]
    for sibling, sibling_is_left in record.proof_path:
        elements.append(
            Tlv(
                BATCH_F_SIBLING_LEFT if sibling_is_left else BATCH_F_SIBLING_RIGHT,
                sibling,
            )
        )
    return TlvCodec.encode(elements)


def decode_batched_hop_body(data: ByteSource) -> BatchedHopEvidence:
    """Decode one batched hop record (strictly: fixed-width crypto fields).

    The hop-payload sub-stream is walked as a view and its bytes seed
    the record's ``_payload`` cache: the Merkle leaf check in
    ``proof_ok`` and the per-epoch digest then reuse the received wire
    bytes instead of re-encoding the payload per packet.
    """
    hop = None
    epoch_id = leaf_index = leaf_count = None
    epoch_root = None
    root_signature = None
    proof_path: List[tuple] = []
    for tlv_type, value in TlvCodec.iter_views(data):
        if tlv_type == BATCH_F_HOP:
            hop = decode_hop_body(value)
            if hop.signature:
                raise CodecError(
                    "batched hop record must not carry a per-record signature"
                )
        elif tlv_type == BATCH_F_EPOCH:
            if len(value) != 16:
                raise CodecError("epoch TLV must be 16 bytes")
            epoch_id = int.from_bytes(value[:8], "big")
            leaf_index = int.from_bytes(value[8:12], "big")
            leaf_count = int.from_bytes(value[12:16], "big")
        elif tlv_type == BATCH_F_ROOT:
            if len(value) != 32:
                raise CodecError("epoch-root TLV must be 32 bytes")
            epoch_root = bytes(value)
        elif tlv_type == BATCH_F_ROOT_SIG:
            if len(value) != 64:
                raise CodecError("epoch-root signature TLV must be 64 bytes")
            root_signature = bytes(value)
        elif tlv_type in (BATCH_F_SIBLING_LEFT, BATCH_F_SIBLING_RIGHT):
            if len(value) != 32:
                raise CodecError("proof sibling TLV must be 32 bytes")
            proof_path.append((bytes(value), tlv_type == BATCH_F_SIBLING_LEFT))
        else:
            raise CodecError(f"unknown batched-record TLV type {tlv_type}")
    if hop is None:
        raise CodecError("batched record missing hop payload")
    if epoch_id is None:
        raise CodecError("batched record missing epoch header")
    if epoch_root is None:
        raise CodecError("batched record missing epoch root")
    if root_signature is None:
        raise CodecError("batched record missing epoch-root signature")
    record = BatchedHopEvidence(
        place=hop.place,
        measurements=hop.measurements,
        sequence=hop.sequence,
        ingress_port=hop.ingress_port,
        chain_head=hop.chain_head,
        packet_digest=hop.packet_digest,
        signature=b"",
        epoch_id=epoch_id,
        epoch_root=epoch_root,
        root_signature=root_signature,
        leaf_index=leaf_index,
        leaf_count=leaf_count,
        proof_path=tuple(proof_path),
    )
    # The inner hop decoder seeded its payload cache from the wire
    # (batched inner hops carry no signature field, so the whole
    # sub-stream is the signed prefix); hand it to the record.
    cached = hop.__dict__.get("_payload")
    if cached is not None:
        object.__setattr__(record, "_payload", cached)
    return record


def encode_record_stack(hops: Sequence[HopEvidence]) -> bytes:
    """Serialize hop nodes as the shim-body TLV stream.

    Each hop's stacked form *is* its canonical node wire (one TLV of
    kind 0x10), so this is a concatenation of cached encodings.
    """
    return b"".join(hop.wire for hop in hops)


def decode_record_stack(data: ByteSource) -> List[HopEvidence]:
    """Parse a shim-body TLV stream; non-record TLVs are skipped.

    Zero-copy: non-record TLVs (compiled policies) cost only a header
    walk, and record bodies are decoded straight from views of the
    input buffer.
    """
    hops: List[HopEvidence] = []
    for tlv_type, value in TlvCodec.iter_views(data):
        if tlv_type == RECORD_TLV_TYPE:
            hops.append(decode_hop_body(value))
        elif tlv_type == BATCHED_RECORD_TLV_TYPE:
            hops.append(decode_batched_hop_body(value))
    return hops
