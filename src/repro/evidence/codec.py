"""The one evidence wire codec.

Encoding lives on the nodes themselves (:attr:`Evidence.wire`, cached);
this module is the matching decoder plus the shim-body framing shared
by every layer. The shim body of an attested packet is a flat TLV
stream ``[policy TLV][hop TLV]*``: compiled policies are type ``0x20``
(:data:`POLICY_TLV_TYPE`, decoded by :mod:`repro.core.wire`), hop
records are type ``0x10`` (:data:`RECORD_TLV_TYPE` ==
:data:`~repro.evidence.nodes.KIND_HOP`, decoded here). Each decoder
skips the other's types, exactly as the paper's §5.2 options header
requires.

Decoders raise only :class:`~repro.util.errors.CodecError` on malformed
input — they sit directly on the attack surface.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.evidence.nodes import (
    BATCH_F_EPOCH,
    BATCH_F_HOP,
    BATCH_F_ROOT,
    BATCH_F_ROOT_SIG,
    BATCH_F_SIBLING_LEFT,
    BATCH_F_SIBLING_RIGHT,
    F_CHILD,
    HOP_F_CHAIN_HEAD,
    HOP_F_INGRESS_PORT,
    HOP_F_MEASUREMENT,
    HOP_F_PACKET_DIGEST,
    HOP_F_PLACE,
    HOP_F_SEQUENCE,
    HOP_F_SIGNATURE,
    KIND_BATCHED_HOP,
    KIND_EMPTY,
    KIND_HASH,
    KIND_HOP,
    KIND_MEASUREMENT,
    KIND_NONCE,
    KIND_PARALLEL,
    KIND_SEQUENCE,
    KIND_SIGNATURE,
    BatchedHopEvidence,
    EmptyEvidence,
    Evidence,
    HashEvidence,
    HopEvidence,
    MeasurementEvidence,
    NonceEvidence,
    ParallelEvidence,
    SequenceEvidence,
    SignedEvidence,
)
from repro.util.errors import CodecError
from repro.util.tlv import Tlv, TlvCodec

# Shim-body framing types (one namespace for everything riding in the
# RA options header).
RECORD_TLV_TYPE = KIND_HOP  # 0x10 — one hop record
BATCHED_RECORD_TLV_TYPE = KIND_BATCHED_HOP  # 0x11 — hop record + proof
POLICY_TLV_TYPE = 0x20  # one compiled policy (see repro.core.wire)

# Guard against adversarial deep nesting blowing the Python stack.
_MAX_DEPTH = 64


def _text(value: bytes, what: str) -> str:
    try:
        return value.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"{what} is not valid UTF-8") from exc


def encode_node(node: Evidence) -> bytes:
    """Canonical encoding of one node (cached on the node itself)."""
    return node.wire


def decode_node(data: bytes) -> Evidence:
    """Decode exactly one evidence node from ``data``."""
    elements = TlvCodec.decode(data)
    if len(elements) != 1:
        raise CodecError(
            f"expected exactly one evidence node TLV, found {len(elements)}"
        )
    return _node_from_tlv(elements[0], depth=0)


def iter_decode_nodes(data: bytes) -> Iterator[Evidence]:
    """Decode a flat stream of evidence node TLVs."""
    for element in TlvCodec.iter_decode(data):
        yield _node_from_tlv(element, depth=0)


def _child_nodes(elements: Sequence[Tlv], depth: int) -> List[Evidence]:
    return [
        _node_from_tlv(_single_tlv(e.value), depth + 1)
        for e in elements
        if e.type == F_CHILD
    ]


def _single_tlv(data: bytes) -> Tlv:
    elements = TlvCodec.decode(data)
    if len(elements) != 1:
        raise CodecError(
            f"child field must hold exactly one node TLV, found {len(elements)}"
        )
    return elements[0]


def _fields(elements: Sequence[Tlv]) -> dict:
    found = {}
    for element in elements:
        if element.type != F_CHILD:
            found.setdefault(element.type, element.value)
    return found


def _node_from_tlv(element: Tlv, depth: int) -> Evidence:
    if depth > _MAX_DEPTH:
        raise CodecError(f"evidence tree deeper than {_MAX_DEPTH} levels")
    kind = element.type
    if kind == KIND_HOP:
        return decode_hop_body(element.value)
    if kind == KIND_BATCHED_HOP:
        return decode_batched_hop_body(element.value)
    body = TlvCodec.decode(element.value)
    fields = _fields(body)
    if kind == KIND_EMPTY:
        return EmptyEvidence()
    if kind == KIND_NONCE:
        if 1 not in fields or 2 not in fields:
            raise CodecError("nonce node missing name or value")
        return NonceEvidence(name=_text(fields[1], "nonce name"), value=fields[2])
    if kind == KIND_MEASUREMENT:
        children = _child_nodes(body, depth)
        if len(children) != 1:
            raise CodecError("measurement node needs exactly one prior child")
        missing = [f for f in (1, 2, 3, 4, 5) if f not in fields]
        if missing:
            raise CodecError(f"measurement node missing fields {missing}")
        return MeasurementEvidence(
            asp=_text(fields[1], "asp name"),
            place=_text(fields[2], "place name"),
            target=_text(fields[3], "target name"),
            target_place=_text(fields[4], "target place"),
            value=fields[5],
            prior=children[0],
        )
    if kind == KIND_SIGNATURE:
        children = _child_nodes(body, depth)
        if len(children) != 1:
            raise CodecError("signature node needs exactly one child")
        if 1 not in fields or 2 not in fields:
            raise CodecError("signature node missing place or signature")
        return SignedEvidence(
            evidence=children[0],
            place=_text(fields[1], "signer place"),
            signature=fields[2],
        )
    if kind == KIND_HASH:
        if 1 not in fields or 2 not in fields:
            raise CodecError("hash node missing place or digest")
        return HashEvidence(
            digest_value=fields[2], place=_text(fields[1], "hasher place")
        )
    if kind in (KIND_SEQUENCE, KIND_PARALLEL):
        children = _child_nodes(body, depth)
        if len(children) != 2:
            raise CodecError("pair node needs exactly two children")
        cls = SequenceEvidence if kind == KIND_SEQUENCE else ParallelEvidence
        return cls(left=children[0], right=children[1])
    raise CodecError(f"unknown evidence node kind {kind:#04x}")


# --- hop records (the in-band fast path) ------------------------------


def encode_hop_body(hop: HopEvidence) -> bytes:
    """The flat hop-record TLV stream (payload + signature field)."""
    return hop.signed_payload() + Tlv(HOP_F_SIGNATURE, hop.signature).encode()


def decode_hop_body(data: bytes) -> HopEvidence:
    """Decode the flat hop-record field stream into a canonical node."""
    place = None
    measurements: List[tuple] = []
    sequence = 0
    ingress_port = None
    chain_head = None
    packet_digest = None
    signature = b""
    for element in TlvCodec.iter_decode(data):
        if element.type == HOP_F_PLACE:
            place = _text(element.value, "hop place")
        elif element.type == HOP_F_MEASUREMENT:
            if len(element.value) < 1:
                raise CodecError("measurement TLV too short")
            measurements.append((element.value[0], element.value[1:]))
        elif element.type == HOP_F_SEQUENCE:
            if len(element.value) != 4:
                raise CodecError("sequence TLV must be 4 bytes")
            sequence = int.from_bytes(element.value, "big")
        elif element.type == HOP_F_INGRESS_PORT:
            if len(element.value) != 2:
                raise CodecError("ingress-port TLV must be 2 bytes")
            ingress_port = int.from_bytes(element.value, "big")
        elif element.type == HOP_F_CHAIN_HEAD:
            chain_head = element.value
        elif element.type == HOP_F_PACKET_DIGEST:
            packet_digest = element.value
        elif element.type == HOP_F_SIGNATURE:
            signature = element.value
        else:
            raise CodecError(f"unknown hop-record TLV type {element.type}")
    if place is None:
        raise CodecError("hop record missing place")
    return HopEvidence(
        place=place,
        measurements=tuple(measurements),
        sequence=sequence,
        ingress_port=ingress_port,
        chain_head=chain_head,
        packet_digest=packet_digest,
        signature=signature,
    )


# --- batched hop records (epoch-root header + Merkle proof) -----------


def encode_batched_hop_body(record: BatchedHopEvidence) -> bytes:
    """The batched-record TLV stream (hop payload + epoch header + proof)."""
    elements = [
        Tlv(BATCH_F_HOP, record.signed_payload()),
        Tlv(
            BATCH_F_EPOCH,
            record.epoch_id.to_bytes(8, "big")
            + record.leaf_index.to_bytes(4, "big")
            + record.leaf_count.to_bytes(4, "big"),
        ),
        Tlv(BATCH_F_ROOT, record.epoch_root),
        Tlv(BATCH_F_ROOT_SIG, record.root_signature),
    ]
    for sibling, sibling_is_left in record.proof_path:
        elements.append(
            Tlv(
                BATCH_F_SIBLING_LEFT if sibling_is_left else BATCH_F_SIBLING_RIGHT,
                sibling,
            )
        )
    return TlvCodec.encode(elements)


def decode_batched_hop_body(data: bytes) -> BatchedHopEvidence:
    """Decode one batched hop record (strictly: fixed-width crypto fields)."""
    hop = None
    epoch_id = leaf_index = leaf_count = None
    epoch_root = None
    root_signature = None
    proof_path: List[tuple] = []
    for element in TlvCodec.iter_decode(data):
        if element.type == BATCH_F_HOP:
            hop = decode_hop_body(element.value)
            if hop.signature:
                raise CodecError(
                    "batched hop record must not carry a per-record signature"
                )
        elif element.type == BATCH_F_EPOCH:
            if len(element.value) != 16:
                raise CodecError("epoch TLV must be 16 bytes")
            epoch_id = int.from_bytes(element.value[:8], "big")
            leaf_index = int.from_bytes(element.value[8:12], "big")
            leaf_count = int.from_bytes(element.value[12:16], "big")
        elif element.type == BATCH_F_ROOT:
            if len(element.value) != 32:
                raise CodecError("epoch-root TLV must be 32 bytes")
            epoch_root = element.value
        elif element.type == BATCH_F_ROOT_SIG:
            if len(element.value) != 64:
                raise CodecError("epoch-root signature TLV must be 64 bytes")
            root_signature = element.value
        elif element.type in (BATCH_F_SIBLING_LEFT, BATCH_F_SIBLING_RIGHT):
            if len(element.value) != 32:
                raise CodecError("proof sibling TLV must be 32 bytes")
            proof_path.append(
                (element.value, element.type == BATCH_F_SIBLING_LEFT)
            )
        else:
            raise CodecError(f"unknown batched-record TLV type {element.type}")
    if hop is None:
        raise CodecError("batched record missing hop payload")
    if epoch_id is None:
        raise CodecError("batched record missing epoch header")
    if epoch_root is None:
        raise CodecError("batched record missing epoch root")
    if root_signature is None:
        raise CodecError("batched record missing epoch-root signature")
    return BatchedHopEvidence(
        place=hop.place,
        measurements=hop.measurements,
        sequence=hop.sequence,
        ingress_port=hop.ingress_port,
        chain_head=hop.chain_head,
        packet_digest=hop.packet_digest,
        signature=b"",
        epoch_id=epoch_id,
        epoch_root=epoch_root,
        root_signature=root_signature,
        leaf_index=leaf_index,
        leaf_count=leaf_count,
        proof_path=tuple(proof_path),
    )


def encode_record_stack(hops: Sequence[HopEvidence]) -> bytes:
    """Serialize hop nodes as the shim-body TLV stream.

    Each hop's stacked form *is* its canonical node wire (one TLV of
    kind 0x10), so this is a concatenation of cached encodings.
    """
    return b"".join(hop.wire for hop in hops)


def decode_record_stack(data: bytes) -> List[HopEvidence]:
    """Parse a shim-body TLV stream; non-record TLVs are skipped."""
    hops: List[HopEvidence] = []
    for element in TlvCodec.iter_decode(data):
        if element.type == RECORD_TLV_TYPE:
            hops.append(decode_hop_body(element.value))
        elif element.type == BATCHED_RECORD_TLV_TYPE:
            hops.append(decode_batched_hop_body(element.value))
    return hops
