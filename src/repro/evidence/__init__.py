"""The unified evidence substrate (paper-wide).

Every layer of the system trades in *evidence*: Copland phrases produce
it (:mod:`repro.copland`), PERA switches create/inspect/compose it
(:mod:`repro.pera`), RA principals appraise it (:mod:`repro.ra`), and
the network-aware compiler routes it (:mod:`repro.core`). This package
is the one canonical model they all share:

- :mod:`repro.evidence.nodes` — content-addressed evidence node types
  mirroring Copland's evidence grammar (empty, nonce, measurement,
  signature, hash, sequence, parallel) plus the hop-composed record of
  an attesting PERA switch. Wire form and SHA-256 digest are computed
  once per node and cached.
- :mod:`repro.evidence.codec` — the single TLV wire codec (encode is
  the nodes' cached :attr:`~repro.evidence.nodes.Evidence.wire`;
  decode lives here), including the shim-body framing shared with
  compiled policies.
- :mod:`repro.evidence.verify` — memoized signature verification keyed
  by (key id, message digest, signature).

The historical import paths (``repro.copland.evidence``,
``repro.pera.records``) remain as thin views/re-exports over this
package.
"""

from repro.evidence.nodes import (
    Evidence,
    EmptyEvidence,
    NonceEvidence,
    MeasurementEvidence,
    SignedEvidence,
    HashEvidence,
    SequenceEvidence,
    ParallelEvidence,
    HopEvidence,
    BatchedHopEvidence,
    epoch_root_payload,
)
from repro.evidence.codec import (
    BATCHED_RECORD_TLV_TYPE,
    POLICY_TLV_TYPE,
    RECORD_TLV_TYPE,
    LazyNode,
    decode_batched_hop_body,
    decode_hop_body,
    decode_node,
    decode_record_stack,
    encode_batched_hop_body,
    encode_hop_body,
    encode_node,
    encode_record_stack,
    iter_decode_nodes,
    iter_lazy_nodes,
)
from repro.evidence.verify import (
    BatchVerifyItem,
    SignatureCache,
    VerifyCacheStats,
    registry_verify,
    registry_verify_batch,
    shared_cache,
)


def hops_to_evidence(hops) -> Evidence:
    """Compose hop records into one canonical evidence tree.

    A traffic path's accumulated records form a sequential composition
    (each hop extends its predecessors), so in-band stacks, out-of-band
    streams and redacted disclosures of the same hops all reduce to the
    same tree — and therefore the same wire bytes and content digest.
    """
    hops = list(hops)
    if not hops:
        return EmptyEvidence()
    tree: Evidence = hops[0]
    for hop in hops[1:]:
        tree = SequenceEvidence(left=tree, right=hop)
    return tree


__all__ = [
    "Evidence",
    "EmptyEvidence",
    "NonceEvidence",
    "MeasurementEvidence",
    "SignedEvidence",
    "HashEvidence",
    "SequenceEvidence",
    "ParallelEvidence",
    "HopEvidence",
    "BatchedHopEvidence",
    "epoch_root_payload",
    "POLICY_TLV_TYPE",
    "RECORD_TLV_TYPE",
    "BATCHED_RECORD_TLV_TYPE",
    "encode_node",
    "decode_node",
    "iter_decode_nodes",
    "encode_hop_body",
    "decode_hop_body",
    "encode_batched_hop_body",
    "decode_batched_hop_body",
    "encode_record_stack",
    "decode_record_stack",
    "LazyNode",
    "iter_lazy_nodes",
    "hops_to_evidence",
    "BatchVerifyItem",
    "SignatureCache",
    "VerifyCacheStats",
    "registry_verify",
    "registry_verify_batch",
    "shared_cache",
]
