"""Canonical evidence nodes — the one evidence model every layer shares.

The paper's whole mechanism is evidence flowing between layers: Copland
phrases *produce* it, PERA switches *create/inspect/compose* it, RA
principals *appraise* it. These classes are the single concrete
representation all of them use. The shape mirrors the Copland evidence
grammar (mt, nonce, measurement, signature, hash, sequential pair,
parallel pair) plus one network-native node — :class:`HopEvidence`, the
hop-composed record a PERA switch contributes per attesting hop.

Two properties make this the system's hot-path substrate:

- **One wire form.** Every node encodes as a single TLV
  (:data:`~repro.evidence.nodes` kind tags, bodies built on
  :mod:`repro.util.tlv`); :mod:`repro.evidence.codec` is the matching
  decoder. No layer carries a private encoding any more.
- **Content addressing.** Nodes are frozen; :attr:`Evidence.wire` and
  :attr:`Evidence.content_digest` are computed once per object and
  cached, so signing, hashing, chain replay and appraisal all reuse the
  same bytes instead of re-encoding subtrees per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator, Optional, Tuple

from repro.crypto.hashing import digest
from repro.crypto.merkle import MerkleProof
from repro.util.tlv import Tlv, TlvCodec

# One TLV-type namespace for evidence nodes. 0x10 and 0x20 match the
# legacy shim-body framing (hop records / compiled policies), so wire
# forms stay compatible with pre-substrate captures.
KIND_EMPTY = 0x01
KIND_NONCE = 0x02
KIND_MEASUREMENT = 0x03
KIND_SIGNATURE = 0x04
KIND_HASH = 0x05
KIND_SEQUENCE = 0x06
KIND_PARALLEL = 0x07
KIND_HOP = 0x10
KIND_BATCHED_HOP = 0x11  # hop record + epoch-root header + Merkle proof

# The per-field TLV types inside node bodies. Child nodes always ride
# in a CHILD field (their value is the child's full node TLV), so field
# types and node kinds can never be confused while decoding.
_F_A = 1
_F_B = 2
_F_C = 3
_F_D = 4
_F_E = 5
F_CHILD = 8

# Hop-record body field types (kept identical to the original
# repro.pera.records layout so hop wire forms are stable).
HOP_F_PLACE = 1
HOP_F_MEASUREMENT = 2  # value: class code (1B) + digest
HOP_F_CHAIN_HEAD = 3
HOP_F_PACKET_DIGEST = 4
HOP_F_SIGNATURE = 5
HOP_F_SEQUENCE = 6  # value: 4-byte attestation sequence number
HOP_F_INGRESS_PORT = 7  # value: 2-byte ingress port

# Batched-hop body field types (the 0x11 proof-bearing record).
BATCH_F_HOP = 1  # value: flat hop-record payload TLVs (no signature)
BATCH_F_EPOCH = 2  # value: 8B epoch id + 4B leaf index + 4B leaf count
BATCH_F_ROOT = 3  # value: 32B epoch Merkle root
BATCH_F_ROOT_SIG = 4  # value: 64B signature over the epoch-root payload
BATCH_F_SIBLING_LEFT = 5  # value: 32B proof sibling hash (sibling left)
BATCH_F_SIBLING_RIGHT = 6  # value: 32B proof sibling hash (sibling right)

DIGEST_DOMAIN = "evidence-node"
EPOCH_ROOT_DOMAIN = b"pera-epoch-root"
EPOCH_DIGEST_DOMAIN = "epoch-root"


def epoch_root_payload(
    place: str, epoch_id: int, root: bytes, leaf_count: int
) -> bytes:
    """The bytes an epoch-root signature covers.

    Domain-separated and self-delimiting: the attesting place, the
    epoch number and the leaf count are all bound under the signature,
    so a root cannot be replayed for another switch or another epoch.
    """
    name = place.encode("utf-8")
    return b"".join(
        [
            EPOCH_ROOT_DOMAIN,
            len(name).to_bytes(2, "big"),
            name,
            epoch_id.to_bytes(8, "big"),
            leaf_count.to_bytes(4, "big"),
            root,
        ]
    )


class Evidence:
    """Base class of canonical evidence nodes.

    Subclasses are frozen dataclasses; the canonical wire form and the
    content digest are computed lazily once and cached on the instance
    (safe because the fields never change).
    """

    KIND: ClassVar[int] = 0

    # --- canonical bytes -------------------------------------------------

    def _body(self) -> bytes:
        """The TLV body of this node (children via their cached wire)."""
        raise NotImplementedError

    @property
    def wire(self) -> bytes:
        """Canonical encoding: one TLV of this node's kind."""
        cached = self.__dict__.get("_wire")
        if cached is None:
            cached = Tlv(self.KIND, self._body()).encode()
            object.__setattr__(self, "_wire", cached)
        return cached

    def encode(self) -> bytes:
        """Alias for :attr:`wire` (the historical entry point)."""
        return self.wire

    @property
    def content_digest(self) -> bytes:
        """SHA-256 of the canonical wire form, computed once."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = digest(self.wire, domain=DIGEST_DOMAIN)
            object.__setattr__(self, "_digest", cached)
        return cached

    # --- structure -------------------------------------------------------

    def summary(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["Evidence"]:
        """Pre-order traversal of the evidence tree."""
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self) -> Tuple["Evidence", ...]:
        return ()

    def find_measurements(self) -> Tuple["MeasurementEvidence", ...]:
        return tuple(
            node for node in self.walk() if isinstance(node, MeasurementEvidence)
        )

    def find_signatures(self) -> Tuple["SignedEvidence", ...]:
        return tuple(
            node for node in self.walk() if isinstance(node, SignedEvidence)
        )


@dataclass(frozen=True)
class EmptyEvidence(Evidence):
    """mt — the empty evidence."""

    KIND: ClassVar[int] = KIND_EMPTY

    def _body(self) -> bytes:
        return b""

    def summary(self) -> str:
        return "mt"


@dataclass(frozen=True)
class NonceEvidence(Evidence):
    """A relying-party nonce bound into the evidence (freshness)."""

    KIND: ClassVar[int] = KIND_NONCE

    name: str
    value: bytes

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [Tlv(_F_A, self.name.encode("utf-8")), Tlv(_F_B, self.value)]
        )

    def summary(self) -> str:
        return f"nonce({self.name})"


@dataclass(frozen=True)
class MeasurementEvidence(Evidence):
    """An ASP's output: who measured what, where, and the raw value."""

    KIND: ClassVar[int] = KIND_MEASUREMENT

    asp: str
    place: str  # place where the ASP ran
    target: str  # component measured ("" for service ASPs)
    target_place: str
    value: bytes  # the measurement itself (e.g. a digest)
    prior: Evidence = field(default_factory=EmptyEvidence)

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [
                Tlv(_F_A, self.asp.encode("utf-8")),
                Tlv(_F_B, self.place.encode("utf-8")),
                Tlv(_F_C, self.target.encode("utf-8")),
                Tlv(_F_D, self.target_place.encode("utf-8")),
                Tlv(_F_E, self.value),
                Tlv(F_CHILD, self.prior.wire),
            ]
        )

    def summary(self) -> str:
        target = f" {self.target_place} {self.target}" if self.target else ""
        return f"{self.asp}{target}@{self.place}[{self.prior.summary()}]"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.prior,)


@dataclass(frozen=True)
class SignedEvidence(Evidence):
    """``!`` — evidence signed by the key of ``place``."""

    KIND: ClassVar[int] = KIND_SIGNATURE

    evidence: Evidence
    place: str
    signature: bytes

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [
                Tlv(_F_A, self.place.encode("utf-8")),
                Tlv(_F_B, self.signature),
                Tlv(F_CHILD, self.evidence.wire),
            ]
        )

    def summary(self) -> str:
        return f"sig_{self.place}({self.evidence.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.evidence,)

    def signed_payload(self) -> bytes:
        """The bytes the signature covers (the inner node's wire form)."""
        return self.evidence.wire

    def payload_digest(self) -> bytes:
        """Content digest of the signed payload (cached on the child)."""
        return self.evidence.content_digest


@dataclass(frozen=True)
class HashEvidence(Evidence):
    """``#`` — evidence replaced by its digest (size reduction)."""

    KIND: ClassVar[int] = KIND_HASH

    digest_value: bytes
    place: str

    @classmethod
    def of(cls, evidence: Evidence, place: str) -> "HashEvidence":
        return cls(digest_value=evidence.content_digest, place=place)

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [Tlv(_F_A, self.place.encode("utf-8")), Tlv(_F_B, self.digest_value)]
        )

    def summary(self) -> str:
        return f"hsh_{self.place}"

    @staticmethod
    def matches(evidence: Evidence, digest_value: bytes) -> bool:
        """Would hashing ``evidence`` yield ``digest_value``?"""
        return evidence.content_digest == digest_value


@dataclass(frozen=True)
class SequenceEvidence(Evidence):
    """``ss`` — evidence of a branch-sequential composition."""

    KIND: ClassVar[int] = KIND_SEQUENCE

    left: Evidence
    right: Evidence

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [Tlv(F_CHILD, self.left.wire), Tlv(F_CHILD, self.right.wire)]
        )

    def summary(self) -> str:
        return f"({self.left.summary()} ; {self.right.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class ParallelEvidence(Evidence):
    """``pp`` — evidence of a branch-parallel composition."""

    KIND: ClassVar[int] = KIND_PARALLEL

    left: Evidence
    right: Evidence

    def _body(self) -> bytes:
        return TlvCodec.encode(
            [Tlv(F_CHILD, self.left.wire), Tlv(F_CHILD, self.right.wire)]
        )

    def summary(self) -> str:
        return f"({self.left.summary()} || {self.right.summary()})"

    def _children(self) -> Tuple[Evidence, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class HopEvidence(Evidence):
    """Hop-composed evidence: one attesting hop's signed contribution.

    This is the canonical form of a PERA hop record (paper Fig. 3
    "Create/Compose"): the attesting place (real name or pseudonym),
    the per-inertia-class measurement digests (class codes are kept as
    raw ints here — :mod:`repro.pera.inertia` gives them meaning), an
    optional chain head and packet digest, and the root-of-trust
    signature. Its body layout is exactly the original hop-record TLV
    stream, so wire forms are stable across the refactor.
    """

    KIND: ClassVar[int] = KIND_HOP

    place: str
    measurements: Tuple[Tuple[int, bytes], ...]  # (inertia code, digest)
    sequence: int = 0
    ingress_port: Optional[int] = None
    chain_head: Optional[bytes] = None
    packet_digest: Optional[bytes] = None
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """The bytes the signature covers (everything but itself)."""
        cached = self.__dict__.get("_payload")
        if cached is None:
            elements = [Tlv(HOP_F_PLACE, self.place.encode("utf-8"))]
            for code, value in self.measurements:
                elements.append(Tlv(HOP_F_MEASUREMENT, bytes([code]) + value))
            elements.append(Tlv(HOP_F_SEQUENCE, self.sequence.to_bytes(4, "big")))
            if self.ingress_port is not None:
                elements.append(
                    Tlv(HOP_F_INGRESS_PORT, self.ingress_port.to_bytes(2, "big"))
                )
            if self.chain_head is not None:
                elements.append(Tlv(HOP_F_CHAIN_HEAD, self.chain_head))
            if self.packet_digest is not None:
                elements.append(Tlv(HOP_F_PACKET_DIGEST, self.packet_digest))
            cached = TlvCodec.encode(elements)
            object.__setattr__(self, "_payload", cached)
        return cached

    def payload_digest(self) -> bytes:
        """Content digest of the signed payload, computed once."""
        cached = self.__dict__.get("_payload_digest")
        if cached is None:
            cached = digest(self.signed_payload(), domain=DIGEST_DOMAIN)
            object.__setattr__(self, "_payload_digest", cached)
        return cached

    def link_digest(self) -> bytes:
        """The hash-chain link this hop contributes, computed once.

        Both the attesting switch (extending the chain) and the
        appraiser (replaying it) need the digest of this hop's
        concatenated measurement values; caching it here means each is
        hashed exactly once per record object.
        """
        cached = self.__dict__.get("_link_digest")
        if cached is None:
            cached = digest(
                b"".join(value for _, value in self.measurements),
                domain="hop-measurements",
            )
            object.__setattr__(self, "_link_digest", cached)
        return cached

    def _body(self) -> bytes:
        return self.signed_payload() + Tlv(HOP_F_SIGNATURE, self.signature).encode()

    def summary(self) -> str:
        return f"hop_{self.place}({len(self.measurements)} meas)"


@dataclass(frozen=True)
class BatchedHopEvidence(HopEvidence):
    """A hop record amortized under an epoch-root signature.

    In epoch-batched mode (:mod:`repro.pera.epoch`) a switch does not
    sign each hop record; it accumulates the records of one epoch into
    a Merkle tree and signs only the root. Each emitted record then
    carries, instead of a per-record signature, the **epoch-root
    header** (epoch id, root, root signature, leaf count) plus its
    **inclusion proof** — the sibling hashes from its leaf to the root.

    The record's :meth:`signed_payload` (the same bytes a per-packet
    signature would cover) is the Merkle leaf, so any flipped payload
    byte breaks the proof exactly as it would break a signature. The
    inherited ``signature`` field stays empty.
    """

    KIND: ClassVar[int] = KIND_BATCHED_HOP

    epoch_id: int = 0
    epoch_root: bytes = b""
    root_signature: bytes = b""
    leaf_index: int = 0
    leaf_count: int = 0
    proof_path: Tuple[Tuple[bytes, bool], ...] = ()

    # --- epoch-root header ----------------------------------------------

    def epoch_payload(self) -> bytes:
        """The bytes the epoch-root signature covers."""
        return epoch_root_payload(
            self.place, self.epoch_id, self.epoch_root, self.leaf_count
        )

    def epoch_payload_digest(self) -> bytes:
        """Digest of the epoch-root payload, computed once per record.

        Every record of one epoch shares the same payload bytes, so the
        memoized substrate verify collapses the whole epoch's root
        checks into a single Ed25519 verification plus dict hits.
        """
        cached = self.__dict__.get("_epoch_digest")
        if cached is None:
            cached = digest(self.epoch_payload(), domain=EPOCH_DIGEST_DOMAIN)
            object.__setattr__(self, "_epoch_digest", cached)
        return cached

    # --- the inclusion proof --------------------------------------------

    def proof(self) -> MerkleProof:
        return MerkleProof(
            leaf_index=self.leaf_index,
            leaf_count=self.leaf_count,
            path=self.proof_path,
        )

    def proof_ok(self) -> bool:
        """Does the proof bind this record's payload to the epoch root?

        Two SHA-256 hashes per tree level — the cheap per-packet check
        that replaces a full Ed25519 verification in batched mode.
        """
        return self.proof().verify(self.signed_payload(), self.epoch_root)

    # --- wire form -------------------------------------------------------

    def _body(self) -> bytes:
        elements = [
            Tlv(BATCH_F_HOP, self.signed_payload()),
            Tlv(
                BATCH_F_EPOCH,
                self.epoch_id.to_bytes(8, "big")
                + self.leaf_index.to_bytes(4, "big")
                + self.leaf_count.to_bytes(4, "big"),
            ),
            Tlv(BATCH_F_ROOT, self.epoch_root),
            Tlv(BATCH_F_ROOT_SIG, self.root_signature),
        ]
        for sibling, sibling_is_left in self.proof_path:
            elements.append(
                Tlv(
                    BATCH_F_SIBLING_LEFT
                    if sibling_is_left
                    else BATCH_F_SIBLING_RIGHT,
                    sibling,
                )
            )
        return TlvCodec.encode(elements)

    def summary(self) -> str:
        return (
            f"hop_{self.place}(epoch {self.epoch_id}, "
            f"leaf {self.leaf_index}/{self.leaf_count})"
        )
