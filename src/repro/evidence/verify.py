"""Memoized signature verification for the evidence substrate.

Ed25519 verification is by far the most expensive per-node appraisal
step (the from-scratch implementation in :mod:`repro.crypto.ed25519`
costs milliseconds). But verification is a pure function of
``(verify key, message, signature)`` — and attested paths re-present
the same signed records to appraisers over and over (cached hop
records, repeated appraisals, redacted views of one evidence set). So
verdicts are memoized under a key of ``(key id, message digest,
signature)``; content-addressed evidence nodes supply the message
digest already cached, making a repeat verification one dict lookup.

The shared cache is bounded (FIFO eviction) so long-running appraisers
cannot grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto import ed25519
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyRegistry
from repro.util.errors import CryptoError

#: One member of a batched verification: ``(owner, message, signature,
#: message_digest_or_None)``.
BatchVerifyItem = Tuple[str, bytes, bytes, Optional[bytes]]

_CACHE_DOMAIN = "evidence-verify-cache"


@dataclass
class VerifyCacheStats:
    """Hit/miss counters for a :class:`SignatureCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Flat dict view (telemetry collectors and exports use this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class SignatureCache:
    """A bounded memo of signature-verification verdicts."""

    def __init__(self, maxsize: int = 8192) -> None:
        self._maxsize = maxsize
        self._verdicts: "OrderedDict[tuple, bool]" = OrderedDict()
        self.stats = VerifyCacheStats()

    def verify(
        self,
        anchors: KeyRegistry,
        owner: str,
        message: bytes,
        signature: bytes,
        message_digest: Optional[bytes] = None,
    ) -> bool:
        """Verify ``signature`` over ``message`` against ``owner``'s
        anchor in ``anchors``, memoizing the verdict.

        ``message_digest`` lets callers holding a content-addressed
        node skip re-hashing the message for the cache key; it must be
        a digest of exactly ``message``.
        """
        key_obj = anchors.lookup(owner)
        if key_obj is None:
            return False  # unknown signers are uncacheable and cheap
        if message_digest is None:
            message_digest = digest(message, domain=_CACHE_DOMAIN)
        cache_key = (key_obj.key_bytes, message_digest, signature)
        cached = self._verdicts.get(cache_key)
        if cached is not None:
            self.stats.hits += 1
            self._verdicts.move_to_end(cache_key)
            return cached
        self.stats.misses += 1
        try:
            verdict = key_obj.verify(message, signature)
        except CryptoError:
            verdict = False  # malformed signatures are just untrusted
        self._verdicts[cache_key] = verdict
        while len(self._verdicts) > self._maxsize:
            self._verdicts.popitem(last=False)
        return verdict

    def verify_batch(
        self,
        anchors: KeyRegistry,
        items: Sequence[BatchVerifyItem],
    ) -> List[bool]:
        """Verify many signatures at once through the memo.

        Semantically identical to calling :meth:`verify` per item in
        order — same verdicts, same hit/miss accounting, same cache
        contents and eviction order afterwards (an in-batch duplicate
        of a pending key counts as a *hit*, exactly as the sequential
        path would have found the just-inserted verdict). The only
        difference is that all cache misses are settled by one
        :func:`repro.crypto.ed25519.verify_batch` multi-scalar check
        instead of one Ed25519 verification each.
        """
        results: List[Optional[bool]] = [None] * len(items)
        ops: List[Tuple[str, int, tuple, int]] = []  # (op, index, key, slot)
        pending_slots: dict = {}
        crypto_items: List[tuple] = []
        for index, (owner, message, signature, message_digest) in enumerate(items):
            key_obj = anchors.lookup(owner)
            if key_obj is None:
                results[index] = False  # unknown signers: uncacheable
                continue
            if message_digest is None:
                message_digest = digest(message, domain=_CACHE_DOMAIN)
            cache_key = (key_obj.key_bytes, message_digest, signature)
            cached = self._verdicts.get(cache_key)
            if cached is not None:
                self.stats.hits += 1
                results[index] = cached
                ops.append(("touch", index, cache_key, -1))
            elif cache_key in pending_slots:
                # Sequential processing would have inserted this very
                # verdict before reaching the duplicate: count a hit.
                self.stats.hits += 1
                ops.append(("dup", index, cache_key, pending_slots[cache_key]))
            else:
                self.stats.misses += 1
                slot = len(crypto_items)
                pending_slots[cache_key] = slot
                crypto_items.append((key_obj, bytes(message), signature))
                ops.append(("insert", index, cache_key, slot))
        verdicts = ed25519.verify_batch(crypto_items) if crypto_items else []
        # Replay cache mutations in item order so recency/eviction state
        # ends up exactly as sequential processing would leave it (the
        # in-batch miss count stays far below maxsize in practice).
        for op, index, cache_key, slot in ops:
            if op == "insert":
                results[index] = verdicts[slot]
                self._verdicts[cache_key] = verdicts[slot]
                while len(self._verdicts) > self._maxsize:
                    self._verdicts.popitem(last=False)
                continue
            if op == "dup":
                results[index] = verdicts[slot]
            if cache_key in self._verdicts:
                self._verdicts.move_to_end(cache_key)
        return [bool(r) for r in results]

    def clear(self) -> None:
        self._verdicts.clear()
        self.stats = VerifyCacheStats()

    def __len__(self) -> int:
        return len(self._verdicts)


#: The process-wide cache every appraiser shares by default. Sound to
#: share because the key pins the exact public key bytes, message and
#: signature — registry contents cannot change a cached verdict's truth.
shared_cache = SignatureCache()


def registry_verify(
    anchors: KeyRegistry,
    owner: str,
    message: bytes,
    signature: bytes,
    message_digest: Optional[bytes] = None,
    cache: Optional[SignatureCache] = None,
) -> bool:
    """Memoized drop-in for :meth:`KeyRegistry.verify`."""
    # Explicit None check: an *empty* cache is falsy (it has __len__)
    # but must still be honoured as the caller's chosen cache.
    if cache is None:
        cache = shared_cache
    return cache.verify(
        anchors, owner, message, signature, message_digest=message_digest
    )


def registry_verify_batch(
    anchors: KeyRegistry,
    items: Sequence[BatchVerifyItem],
    cache: Optional[SignatureCache] = None,
) -> List[bool]:
    """Memoized batched counterpart of :func:`registry_verify`.

    One multi-scalar check settles every cache miss in ``items``;
    verdicts, hit/miss accounting and cache state match a sequence of
    :func:`registry_verify` calls exactly.
    """
    if cache is None:
        cache = shared_cache
    return cache.verify_batch(anchors, items)
