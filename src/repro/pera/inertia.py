"""The five inertia classes of attestable information (paper Fig. 4).

"Inertia refers to the level of variability of attestable information
across time: at one extreme, the model number of the hardware will not
change, at the other extreme, a packet might be completely different
than those that came before it. High-inertia attestations are more
easily cached since they take longer to expire."

The default TTLs encode exactly that gradient; they are configuration,
not physics, and every benchmark that sweeps the design space (E5)
overrides them.
"""

from __future__ import annotations

import enum
from typing import Dict


class InertiaClass(enum.IntEnum):
    """Ordered from highest inertia (slowest-changing) to lowest."""

    HARDWARE = 1
    PROGRAM = 2
    TABLES = 3
    PROG_STATE = 4
    PACKETS = 5

    @property
    def cacheable(self) -> bool:
        """Packet-level evidence can never be reused across packets."""
        return self is not InertiaClass.PACKETS


#: Default evidence lifetimes in (simulated) seconds per class.
DEFAULT_TTLS: Dict[InertiaClass, float] = {
    InertiaClass.HARDWARE: 3600.0,
    InertiaClass.PROGRAM: 60.0,
    InertiaClass.TABLES: 1.0,
    InertiaClass.PROG_STATE: 0.01,
    InertiaClass.PACKETS: 0.0,
}
