"""PERA: "PISA Extended with Remote Attestation" (paper §5, Figs. 2-4).

The unmodified PISA pipeline (:mod:`repro.pisa`) plus the two blocks
Fig. 3 adds — Sign/Verify and Evidence Create/Inspect/Compose — and the
Fig. 4 configuration surface:

- :mod:`repro.pera.inertia` — the five inertia classes (hardware,
  program, tables, program state, packets) and their cache lifetimes.
- :mod:`repro.pera.measurement` — the measurement engine: produce a
  digest for any inertia class of a running switch.
- :mod:`repro.pera.cache` — the evidence cache ("high-inertia
  attestations are more easily cached since they take longer to
  expire").
- :mod:`repro.pera.sampling` — evidence frequency control (per-packet,
  1-in-N, periodic).
- :mod:`repro.pera.records` — compact signed per-hop evidence records
  and their wire encoding.
- :mod:`repro.pera.config` — the Fig. 4 design-space point: detail ×
  composition × sampling.
- :mod:`repro.pera.switch` — :class:`PeraSwitch`, the attesting switch.
"""

from repro.pera.inertia import InertiaClass, DEFAULT_TTLS
from repro.pera.measurement import MeasurementEngine
from repro.pera.cache import EvidenceCache
from repro.pera.sampling import SamplingMode, SamplingSpec, Sampler
from repro.pera.records import HopRecord
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.switch import PeraSwitch

__all__ = [
    "InertiaClass",
    "DEFAULT_TTLS",
    "MeasurementEngine",
    "EvidenceCache",
    "SamplingMode",
    "SamplingSpec",
    "Sampler",
    "HopRecord",
    "CompositionMode",
    "DetailLevel",
    "EvidenceConfig",
    "PeraSwitch",
]
