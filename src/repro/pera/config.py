"""The Fig. 4 design-space point: Detail × Composition × Sampling.

"Inertia, Detail and Composition are the primary indices in our design
space for PERA." A :class:`EvidenceConfig` pins one point:

- **Detail** — which inertia classes each hop measures, from the
  cheap, high-inertia pair (hardware + program) out to full per-packet
  evidence ("Sampling ↔ Expansive" on the Detail axis).
- **Composition** — pointwise (each hop stands alone), chained (each
  hop extends a hash chain over the previous records), or traffic-path
  (chained + per-packet digest binding evidence to the very packet).
- **Sampling** — how often evidence is produced at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.pera.inertia import InertiaClass
from repro.pera.sampling import SamplingSpec


class DetailLevel(enum.Enum):
    """Named points on the Fig. 4 Detail axis."""

    MINIMAL = "minimal"  # hardware + program
    CONFIG = "config"  # + tables
    STATE = "state"  # + program state
    EXPANSIVE = "expansive"  # + per-packet digests

    @property
    def inertia_classes(self) -> Tuple[InertiaClass, ...]:
        base = (InertiaClass.HARDWARE, InertiaClass.PROGRAM)
        if self is DetailLevel.MINIMAL:
            return base
        if self is DetailLevel.CONFIG:
            return base + (InertiaClass.TABLES,)
        if self is DetailLevel.STATE:
            return base + (InertiaClass.TABLES, InertiaClass.PROG_STATE)
        return base + (
            InertiaClass.TABLES,
            InertiaClass.PROG_STATE,
            InertiaClass.PACKETS,
        )


class CompositionMode(enum.Enum):
    """The Fig. 4 Composition axis."""

    POINTWISE = "pointwise"
    CHAINED = "chained"
    TRAFFIC_PATH = "traffic_path"


@dataclass(frozen=True)
class BatchingSpec:
    """Epoch-batched signing parameters (:mod:`repro.pera.epoch`).

    An epoch seals when it holds ``max_records`` records or has been
    open for ``max_delay_s`` simulated seconds, whichever comes first.
    ``max_delay_s`` bounds the latency a parked in-band packet can
    accumulate waiting for its epoch-root signature; set it to ``0`` to
    seal on count (or explicit flush) only.
    """

    max_records: int = 32
    max_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_records < 1:
            raise ValueError("batching needs max_records >= 1")


@dataclass(frozen=True)
class EvidenceConfig:
    """One point in the PERA design space."""

    detail: DetailLevel = DetailLevel.MINIMAL
    composition: CompositionMode = CompositionMode.POINTWISE
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    cache_ttls: Optional[Mapping[InertiaClass, float]] = None
    use_pseudonyms: bool = False
    # Epoch-batched signing: sign one Merkle root per epoch instead of
    # one signature per packet. Only engages on configs that would
    # otherwise sign per packet (chained / traffic-path / expansive);
    # cacheable pointwise evidence already amortizes better than this.
    batching: Optional[BatchingSpec] = None

    def __post_init__(self) -> None:
        if (
            self.composition is CompositionMode.TRAFFIC_PATH
            and InertiaClass.PACKETS not in self.detail.inertia_classes
            and self.detail is not DetailLevel.EXPANSIVE
        ):
            # Traffic-path composition binds evidence to packets; it
            # implies at least packet digests even at lower detail.
            pass  # allowed: the switch adds the packet digest implicitly

    @property
    def needs_packet_digest(self) -> bool:
        return (
            self.composition is CompositionMode.TRAFFIC_PATH
            or InertiaClass.PACKETS in self.detail.inertia_classes
        )

    @property
    def per_packet_signature(self) -> bool:
        """Whether each attested packet needs a fresh signature.

        Pointwise/chained evidence over cacheable classes can reuse a
        cached signed record; anything involving the packet itself
        cannot.
        """
        return self.needs_packet_digest or (
            self.composition is CompositionMode.CHAINED
        )
