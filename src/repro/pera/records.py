"""Compact signed per-hop evidence records and their wire encoding.

A :class:`HopRecord` is what one PERA switch contributes to a packet's
in-band evidence: which place (or pseudonym) attests, which inertia
classes were measured, the measurement digests, an optional chain head
(Fig. 4 "Chained"/"Traffic Path" composition), and a signature by the
switch's root of trust.

Records serialize as TLVs so they fit the RA shim header body and so
the PISA parser can skip them without understanding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.pera.inertia import InertiaClass
from repro.util.errors import CodecError
from repro.util.tlv import Tlv, TlvCodec

# TLV type codes inside a record.
_T_PLACE = 1
_T_MEASUREMENT = 2  # value: class (1B) + digest
_T_CHAIN_HEAD = 3
_T_PACKET_DIGEST = 4
_T_SIGNATURE = 5
_T_SEQUENCE = 6  # value: 4-byte attestation sequence number
_T_INGRESS_PORT = 7  # value: 2-byte port the packet arrived on

# TLV type for one whole record when stacked in a shim body.
RECORD_TLV_TYPE = 0x10


@dataclass(frozen=True)
class HopRecord:
    """One hop's signed evidence contribution.

    ``ingress_port`` reproduces the paper's UC1 example — evidence
    "could indicate that p reached switch S1 on a specific network
    port" — and is covered by the signature like every other field.
    """

    place: str  # real name or per-user pseudonym
    measurements: Tuple[Tuple[InertiaClass, bytes], ...]
    sequence: int = 0
    ingress_port: Optional[int] = None
    chain_head: Optional[bytes] = None
    packet_digest: Optional[bytes] = None
    signature: bytes = b""

    # --- signing --------------------------------------------------------

    def signed_payload(self) -> bytes:
        """The bytes the signature covers (everything but itself)."""
        elements = [Tlv(_T_PLACE, self.place.encode("utf-8"))]
        for inertia, value in self.measurements:
            elements.append(Tlv(_T_MEASUREMENT, bytes([inertia.value]) + value))
        elements.append(Tlv(_T_SEQUENCE, self.sequence.to_bytes(4, "big")))
        if self.ingress_port is not None:
            elements.append(
                Tlv(_T_INGRESS_PORT, self.ingress_port.to_bytes(2, "big"))
            )
        if self.chain_head is not None:
            elements.append(Tlv(_T_CHAIN_HEAD, self.chain_head))
        if self.packet_digest is not None:
            elements.append(Tlv(_T_PACKET_DIGEST, self.packet_digest))
        return TlvCodec.encode(elements)

    def sign_with(self, keys: KeyPair) -> "HopRecord":
        """Return a copy carrying ``keys``' signature."""
        return HopRecord(
            place=self.place,
            measurements=self.measurements,
            sequence=self.sequence,
            ingress_port=self.ingress_port,
            chain_head=self.chain_head,
            packet_digest=self.packet_digest,
            signature=keys.sign(self.signed_payload()),
        )

    def verify(self, anchors: KeyRegistry, signer: Optional[str] = None) -> bool:
        """Verify the signature against the anchor of ``signer`` (defaults
        to the record's own place name)."""
        return anchors.verify(
            signer or self.place, self.signed_payload(), self.signature
        )

    # --- wire form ---------------------------------------------------------

    def encode(self) -> bytes:
        return self.signed_payload() + Tlv(_T_SIGNATURE, self.signature).encode()

    @classmethod
    def decode(cls, data: bytes) -> "HopRecord":
        place: Optional[str] = None
        measurements: List[Tuple[InertiaClass, bytes]] = []
        sequence = 0
        ingress_port: Optional[int] = None
        chain_head: Optional[bytes] = None
        packet_digest: Optional[bytes] = None
        signature = b""
        for element in TlvCodec.iter_decode(data):
            if element.type == _T_PLACE:
                place = element.value.decode("utf-8")
            elif element.type == _T_MEASUREMENT:
                if len(element.value) < 1:
                    raise CodecError("measurement TLV too short")
                try:
                    inertia = InertiaClass(element.value[0])
                except ValueError as exc:
                    raise CodecError(
                        f"unknown inertia class {element.value[0]}"
                    ) from exc
                measurements.append((inertia, element.value[1:]))
            elif element.type == _T_SEQUENCE:
                sequence = int.from_bytes(element.value, "big")
            elif element.type == _T_INGRESS_PORT:
                ingress_port = int.from_bytes(element.value, "big")
            elif element.type == _T_CHAIN_HEAD:
                chain_head = element.value
            elif element.type == _T_PACKET_DIGEST:
                packet_digest = element.value
            elif element.type == _T_SIGNATURE:
                signature = element.value
            else:
                raise CodecError(f"unknown hop-record TLV type {element.type}")
        if place is None:
            raise CodecError("hop record missing place")
        return cls(
            place=place,
            measurements=tuple(measurements),
            sequence=sequence,
            ingress_port=ingress_port,
            chain_head=chain_head,
            packet_digest=packet_digest,
            signature=signature,
        )

    def measurement_for(self, inertia: InertiaClass) -> Optional[bytes]:
        for klass, value in self.measurements:
            if klass is inertia:
                return value
        return None


def encode_record_stack(records: List[HopRecord]) -> bytes:
    """Serialize a list of hop records as a TLV stream."""
    return TlvCodec.encode(
        [Tlv(RECORD_TLV_TYPE, record.encode()) for record in records]
    )


def decode_record_stack(data: bytes) -> List[HopRecord]:
    """Parse a TLV stream of hop records; non-record TLVs are skipped."""
    records: List[HopRecord] = []
    for element in TlvCodec.iter_decode(data):
        if element.type == RECORD_TLV_TYPE:
            records.append(HopRecord.decode(element.value))
    return records
