"""Compact signed per-hop evidence records — views over the substrate.

A :class:`HopRecord` is what one PERA switch contributes to a packet's
in-band evidence: which place (or pseudonym) attests, which inertia
classes were measured, the measurement digests, an optional chain head
(Fig. 4 "Chained"/"Traffic Path" composition), and a signature by the
switch's root of trust.

Since the evidence-substrate refactor a record *is* a canonical
:class:`~repro.evidence.nodes.HopEvidence` node specialized with PERA's
:class:`~repro.pera.inertia.InertiaClass` vocabulary: the wire form,
content digests and the record-stack framing all come from
:mod:`repro.evidence.codec` (one codec for the whole system), and the
cached per-node digests feed the appraiser's chain replay without
re-hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.merkle import MerkleProof
from repro.evidence import codec as evidence_codec
from repro.evidence.codec import (  # noqa: F401  (re-exports)
    BATCHED_RECORD_TLV_TYPE,
    RECORD_TLV_TYPE,
)
from repro.evidence.nodes import BatchedHopEvidence, HopEvidence
from repro.evidence.verify import (
    SignatureCache,
    registry_verify,
    registry_verify_batch,
)
from repro.pera.inertia import InertiaClass
from repro.util.errors import CodecError


def _share_payload(node: HopEvidence, record: HopEvidence) -> None:
    """Hand a node's cached signed-payload bytes to its specialization.

    The zero-copy decoder seeds ``_payload`` from the received wire;
    without this, every ``from_node`` specialization would re-encode
    the payload before its first signature or proof check.
    """
    cached = node.__dict__.get("_payload")
    if cached is not None:
        object.__setattr__(record, "_payload", cached)


@dataclass(frozen=True)
class HopRecord(HopEvidence):
    """One hop's signed evidence contribution.

    ``ingress_port`` reproduces the paper's UC1 example — evidence
    "could indicate that p reached switch S1 on a specific network
    port" — and is covered by the signature like every other field.

    ``measurements`` holds ``(InertiaClass, digest)`` pairs; the base
    node stores the class codes, so a record and its canonical node
    share one wire form and one cached content digest.
    """

    measurements: Tuple[Tuple[InertiaClass, bytes], ...] = ()

    # --- signing --------------------------------------------------------

    def sign_with(self, keys: KeyPair) -> "HopRecord":
        """Return a copy carrying ``keys``' signature."""
        return HopRecord(
            place=self.place,
            measurements=self.measurements,
            sequence=self.sequence,
            ingress_port=self.ingress_port,
            chain_head=self.chain_head,
            packet_digest=self.packet_digest,
            signature=keys.sign(self.signed_payload()),
        )

    def verify(self, anchors: KeyRegistry, signer: Optional[str] = None) -> bool:
        """Verify the signature against the anchor of ``signer`` (defaults
        to the record's own place name). Verdicts are memoized keyed by
        (key id, payload digest, signature)."""
        return registry_verify(
            anchors,
            signer or self.place,
            self.signed_payload(),
            self.signature,
            message_digest=self.payload_digest(),
        )

    # --- wire form ---------------------------------------------------------

    def encode(self) -> bytes:
        """The flat hop-record TLV stream (unwrapped legacy framing)."""
        return evidence_codec.encode_hop_body(self)

    @classmethod
    def from_node(cls, node: HopEvidence) -> "HopRecord":
        """Specialize a canonical hop node with PERA's inertia classes."""
        try:
            measurements = tuple(
                (InertiaClass(code), value) for code, value in node.measurements
            )
        except ValueError as exc:
            raise CodecError(f"unknown inertia class in hop record: {exc}") from exc
        record = cls(
            place=node.place,
            measurements=measurements,
            sequence=node.sequence,
            ingress_port=node.ingress_port,
            chain_head=node.chain_head,
            packet_digest=node.packet_digest,
            signature=node.signature,
        )
        _share_payload(node, record)
        return record

    @classmethod
    def decode(cls, data) -> "HopRecord":
        return cls.from_node(evidence_codec.decode_hop_body(data))

    def measurement_for(self, inertia: InertiaClass) -> Optional[bytes]:
        for klass, value in self.measurements:
            if klass is inertia:
                return value
        return None


@dataclass(frozen=True)
class BatchedHopRecord(BatchedHopEvidence, HopRecord):
    """A hop record amortized under an epoch-root signature.

    Produced by :class:`~repro.pera.epoch.EpochBatcher` when a switch
    runs in epoch-batched mode: the per-record ``signature`` stays
    empty, and trust flows root-signature → Merkle proof → payload.

    :meth:`verify` checks both legs. The root-signature check goes
    through the memoized substrate verify keyed on the *epoch payload
    digest* — shared by every record of the epoch — so an appraiser
    pays one real Ed25519 verification per (switch, epoch) and two
    SHA-256 hashes per tree level per record after that.
    """

    measurements: Tuple[Tuple[InertiaClass, bytes], ...] = ()

    @classmethod
    def from_record(
        cls,
        record: HopRecord,
        epoch_id: int,
        epoch_root: bytes,
        root_signature: bytes,
        proof: MerkleProof,
    ) -> "BatchedHopRecord":
        """Attach an epoch-root header + inclusion proof to a record."""
        batched = cls(
            place=record.place,
            measurements=record.measurements,
            sequence=record.sequence,
            ingress_port=record.ingress_port,
            chain_head=record.chain_head,
            packet_digest=record.packet_digest,
            signature=b"",
            epoch_id=epoch_id,
            epoch_root=epoch_root,
            root_signature=root_signature,
            leaf_index=proof.leaf_index,
            leaf_count=proof.leaf_count,
            proof_path=proof.path,
        )
        # The signed payload covers exactly the fields copied above, and
        # the seal just computed it as this record's Merkle leaf — share
        # the cached bytes instead of re-encoding them per packet.
        object.__setattr__(batched, "_payload", record.signed_payload())
        return batched

    @classmethod
    def from_batched_node(cls, node: BatchedHopEvidence) -> "BatchedHopRecord":
        """Specialize a decoded batched node with PERA's inertia classes."""
        try:
            measurements = tuple(
                (InertiaClass(code), value) for code, value in node.measurements
            )
        except ValueError as exc:
            raise CodecError(f"unknown inertia class in hop record: {exc}") from exc
        record = cls(
            place=node.place,
            measurements=measurements,
            sequence=node.sequence,
            ingress_port=node.ingress_port,
            chain_head=node.chain_head,
            packet_digest=node.packet_digest,
            signature=b"",
            epoch_id=node.epoch_id,
            epoch_root=node.epoch_root,
            root_signature=node.root_signature,
            leaf_index=node.leaf_index,
            leaf_count=node.leaf_count,
            proof_path=node.proof_path,
        )
        _share_payload(node, record)
        return record

    def verify_root(
        self, anchors: KeyRegistry, signer: Optional[str] = None
    ) -> bool:
        """Verify the epoch-root signature (memoized once per epoch)."""
        return registry_verify(
            anchors,
            signer or self.place,
            self.epoch_payload(),
            self.root_signature,
            message_digest=self.epoch_payload_digest(),
        )

    def verify(self, anchors: KeyRegistry, signer: Optional[str] = None) -> bool:
        """Root signature valid *and* proof binds this payload to it."""
        return self.verify_root(anchors, signer=signer) and self.proof_ok()


def encode_record_stack(records: Sequence[HopRecord]) -> bytes:
    """Serialize hop records as the shared shim-body TLV stream."""
    return evidence_codec.encode_record_stack(records)


def decode_record_stack(data) -> List[HopRecord]:
    """Parse a shim-body TLV stream of hop records; other TLVs are
    skipped (compiled policies share the same body). Accepts ``bytes``
    or a ``memoryview`` over the packet buffer (zero-copy)."""
    return [
        BatchedHopRecord.from_batched_node(node)
        if isinstance(node, BatchedHopEvidence)
        else HopRecord.from_node(node)
        for node in evidence_codec.decode_record_stack(data)
    ]


def verify_record_batch(
    anchors: KeyRegistry,
    records: Sequence[HopRecord],
    signers: Optional[Sequence[Optional[str]]] = None,
    cache: Optional[SignatureCache] = None,
) -> List[bool]:
    """Verify many records' signatures with one batched check.

    Verdict-for-verdict identical to calling ``record.verify(anchors)``
    per record (same memo cache, same accounting), but every cache miss
    — per-record signatures and epoch-root signatures alike — settles
    in a single multi-scalar Ed25519 check. Batched records still pay
    their per-record Merkle proof walk, short-circuited exactly like
    the sequential path (no proof walk under a bad root).
    """
    items = []
    for index, record in enumerate(records):
        signer = signers[index] if signers is not None else None
        signer = signer or record.place
        if isinstance(record, BatchedHopRecord):
            items.append(
                (
                    signer,
                    record.epoch_payload(),
                    record.root_signature,
                    record.epoch_payload_digest(),
                )
            )
        else:
            items.append(
                (
                    signer,
                    record.signed_payload(),
                    record.signature,
                    record.payload_digest(),
                )
            )
    verdicts = registry_verify_batch(anchors, items, cache=cache)
    return [
        ok and (record.proof_ok() if isinstance(record, BatchedHopRecord) else True)
        for ok, record in zip(verdicts, records)
    ]
