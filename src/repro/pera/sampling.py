"""Evidence sampling: how often a PERA switch attests (paper §5.2).

"For some situations, it might be adequate to expect evidence to be
gathered for each packet ... But in other situations, such per-packet
overhead might be cumbersome and prohibitive." The sampler decides,
per packet, whether this hop produces evidence.

Strategies are deterministic (hash-based, not RNG-state-based) so that
two switches with the same spec sample the same packets — useful for
path composition — and so simulations replay exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.errors import ConfigError


class SamplingMode(enum.Enum):
    """How often a PERA hop produces evidence."""

    EVERY_PACKET = "every_packet"
    ONE_IN_N = "one_in_n"
    PERIODIC = "periodic"  # at most one evidence per period (seconds)
    FIRST_OF_FLOW = "first_of_flow"


@dataclass(frozen=True)
class SamplingSpec:
    mode: SamplingMode = SamplingMode.EVERY_PACKET
    n: int = 1  # for ONE_IN_N
    period_s: float = 1.0  # for PERIODIC

    def __post_init__(self) -> None:
        if self.mode is SamplingMode.ONE_IN_N and self.n < 1:
            raise ConfigError(f"one-in-N sampling needs n >= 1, got {self.n}")
        if self.mode is SamplingMode.PERIODIC and self.period_s <= 0:
            raise ConfigError(
                f"periodic sampling needs a positive period, got {self.period_s}"
            )


class Sampler:
    """Stateful per-switch sampler."""

    def __init__(self, spec: SamplingSpec) -> None:
        self.spec = spec
        self._counter = 0
        self._last_emit: Optional[float] = None
        self._seen_flows: set = set()
        self.sampled = 0
        self.skipped = 0

    def should_attest(self, now: float, flow_key: Tuple = ()) -> bool:
        """Decide for one packet; updates internal counters."""
        decision = self._decide(now, flow_key)
        if decision:
            self.sampled += 1
        else:
            self.skipped += 1
        return decision

    def _decide(self, now: float, flow_key: Tuple) -> bool:
        mode = self.spec.mode
        if mode is SamplingMode.EVERY_PACKET:
            return True
        if mode is SamplingMode.ONE_IN_N:
            self._counter += 1
            if self._counter >= self.spec.n:
                self._counter = 0
                return True
            return False
        if mode is SamplingMode.PERIODIC:
            if self._last_emit is None or now - self._last_emit >= self.spec.period_s:
                self._last_emit = now
                return True
            return False
        if mode is SamplingMode.FIRST_OF_FLOW:
            if flow_key in self._seen_flows:
                return False
            self._seen_flows.add(flow_key)
            return True
        raise ConfigError(f"unknown sampling mode {mode!r}")

    @property
    def sample_rate(self) -> float:
        total = self.sampled + self.skipped
        return self.sampled / total if total else 0.0
