"""Epoch-batched signing: one Merkle root signature per record epoch.

The paper's Fig. 4 argues low-inertia evidence (program state, packets)
"changes quickly" and so cannot be *cached* — but it can still be
*amortized*. An :class:`EpochBatcher` accumulates the unsigned hop
records a switch produces during one **epoch**, builds a Merkle tree
over their signed payloads, signs only the root, and releases each
record as a :class:`~repro.pera.records.BatchedHopRecord` carrying the
epoch-root header plus its O(log n) inclusion proof.

An epoch seals when it reaches ``max_records``, when ``max_delay_s``
simulated seconds elapse (the switch schedules a timer through its
simulator), or on explicit flush — whichever comes first. Sealing is
synchronous and ordered: records are released in the order they were
added, so chained composition and FIFO delivery survive batching.

Security argument (docs/BATCHING.md has the long form): the root
signature covers ``epoch_root_payload(place, epoch_id, root,
leaf_count)``, so a proof from one epoch or one switch cannot be
replayed against another, and any flipped payload byte breaks the
Merkle proof exactly as it would break a per-record signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.merkle import MerkleTree
from repro.evidence.nodes import epoch_root_payload
from repro.evidence.verify import (
    SignatureCache,
    registry_verify,
    registry_verify_batch,
)
from repro.pera.config import BatchingSpec
from repro.pera.records import BatchedHopRecord, HopRecord

# A release callback receives the proof-bearing record that replaces
# the unsigned one passed to ``add``.
ReleaseFn = Callable[[BatchedHopRecord], None]


@dataclass
class EpochStats:
    """Counters for the batching layer (mirrored into telemetry gauges)."""

    epochs_sealed: int = 0
    records_batched: int = 0
    sealed_on_count: int = 0
    sealed_on_timer: int = 0
    sealed_on_flush: int = 0
    largest_epoch: int = 0


@dataclass(frozen=True)
class SealedEpoch:
    """What one sealed epoch committed to: id, root, signature, size."""

    epoch_id: int
    root: bytes
    root_signature: bytes
    leaf_count: int
    reason: str


class EpochBatcher:
    """Accumulates unsigned hop records and seals them under one root.

    The batcher itself is policy-free: it does not schedule timers or
    emit packets. The owning switch calls :meth:`add` per record,
    triggers :meth:`seal` on its count/timer/flush policy, and passes a
    per-record release callback that re-injects the proof-bearing
    record into whatever channel (in-band shim, out-of-band push) the
    original was destined for.
    """

    def __init__(self, place: str, keys: KeyPair, spec: BatchingSpec) -> None:
        self.place = place
        self.keys = keys
        self.spec = spec
        self.stats = EpochStats()
        self.epoch_id = 1
        self._pending: List[Tuple[HopRecord, ReleaseFn]] = []

    @property
    def open_count(self) -> int:
        """Records waiting in the currently open epoch."""
        return len(self._pending)

    def add(self, record: HopRecord, release: ReleaseFn) -> None:
        """Queue one unsigned record for the open epoch."""
        self._pending.append((record, release))

    def seal(
        self,
        reason: str = "flush",
        on_sealed: Optional[Callable[[SealedEpoch], None]] = None,
    ) -> Optional[SealedEpoch]:
        """Close the open epoch: sign the root, release every record.

        ``on_sealed`` fires *before* the releases so the owning switch
        can account the signature (audit events, cost model) ahead of
        the packets that carry it. Returns ``None`` on an empty epoch.
        """
        if not self._pending:
            return None
        pending, self._pending = self._pending, []
        epoch_id = self.epoch_id
        self.epoch_id += 1

        tree = MerkleTree([record.signed_payload() for record, _ in pending])
        root = tree.root
        signature = self.keys.sign(
            epoch_root_payload(self.place, epoch_id, root, tree.leaf_count)
        )
        sealed = SealedEpoch(
            epoch_id=epoch_id,
            root=root,
            root_signature=signature,
            leaf_count=tree.leaf_count,
            reason=reason,
        )

        self.stats.epochs_sealed += 1
        self.stats.records_batched += len(pending)
        self.stats.largest_epoch = max(self.stats.largest_epoch, len(pending))
        if reason == "count":
            self.stats.sealed_on_count += 1
        elif reason == "timer":
            self.stats.sealed_on_timer += 1
        else:
            self.stats.sealed_on_flush += 1

        if on_sealed is not None:
            on_sealed(sealed)
        for index, (record, release) in enumerate(pending):
            release(
                BatchedHopRecord.from_record(
                    record, epoch_id, root, signature, tree.prove(index)
                )
            )
        return sealed

    def seal_if(
        self,
        epoch_id: int,
        reason: str = "timer",
        on_sealed: Optional[Callable[[SealedEpoch], None]] = None,
    ) -> Optional[SealedEpoch]:
        """Seal only if epoch ``epoch_id`` is still the open one.

        This is the timer callback shape: a timer armed when epoch N
        opened must be a no-op if N already sealed on record count.
        """
        if epoch_id != self.epoch_id or not self._pending:
            return None
        return self.seal(reason=reason, on_sealed=on_sealed)


class EpochRootVerifier:
    """The verifier-side dual of :class:`EpochBatcher`.

    Where the batcher amortizes *signing* over an epoch, this amortizes
    *verification* over many epochs: callers enqueue the batched
    records they intend to appraise, distinct (signer, epoch) roots are
    deduplicated, and :meth:`flush` settles every pending root
    signature through one multi-scalar batched check — so an appraiser
    draining a burst of records from many switches pays one Ed25519
    batch equation, not one verification per epoch.

    Verdicts land in the shared memoized verify cache, so subsequent
    per-record :meth:`BatchedHopRecord.verify_root` calls (and any
    interleaved sequential appraisal) are dict hits with identical
    accounting.
    """

    def __init__(
        self,
        anchors: KeyRegistry,
        cache: Optional[SignatureCache] = None,
    ) -> None:
        self.anchors = anchors
        self.cache = cache
        self._pending: List[Tuple[str, BatchedHopRecord]] = []
        self._queued: set = set()

    @property
    def pending_count(self) -> int:
        """Distinct (signer, epoch) roots awaiting the next flush."""
        return len(self._pending)

    def add(self, record: BatchedHopRecord, signer: Optional[str] = None) -> None:
        """Queue one record's epoch root for the next batched flush."""
        signer = signer or record.place
        dedup = (signer, record.epoch_payload_digest(), record.root_signature)
        if dedup in self._queued:
            return
        self._queued.add(dedup)
        self._pending.append((signer, record))

    def flush(self) -> Dict[Tuple[str, bytes, bytes], bool]:
        """Settle every queued root in one batched check.

        Returns ``{(signer, epoch_payload_digest, root_signature):
        verdict}`` for the roots settled by this flush — the signature
        is part of the key because a forged signature over a genuine
        epoch payload is a *distinct* root claim and must not collide
        with the genuine one. The memo cache keeps the verdicts for
        every later per-record check.
        """
        if not self._pending:
            return {}
        pending, self._pending = self._pending, []
        self._queued.clear()
        items = [
            (
                signer,
                record.epoch_payload(),
                record.root_signature,
                record.epoch_payload_digest(),
            )
            for signer, record in pending
        ]
        verdicts = registry_verify_batch(self.anchors, items, cache=self.cache)
        return {
            (signer, record.epoch_payload_digest(), record.root_signature): verdict
            for (signer, record), verdict in zip(pending, verdicts)
        }

    def verify_records(
        self,
        records: Sequence[BatchedHopRecord],
        signers: Optional[Sequence[Optional[str]]] = None,
    ) -> List[bool]:
        """Batch-verify ``records`` end to end (roots, then proofs).

        Equivalent to ``record.verify(anchors, signer=...)`` per record:
        the epoch roots settle in one batched check and each record
        then pays its Merkle proof walk only under a valid root.
        """
        for index, record in enumerate(records):
            signer = signers[index] if signers is not None else None
            self.add(record, signer=signer)
        roots = self.flush()
        results: List[bool] = []
        for index, record in enumerate(records):
            signer = signers[index] if signers is not None else None
            signer = signer or record.place
            root_ok = roots.get(
                (signer, record.epoch_payload_digest(), record.root_signature)
            )
            if root_ok is None:
                # Root settled by an earlier flush — the memo cache has
                # the verdict; this is a dict hit, not a verification.
                root_ok = registry_verify(
                    self.anchors,
                    signer,
                    record.epoch_payload(),
                    record.root_signature,
                    message_digest=record.epoch_payload_digest(),
                    cache=self.cache,
                )
            results.append(root_ok and record.proof_ok())
        return results
