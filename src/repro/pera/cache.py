"""The evidence cache (paper Fig. 4, "Inertia").

"High-inertia attestations are more easily cached since they take
longer to expire." The cache stores *signed* canonical evidence nodes
(:class:`~repro.pera.records.HopRecord`, a
:class:`~repro.evidence.nodes.HopEvidence`) keyed by inertia class: a
cache hit reuses the measurement, its signature, *and* the node's
cached wire form and content digest — signing and re-encoding are the
expensive per-packet operations PERA must avoid repeating.

Entries also invalidate eagerly when the measured state's digest
changes (a table write or program swap must never serve stale
evidence, however long its TTL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Mapping, Optional, TypeVar

from repro.pera.inertia import DEFAULT_TTLS, InertiaClass
from repro.util.clock import SimClock

V = TypeVar("V")


@dataclass
class _Entry(Generic[V]):
    value: V
    state_digest: bytes
    expires_at: float


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Flat dict view (telemetry collectors and exports use this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class EvidenceCache(Generic[V]):
    """Per-inertia-class evidence cache with TTL + state invalidation."""

    def __init__(
        self,
        clock: SimClock,
        ttls: Optional[Mapping[InertiaClass, float]] = None,
    ) -> None:
        self._clock = clock
        self._ttls = dict(DEFAULT_TTLS)
        if ttls:
            self._ttls.update(ttls)
        self._entries: Dict[InertiaClass, _Entry[V]] = {}
        self.stats = CacheStats()

    def bind_clock(self, clock: SimClock) -> None:
        """Re-point TTL decisions at a (new, possibly skewed) clock.

        Existing entries keep their absolute expiry times; they are
        simply re-judged against the new clock — exactly how a real
        cache experiences clock skew.
        """
        self._clock = clock

    def ttl_for(self, inertia: InertiaClass) -> float:
        return self._ttls.get(inertia, 0.0)

    def get(self, inertia: InertiaClass, state_digest: bytes) -> Optional[V]:
        """Return the cached value if fresh and state-consistent."""
        entry = self._entries.get(inertia)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.state_digest != state_digest:
            self.stats.invalidations += 1
            self.stats.misses += 1
            del self._entries[inertia]
            return None
        if self._clock.now >= entry.expires_at:
            self.stats.misses += 1
            del self._entries[inertia]
            return None
        self.stats.hits += 1
        return entry.value

    def put(self, inertia: InertiaClass, state_digest: bytes, value: V) -> None:
        ttl = self.ttl_for(inertia)
        if ttl <= 0 or not inertia.cacheable:
            return  # uncacheable classes are never stored
        self._entries[inertia] = _Entry(
            value=value,
            state_digest=state_digest,
            expires_at=self._clock.now + ttl,
        )

    def invalidate(self, inertia: Optional[InertiaClass] = None) -> None:
        if inertia is None:
            self._entries.clear()
        else:
            self._entries.pop(inertia, None)

    def __len__(self) -> int:
        return len(self._entries)
