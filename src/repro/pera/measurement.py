"""The measurement engine: digests for every inertia class.

This is the software stand-in for the "specialized hardware primitives
that can produce and consume evidence" (§5.2) — the trusted component
of the threat model. It reads the switch's true state (hardware
identity, installed program, table contents, register state, the
packet in flight) and produces domain-separated digests. It does not
lie: the threat model trusts exactly this component and nothing else.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import digest, measure_mapping
from repro.pera.inertia import InertiaClass
from repro.pisa.pipeline import PacketContext, Pipeline
from repro.util.errors import PipelineError


class MeasurementEngine:
    """Measures one switch's state, one inertia class at a time."""

    def __init__(self, hardware_identity: bytes) -> None:
        self.hardware_identity = hardware_identity
        self.measurements_taken = 0

    def measure(
        self,
        inertia: InertiaClass,
        pipeline: Optional[Pipeline],
        ctx: Optional[PacketContext] = None,
    ) -> bytes:
        """Produce the digest for ``inertia`` given current state."""
        self.measurements_taken += 1
        if inertia is InertiaClass.HARDWARE:
            return digest(self.hardware_identity, domain="pera-hardware")
        if pipeline is None:
            raise PipelineError(
                f"cannot measure {inertia.name}: no pipeline installed"
            )
        if inertia is InertiaClass.PROGRAM:
            return digest(pipeline.program.measurement(), domain="pera-program")
        if inertia is InertiaClass.TABLES:
            return measure_mapping(pipeline.measure_tables(), domain="pera-tables")
        if inertia is InertiaClass.PROG_STATE:
            return measure_mapping(pipeline.measure_state(), domain="pera-state")
        if inertia is InertiaClass.PACKETS:
            if ctx is None:
                raise PipelineError("packet measurement requires a packet context")
            packet = ctx.packet
            wire = packet.encode() if packet is not None else ctx.payload
            return digest(wire, domain="pera-packet")
        raise PipelineError(f"unknown inertia class {inertia!r}")
