"""PeraSwitch: the attesting switch of the paper's Fig. 3.

Extends :class:`~repro.pisa.switch.PisaSwitch` with the two RA blocks:

- **Sign/Verify** — an Ed25519 root of trust keyed per switch.
- **Evidence Create/Inspect/Compose** — builds :class:`HopRecord`s per
  the configured design-space point, pushes them in-band (into the RA
  shim header) or sends them out-of-band (control channel to the
  appraiser), and can inspect records on incoming packets for
  evidence-gated forwarding (use case UC3).

Cost accounting mirrors Fig. 3's concern ("Evidence-handling is tuned
to balance performance and security"): every measurement, hash and
signature adds to ``ra_cost`` using the pipeline's cost model, and the
cache avoids exactly the operations a real ASIC would want to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.crypto.hashing import HashChain, digest
from repro.crypto.keys import KeyPair
from repro.faults.retry import RetryPolicy
from repro.net.headers import RaShimHeader
from repro.net.packet import Packet
from repro.pera.cache import EvidenceCache
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.epoch import EpochBatcher, SealedEpoch
from repro.pera.inertia import InertiaClass
from repro.pera.measurement import MeasurementEngine
from repro.pera.records import (
    BatchedHopRecord,
    HopRecord,
    decode_record_stack,
    encode_record_stack,
)
from repro.pera.sampling import Sampler
from repro.pisa.pipeline import DROP_PORT, PacketContext
from repro.pisa.switch import PisaSwitch
from repro.telemetry.audit import AuditKind, Check
from repro.telemetry.spans import NULL_SPAN
from repro.util.clock import SimClock, SkewedClock
from repro.util.errors import CodecError, PipelineError


@dataclass
class RaStats:
    """Per-switch attestation accounting."""

    packets_attested: int = 0
    packets_skipped_by_sampling: int = 0
    measurements_taken: int = 0
    records_created: int = 0
    records_from_cache: int = 0
    signatures_produced: int = 0
    out_of_band_sent: int = 0
    evidence_bytes_added: int = 0
    gated_drops: int = 0
    # Out-of-band delivery resilience (see the switch's retry_policy).
    oob_send_failures: int = 0
    oob_retries: int = 0
    oob_recovered: int = 0
    oob_gave_up: int = 0
    # Incoming shim bodies that would not decode (bit corruption).
    undecodable_evidence: int = 0
    # Epoch-batched signing (config.batching): one root signature per
    # sealed epoch instead of one per record.
    epochs_sealed: int = 0
    records_batched: int = 0


class PeraSwitch(PisaSwitch):
    """A PISA switch extended with remote attestation."""

    def __init__(
        self,
        name: str,
        config: Optional[EvidenceConfig] = None,
        hardware_identity: Optional[bytes] = None,
        appraiser_node: Optional[str] = None,
        out_of_band: bool = False,
        pseudonym: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        mirror_out_of_band: bool = False,
    ) -> None:
        super().__init__(name)
        self.config = config or EvidenceConfig()
        self.keys = KeyPair.generate(name)
        self.engine = MeasurementEngine(
            hardware_identity or f"asic-serial-{name}".encode()
        )
        self.sampler = Sampler(self.config.sampling)
        self.appraiser_node = appraiser_node
        self.out_of_band = out_of_band
        self.pseudonym = pseudonym
        # Retry/backoff for out-of-band evidence the control channel
        # rejects at send time (crashed appraiser, stripped channel).
        self.retry_policy = retry_policy
        # Also copy in-band evidence to the appraiser (audit mirror),
        # when an appraiser_node is configured.
        self.mirror_out_of_band = mirror_out_of_band
        self.ra_stats = RaStats()
        self.ra_cost = 0.0
        self._attest_sequence = 0
        self._cache: Optional[EvidenceCache[HopRecord]] = None
        self._batcher: Optional[EpochBatcher] = None
        # (epoch_id, absolute deadline) of the armed epoch timer, for
        # the sharded runner's window-barrier sweep (see
        # :meth:`seal_overdue_epochs`).
        self._epoch_deadline: Optional[Tuple[int, float]] = None
        # (epoch_id, sim time the first record arrived) — feeds the
        # deterministic seal-latency histogram at seal time.
        self._epoch_opened_at: Optional[Tuple[int, float]] = None
        # Control-plane writes invalidate cached evidence immediately.
        self.runtime.change_observers.append(self._on_control_change)
        # Evidence gate (UC3): when set, packets failing the gate drop.
        self.evidence_gate: Optional[
            Callable[[PacketContext, List[HopRecord]], bool]
        ] = None

    # --- lifecycle -----------------------------------------------------------

    def on_bind(self, sim) -> None:
        super().on_bind(sim)
        self._cache = EvidenceCache(sim.clock, ttls=self.config.cache_ttls)
        # Epoch sealing joins the window barrier under sharding: the
        # hook catches a deadline that fell exactly at a window edge
        # (the monolithic engine never fires barrier hooks, and the
        # armed timer event already handles everything in-window).
        add_hook = getattr(sim, "add_barrier_hook", None)
        if add_hook is not None:
            add_hook(self.seal_overdue_epochs)

    @property
    def cache(self) -> EvidenceCache:
        if self._cache is None:
            # Unbound switches (unit tests) get a standalone clock.
            self._cache = EvidenceCache(SimClock(), ttls=self.config.cache_ttls)
        return self._cache

    def notify_state_change(self, inertia: InertiaClass) -> None:
        """Invalidate cached evidence after a control-plane write."""
        self.cache.invalidate(inertia)

    def _on_control_change(self, kind: str) -> None:
        """P4Runtime observer: a write happened on this device.

        A program install invalidates everything; a table write
        invalidates table evidence, and also the cached signed record
        when the active detail level folds table digests into it.
        """
        if self._cache is None:
            return
        if kind == "config":
            self.cache.invalidate()
        elif kind == "table":
            self.cache.invalidate(InertiaClass.TABLES)
            if InertiaClass.TABLES in self.config.detail.inertia_classes:
                self.cache.invalidate(InertiaClass.PROGRAM)

    @property
    def attesting_identity(self) -> str:
        return self.pseudonym or self.name

    @property
    def epoch_batcher(self) -> EpochBatcher:
        """The epoch batcher (batched mode only), created on first use."""
        if self._batcher is None:
            if self.config.batching is None:
                raise PipelineError(
                    f"switch {self.name!r} is not configured for batching"
                )
            self._batcher = EpochBatcher(
                self.attesting_identity, self.keys, self.config.batching
            )
        return self._batcher

    @property
    def _batched_mode(self) -> bool:
        """Epoch batching only replaces *per-packet* signatures.

        Cacheable pointwise evidence already reuses one signed record;
        batching it would only add proof bytes for nothing.
        """
        return (
            self.config.batching is not None and self.config.per_packet_signature
        )

    # --- packet path ------------------------------------------------------------

    def process_context(self, ctx: PacketContext) -> PacketContext:
        ctx = super().process_context(ctx)
        if ctx.egress_spec == DROP_PORT:
            return ctx
        packet = ctx.packet
        wants_ra = ctx.mark_ra or (packet is not None and packet.ra_shim is not None)
        if not wants_ra:
            return ctx
        tel = self.telemetry
        trace = (
            packet.trace if tel.active and packet is not None else None
        )
        records = self.inspect_evidence(packet)
        if tel.active and records:
            tel.audit_event(
                AuditKind.EVIDENCE_INSPECTED,
                self.name,
                trace=trace,
                records=len(records),
                digest=records[-1].content_digest,
            )
        if self.evidence_gate is not None and not self.evidence_gate(ctx, records):
            self.ra_stats.gated_drops += 1
            if tel.active:
                tel.audit_event(
                    AuditKind.GATE_DROPPED,
                    self.name,
                    trace=trace,
                    records=len(records),
                )
            ctx.egress_spec = DROP_PORT
            return ctx
        now = self.sim.clock.now if self.sim is not None else 0.0
        flow_key = packet.five_tuple if packet is not None else ()
        if not self.sampler.should_attest(now, flow_key):
            self.ra_stats.packets_skipped_by_sampling += 1
            if packet is not None and packet.ra_shim is not None:
                ctx.packet = packet.with_shim(packet.ra_shim.with_hop())
            return ctx
        record = self._produce_record(ctx, records)
        self.ra_stats.packets_attested += 1
        if self._batched_mode and not record.signature:
            self._enqueue_batched(ctx, record, trace)
            return ctx
        if self.out_of_band:
            self._send_out_of_band(record, trace=trace)
            if packet is not None and packet.ra_shim is not None:
                ctx.packet = packet.with_shim(packet.ra_shim.with_hop())
        elif packet is not None and packet.ra_shim is not None:
            ctx.packet = self._push_in_band(packet, record)
            if self.mirror_out_of_band and self.appraiser_node is not None:
                self._send_out_of_band(record, trace=trace)
        return ctx

    # --- the Evidence block -----------------------------------------------------

    def inspect_evidence(self, packet: Optional[Packet]) -> List[HopRecord]:
        """Fig. 3 'Inspect': parse the record stack off the shim body.

        A body that will not decode (bit corruption in flight) is
        treated as carrying no usable evidence — counted and journaled,
        never a pipeline crash; downstream appraisal then fails the
        coverage check instead of the whole simulation.
        """
        if packet is None or packet.ra_shim is None:
            return []
        try:
            return decode_record_stack(packet.ra_shim.body)
        except CodecError as exc:
            self.ra_stats.undecodable_evidence += 1
            tel = self.telemetry
            if tel.active:
                tel.audit_event(
                    AuditKind.CHECK_FAILED,
                    self.name,
                    trace=packet.trace,
                    check=Check.SHIM,
                    message=f"evidence stack undecodable: {exc}",
                )
            return []

    def _produce_record(
        self, ctx: PacketContext, prior_records: List[HopRecord]
    ) -> HopRecord:
        """Fig. 3 'Create/Compose': build this hop's signed record.

        Bracketed in a ``pera.attest`` span (with the signing step in
        its own nested ``pera.sign`` span) when telemetry is active —
        the null-span fast path makes this free otherwise. Every step
        (measurement, cache lookup, composition, signature) lands in
        the audit journal linked to the packet's trace context.
        """
        tel = self.telemetry
        if not tel.active:  # skip even the null-span plumbing per packet
            return self._produce_record_inner(ctx, prior_records, NULL_SPAN, None)
        trace = getattr(ctx.packet, "trace", None)
        tags = trace.span_args() if trace is not None else {}
        with tel.span("pera.attest", track=self.name, **tags) as span:
            record = self._produce_record_inner(ctx, prior_records, span, trace)
        return record

    def _produce_record_inner(
        self, ctx: PacketContext, prior_records: List[HopRecord], span, trace
    ) -> HopRecord:
        config = self.config
        tel = self.telemetry
        cost = self.pipeline.cost_model if self.runtime.pipeline else None
        cacheable = not config.per_packet_signature
        if cacheable:
            cached = self.cache.get(InertiaClass.PROGRAM, b"")
            if cached is not None:
                self.ra_stats.records_from_cache += 1
                span.note(cached=True)
                if tel.active:
                    tel.audit_event(
                        AuditKind.EVIDENCE_CACHE_HIT,
                        self.name,
                        trace=trace,
                        digest=cached.content_digest,
                    )
                return cached
            if tel.active:
                tel.audit_event(
                    AuditKind.EVIDENCE_CACHE_MISS, self.name, trace=trace
                )

        measurements: List[Tuple[InertiaClass, bytes]] = []
        for inertia in config.detail.inertia_classes:
            if inertia is InertiaClass.PACKETS:
                continue  # bound separately via packet_digest
            value = self.engine.measure(
                inertia, self.runtime.pipeline, ctx
            )
            measurements.append((inertia, value))
            self.ra_stats.measurements_taken += 1
            if cost is not None:
                self.ra_cost += cost.hash_per_byte * 64
            if tel.active:
                tel.audit_event(
                    AuditKind.MEASUREMENT_TAKEN,
                    self.name,
                    trace=trace,
                    digest=value,
                    inertia=inertia.name.lower(),
                )

        chain_head: Optional[bytes] = None
        if config.composition in (
            CompositionMode.CHAINED,
            CompositionMode.TRAFFIC_PATH,
        ):
            previous = (
                prior_records[-1].chain_head
                if prior_records and prior_records[-1].chain_head is not None
                else HashChain.GENESIS
            )
            chain = HashChain(head=previous)
            link_digest = digest(
                b"".join(value for _, value in measurements),
                domain="hop-measurements",
            )
            chain_head = chain.extend(link_digest)
            if cost is not None:
                self.ra_cost += cost.hash_per_byte * 64
            if tel.active:
                tel.audit_event(
                    AuditKind.EVIDENCE_COMPOSED,
                    self.name,
                    trace=trace,
                    digest=chain_head,
                    mode=config.composition.name.lower(),
                    prior_records=len(prior_records),
                )

        packet_digest: Optional[bytes] = None
        if config.needs_packet_digest:
            packet_digest = self.engine.measure(
                InertiaClass.PACKETS, self.runtime.pipeline, ctx
            )
            self.ra_stats.measurements_taken += 1
            if cost is not None:
                self.ra_cost += cost.hash_per_byte * max(
                    len(ctx.payload) + 64, 64
                )

        self._attest_sequence += 1
        unsigned = HopRecord(
            place=self.attesting_identity,
            measurements=tuple(measurements),
            sequence=self._attest_sequence,
            # A cacheable (reusable) record must not claim anything
            # packet-scoped: the ingress port belongs to one packet.
            ingress_port=None if cacheable else ctx.ingress_port,
            chain_head=chain_head,
            packet_digest=packet_digest,
        )
        if self._batched_mode:
            # Epoch-batched: the record stays unsigned here; the epoch
            # batcher signs one Merkle root over the whole epoch and the
            # per-epoch accounting happens in _on_epoch_sealed.
            record = unsigned
        elif tel.active:
            sign_tags = trace.span_args() if trace is not None else {}
            with tel.span("pera.sign", track=self.name, **sign_tags):
                record = unsigned.sign_with(self.keys)
        else:
            record = unsigned.sign_with(self.keys)
        self.ra_stats.records_created += 1
        if record.signature:
            self.ra_stats.signatures_produced += 1
            if cost is not None:
                self.ra_cost += cost.sign
        if tel.active:
            record_digest = record.content_digest
            if record.signature:
                tel.audit_event(
                    AuditKind.SIGNATURE_MADE,
                    self.name,
                    trace=trace,
                    digest=record_digest,
                    signer=self.attesting_identity,
                )
            tel.audit_event(
                AuditKind.EVIDENCE_CREATED,
                self.name,
                trace=trace,
                digest=record_digest,
                place=record.place,
                sequence=record.sequence,
            )
        if cacheable:
            self.cache.put(InertiaClass.PROGRAM, b"", record)
        return record

    def _push_in_band(self, packet: Packet, record: HopRecord) -> Packet:
        """Fig. 3 (D): append this hop's record to the shim body."""
        shim = packet.ra_shim
        new_body = shim.body + encode_record_stack([record])
        self.ra_stats.evidence_bytes_added += len(new_body) - len(shim.body)
        new_shim = RaShimHeader(
            flags=shim.flags | RaShimHeader.FLAG_EVIDENCE,
            hop_count=shim.hop_count + 1,
            body=new_body,
        )
        if self.telemetry.active:
            self.telemetry.audit_event(
                AuditKind.EVIDENCE_PUSHED,
                self.name,
                trace=packet.trace,
                digest=record.content_digest,
                bytes=len(new_body) - len(shim.body),
                shim_hops=new_shim.hop_count,
            )
        return packet.with_shim(new_shim)

    # --- epoch batching (config.batching) ---------------------------------

    def _enqueue_batched(
        self,
        ctx: PacketContext,
        record: HopRecord,
        trace,
        oob: Optional[bool] = None,
        oob_target: Optional[str] = None,
    ) -> None:
        """Queue an unsigned record for the open epoch.

        Out-of-band mode forwards the packet immediately (hop count
        bumps now; the evidence follows at seal time). In-band mode
        *parks* the packet — its shim must carry the proof-bearing
        record, which only exists once the epoch root is signed — and
        releases it from :meth:`_release_in_band` when the epoch seals.
        """
        batcher = self.epoch_batcher
        spec = self.config.batching
        if batcher.open_count == 0 and self.sim is not None:
            self._epoch_opened_at = (batcher.epoch_id, self.sim.clock.now)
        if (
            batcher.open_count == 0
            and self.sim is not None
            and spec.max_delay_s > 0
        ):
            # Arm the epoch deadline when the first record arrives; the
            # callback is a no-op if the epoch already sealed on count.
            epoch_id = batcher.epoch_id
            self._epoch_deadline = (
                epoch_id, self.sim.clock.now + spec.max_delay_s
            )
            self.sim.schedule(
                spec.max_delay_s, lambda: self._seal_epoch_if(epoch_id)
            )
        send_oob = self.out_of_band if oob is None else oob
        target = oob_target or self.appraiser_node
        packet = ctx.packet
        if send_oob:
            if packet is not None and packet.ra_shim is not None:
                ctx.packet = packet.with_shim(packet.ra_shim.with_hop())

            def release(batched: BatchedHopRecord) -> None:
                previous_target = self.appraiser_node
                self.appraiser_node = target
                try:
                    self._send_out_of_band(batched, trace=trace)
                finally:
                    self.appraiser_node = previous_target

        elif packet is not None and packet.ra_shim is not None:
            ctx._epoch_parked = True

            def release(batched: BatchedHopRecord) -> None:
                self._release_in_band(ctx, batched, trace)

        else:

            def release(batched: BatchedHopRecord) -> None:
                return None

        batcher.add(record, release)
        if batcher.open_count >= spec.max_records:
            self._seal_epoch("count")

    def _release_in_band(
        self, ctx: PacketContext, batched: BatchedHopRecord, trace
    ) -> None:
        """Push the proof-bearing record and forward the parked packet.

        Emission goes through :class:`PisaSwitch`'s ``emit`` directly:
        the parked flag stays set, so the ``handle_packet`` frame that
        parked this context (still on the stack during a count-triggered
        seal) will not emit it a second time.
        """
        if ctx.packet is not None and ctx.packet.ra_shim is not None:
            ctx.packet = self._push_in_band(ctx.packet, batched)
            if self.mirror_out_of_band and self.appraiser_node is not None:
                self._send_out_of_band(batched, trace=trace)
        if self.sim is not None:
            PisaSwitch.emit(self, ctx)

    def _seal_epoch(self, reason: str) -> None:
        self.epoch_batcher.seal(reason=reason, on_sealed=self._on_epoch_sealed)

    def _seal_epoch_if(self, epoch_id: int) -> None:
        """Timer callback: seal epoch ``epoch_id`` if still open."""
        self.epoch_batcher.seal_if(
            epoch_id, reason="timer", on_sealed=self._on_epoch_sealed
        )

    def flush_epochs(self) -> None:
        """Seal any open epoch now (end of run, link teardown)."""
        if self._batcher is not None and self._batcher.open_count:
            self._seal_epoch("flush")

    def seal_overdue_epochs(self) -> None:
        """Window-barrier hook: seal the open epoch if its armed
        deadline has passed.

        Inside a lookahead window the armed timer event itself seals
        the epoch (it sorts before any later event), so this sweep is
        provably a no-op mid-run; it matters only when a bounded run
        stops at ``until`` with the deadline beyond the final window.
        Sealing here uses reason ``"timer"`` via the same
        epoch-id-guarded path, so barrier timing can never double-seal.
        """
        if self._batcher is None or not self._batcher.open_count:
            return
        if self._epoch_deadline is None or self.sim is None:
            return
        epoch_id, deadline = self._epoch_deadline
        if deadline <= self.sim.clock.now:
            self._seal_epoch_if(epoch_id)

    def _on_epoch_sealed(self, sealed: SealedEpoch) -> None:
        """Account one epoch-root signature (fires before the releases)."""
        self.ra_stats.epochs_sealed += 1
        self.ra_stats.records_batched += sealed.leaf_count
        self.ra_stats.signatures_produced += 1
        if self.runtime.pipeline:
            cost = self.pipeline.cost_model
            # One signature plus the Merkle tree build: ~2n-1 hashes of
            # 64-byte nodes for n leaves.
            self.ra_cost += cost.sign
            self.ra_cost += cost.hash_per_byte * 64 * max(
                2 * sealed.leaf_count - 1, 1
            )
        tel = self.telemetry
        if tel.active:
            tel.audit_event(
                AuditKind.SIGNATURE_MADE,
                self.name,
                digest=sealed.root,
                signer=self.attesting_identity,
                epoch=sealed.epoch_id,
            )
            tel.audit_event(
                AuditKind.EPOCH_SEALED,
                self.name,
                epoch=sealed.epoch_id,
                records=sealed.leaf_count,
                reason=sealed.reason,
            )
            # Cumulative seal counter + sim-time seal latency (first
            # record in → root signed): both deterministic — seal
            # times are already byte-pinned via the audit journal — so
            # the flight recorder samples them per window and health
            # rules can watch for a switch going silent.
            tel.counter("pera.epoch_sealed_events", switch=self.name).inc()
            if (
                self.sim is not None
                and self._epoch_opened_at is not None
                and self._epoch_opened_at[0] == sealed.epoch_id
            ):
                tel.histogram(
                    "pera.epoch_seal_sim_seconds", switch=self.name
                ).observe(self.sim.clock.now - self._epoch_opened_at[1])

    def emit(self, ctx: PacketContext) -> None:
        """Suppress emission for packets parked awaiting an epoch seal."""
        if getattr(ctx, "_epoch_parked", False):
            return
        super().emit(ctx)

    def _send_out_of_band(self, record: HopRecord, trace=None) -> None:
        """Fig. 3 (E): evidence leaves separately, to the appraiser.

        ``send_control`` refusing the message (crashed appraiser,
        stripped channel) is no longer silent: failures are counted,
        and with a :class:`RetryPolicy` configured the switch re-offers
        the record on the simulator's clock with exponential backoff —
        journaled as ``recovery.retry`` / ``recovery.recovered`` /
        ``recovery.gave_up`` so the audit trail tells the whole story.
        """
        if self.sim is None or self.appraiser_node is None:
            raise PipelineError(
                f"switch {self.name!r} has no out-of-band appraiser configured"
            )
        encoded = record.encode()
        self.ra_stats.out_of_band_sent += 1
        if self.telemetry.active:
            self.telemetry.audit_event(
                AuditKind.EVIDENCE_SENT_OOB,
                self.name,
                trace=trace,
                digest=record.content_digest,
                to=self.appraiser_node,
            )
        delivered = self.sim.send_control(
            self.name,
            self.appraiser_node,
            record,
            size_hint=len(encoded),
            trace=trace,
        )
        if not delivered:
            self.ra_stats.oob_send_failures += 1
            self._schedule_oob_retry(record, encoded, trace, attempt=1)

    def _schedule_oob_retry(
        self, record: HopRecord, encoded: bytes, trace, attempt: int
    ) -> None:
        policy = self.retry_policy
        tel = self.telemetry
        if policy is None or attempt >= policy.max_attempts:
            self.ra_stats.oob_gave_up += 1
            if tel.active:
                tel.audit_event(
                    AuditKind.RECOVERY_GAVE_UP,
                    self.name,
                    trace=trace,
                    digest=record.content_digest,
                    to=self.appraiser_node,
                    attempts=attempt,
                )
            return
        delay = policy.backoff_delay(attempt)
        self.ra_stats.oob_retries += 1
        if tel.active:
            tel.audit_event(
                AuditKind.RECOVERY_RETRY,
                self.name,
                trace=trace,
                digest=record.content_digest,
                to=self.appraiser_node,
                attempt=attempt,
                delay_s=delay,
            )

        def retry() -> None:
            delivered = self.sim.send_control(
                self.name,
                self.appraiser_node,
                record,
                size_hint=len(encoded),
                trace=trace,
            )
            if delivered:
                self.ra_stats.oob_recovered += 1
                if tel.active:
                    tel.audit_event(
                        AuditKind.RECOVERY_RECOVERED,
                        self.name,
                        trace=trace,
                        digest=record.content_digest,
                        to=self.appraiser_node,
                        attempts=attempt,
                    )
            else:
                self.ra_stats.oob_send_failures += 1
                self._schedule_oob_retry(record, encoded, trace, attempt + 1)

        self.sim.schedule(delay, retry)

    # --- fault hooks ------------------------------------------------------------

    def apply_clock_skew(self, skew_s: float) -> None:
        """Skew this switch's evidence-cache clock (clock-skew fault)."""
        base = self.sim.clock if self.sim is not None else SimClock()
        self.cache.bind_clock(SkewedClock(base, skew_s))
