#!/usr/bin/env python3
"""NetKAT → PISA → attestation: proving a switch runs the policy you wrote.

The paper's UC1 worries about "unvetted or unwanted dataplane programs
that might have been mistakenly or deliberately swapped for the
intended version". When the dataplane program is *compiled from a
NetKAT policy*, attestation closes the loop end to end:

1. the operator writes a NetKAT policy;
2. the compiler (FDD → flow rules) generates a dataplane program and
   its table entries;
3. the program's measurement — knowable *before deployment* — becomes
   the golden reference;
4. the switch attests; the appraiser confirms the switch runs exactly
   the compiled policy, and flags any swap, even to a policy with one
   different rewrite.

Run:  python examples/netkat_attested_policy.py
"""

from repro.core.appraisal import program_reference
from repro.crypto.keys import KeyRegistry
from repro.net.headers import ip_to_int
from repro.net.packet import Packet
from repro.netkat.ast import Filter, ite, mod, pand, seq, test as tst
from repro.netkat.install import compile_to_program, install_policy
from repro.netkat.printer import policy_to_text
from repro.pera.inertia import InertiaClass
from repro.pera.measurement import MeasurementEngine
from repro.pisa.pipeline import DROP_PORT, PacketContext
from repro.pisa.runtime import P4Runtime

WEB = ip_to_int("10.0.1.1")
DB = ip_to_int("10.0.2.1")


def main() -> None:
    # 1. The intended policy: web traffic out port 2 with DSCP marking,
    #    database traffic out port 3, everything else dropped.
    intended = ite(
        pand(tst("ipv4.dst", WEB), tst("udp.dst_port", 80)),
        seq(mod("ipv4.dscp", 46), mod("port", 2)),
        ite(tst("ipv4.dst", DB), mod("port", 3), Filter(tst("ipv4.ttl", 0))),
    )
    print("intended policy:")
    print(f"  {policy_to_text(intended)}")

    # 2. Compile and install.
    runtime = P4Runtime("s1")
    runtime.arbitrate("operator", 1)
    entries = install_policy(runtime, "operator", intended)
    program = runtime.get_forwarding_pipeline_config()
    print(f"compiled to program {program.full_name!r} with {entries} entries")

    # 3. The golden reference is computable offline from the policy.
    golden_program, _ = compile_to_program(intended)
    golden = program_reference(golden_program)
    print(f"golden PROGRAM measurement: {golden.hex()[:32]}…")

    # 4. The switch behaves as the policy says...
    def forwardings():
        results = {}
        for label, dst, port in (("web", WEB, 80), ("db", DB, 5432),
                                 ("other", ip_to_int("10.9.9.9"), 80)):
            packet = Packet.udp_packet(
                src_mac=1, dst_mac=2, src_ip=ip_to_int("10.0.0.1"),
                dst_ip=dst, src_port=1000, dst_port=port,
            )
            ctx = PacketContext.from_packet(packet, ingress_port=1)
            runtime.pipeline.process(ctx)
            results[label] = ctx.egress_spec
        return results

    out = forwardings()
    print(f"forwarding check: web->{out['web']}, db->{out['db']}, "
          f"other->{'drop' if out['other'] == DROP_PORT else out['other']}")
    assert out == {"web": 2, "db": 3, "other": DROP_PORT}

    # 5. ...and attestation proves it.
    engine = MeasurementEngine(b"asic-serial-s1")
    measured = engine.measure(InertiaClass.PROGRAM, runtime.pipeline)
    print(f"attested measurement matches golden: {measured == golden}")
    assert measured == golden

    # 6. A "small" unauthorized change — one rewrite value — is caught.
    tampered = ite(
        pand(tst("ipv4.dst", WEB), tst("udp.dst_port", 80)),
        seq(mod("ipv4.dscp", 46), mod("port", 4)),  # port 4, not 2!
        ite(tst("ipv4.dst", DB), mod("port", 3), Filter(tst("ipv4.ttl", 0))),
    )
    install_policy(runtime, "operator", tampered)
    measured_after = engine.measure(InertiaClass.PROGRAM, runtime.pipeline)
    print(f"after a one-value swap, measurement still matches: "
          f"{measured_after == golden}")
    assert measured_after != golden
    print("-> the appraiser would reject: UC1, closed end to end.")


if __name__ == "__main__":
    main()
