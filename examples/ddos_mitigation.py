#!/usr/bin/env python3
"""UC3 — path evidence as an authorization tag under DDoS.

"Path evidence could be used for DDoS mitigation: while under attack,
a network could drop traffic for which it lacks path-based evidence."

Legitimate traffic enters through attesting switches and accumulates
signed hop records; the botnet injects spoofed traffic directly at the
egress (it even replays a stolen copy of the policy header, but it
cannot forge the hop signatures). The egress switch turns on
evidence-gated forwarding only while under attack.

Run:  python examples/ddos_mitigation.py
"""

from repro.core.usecases import run_ddos_mitigation


def main() -> None:
    print("=== peacetime: no evidence gating ===")
    peace = run_ddos_mitigation(
        legit_packets=20, attack_packets=60, under_attack=False
    )
    print(f"legitimate delivered : {peace.legit_delivered}/{peace.legit_sent}")
    print(f"attack delivered     : {peace.attack_delivered}/{peace.attack_sent}"
          "  <- the attack succeeds")

    print("\n=== under attack: drop traffic lacking path evidence ===")
    war = run_ddos_mitigation(
        legit_packets=20, attack_packets=60, under_attack=True
    )
    print(f"legitimate delivered : {war.legit_delivered}/{war.legit_sent} "
          f"(goodput kept: {war.goodput_kept:.0%})")
    print(f"attack delivered     : {war.attack_delivered}/{war.attack_sent} "
          f"(passed: {war.attack_passed:.0%})")
    print(f"gated drops at egress: {war.gated_drops}")
    assert war.goodput_kept == 1.0 and war.attack_passed == 0.0


if __name__ == "__main__":
    main()
