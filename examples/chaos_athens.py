#!/usr/bin/env python3
"""Chaos engineering for remote attestation: Athens under fire.

The Athens-affair scenario (UC1) re-run while the fault injector
attacks the deployment from every side: the middle link flaps and
drops packets, an attacker swaps a rogue program onto s1 through its
own P4Runtime endpoint, the out-of-band appraiser crashes, and a late
corruption window flips bits in delivered packets.

What the run demonstrates:

- attestation still *detects* the compromise under packet loss,
- the switches' retry/backoff mirrors evidence through the appraiser
  outage (and journal when they give up),
- the controller reprovisions the vetted program by out-bidding the
  attacker's election id,
- corrupted evidence is rejected, never a crash,
- the whole story replays byte-identically from the same seed.

Run:  python examples/chaos_athens.py [--seed N] [--audit-out FILE]
                                      [--shards K] [--backend inline|mp]

With ``--shards`` the campaign runs on the sharded simulation core
(docs/SHARDING.md): the fabric is partitioned into K event loops —
``--backend mp`` forks one worker process per shard — and the merged
canonical audit journal is byte-identical for *any* shard count,
which the determinism check at the end demonstrates against a
1-shard replay.
"""

import argparse

from repro.core.chaos import run_chaos_athens, run_degraded_oob
from repro.faults import FailMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--audit-out", default=None,
        help="write the canonical audit-journal JSON to this file",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run on the sharded core with K partitioned event loops",
    )
    parser.add_argument(
        "--backend", choices=("inline", "mp"), default="inline",
        help="sharded backend: in-process (inline) or multiprocessing "
        "(mp); only meaningful with --shards",
    )
    args = parser.parse_args()

    sharding = dict(shards=args.shards, backend=args.backend) \
        if args.shards else {}
    print(f"=== chaos plan (seed {args.seed}"
          + (f", {args.shards} shards via {args.backend}" if args.shards
             else "") + ") ===")
    result = run_chaos_athens(seed=args.seed, **sharding)
    print(result.plan.describe())

    print("\n=== recovery narrative ===")
    print(result.narrative())
    assert result.first_rejection is not None, "compromise went undetected"
    assert result.recovered_at is not None, "deployment never recovered"

    # The first rejected packet's full causal story, from the journal.
    first_bad = result.verdicts[result.first_rejection]
    print("\n=== why the first rejection happened ===")
    print(first_bad.explain(result.telemetry))

    print("\n=== degraded mode: appraiser down for the whole run ===")
    closed = run_degraded_oob(seed=args.seed)  # fail-closed default
    print(f"fail-closed verdict : {closed.verdict.describe().splitlines()[0]}")
    open_ = run_degraded_oob(seed=args.seed, fail_mode=FailMode.OPEN)
    print(f"fail-open verdict   : {open_.verdict.describe().splitlines()[0]}")
    assert not closed.verdict.accepted and closed.verdict.degraded
    assert open_.verdict.accepted and open_.verdict.degraded

    print("\n=== determinism ===")
    # Sharded runs replay against a 1-shard run: the canonical merged
    # journal must not depend on the partitioning. Monolithic runs
    # replay against themselves.
    replay_kwargs = dict(sharding, shards=1) if args.shards else {}
    replay = run_chaos_athens(seed=args.seed, **replay_kwargs)
    identical = replay.audit_export() == result.audit_export()
    what = (f"{args.shards}-shard vs 1-shard journals"
            if args.shards else "audit journals")
    print(f"replay with seed {args.seed}: {what} byte-identical: "
          f"{identical}")
    assert identical, "same seed must replay byte-identically"

    if args.audit_out:
        from repro.telemetry import dump_audit

        dump_audit(result.telemetry, args.audit_out)
        print(f"audit journal written to {args.audit_out}")


if __name__ == "__main__":
    main()
