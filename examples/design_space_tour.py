#!/usr/bin/env python3
"""Fig. 4 — a tour of PERA's evidence design space.

"In addition to the specification language and execution mechanism, we
envisage a configuration interface that can tune the level of detail
and frequency of evidence." This example runs a 3-switch path at
several points of the Inertia × Detail × Composition space and prints
what each point costs and buys.

Run:  python examples/design_space_tour.py
"""

from repro.core.design_space import format_table, run_design_point, sweep
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.inertia import DEFAULT_TTLS, InertiaClass
from repro.pera.sampling import SamplingMode, SamplingSpec


def main() -> None:
    print("The inertia gradient (cache lifetimes):")
    for inertia in InertiaClass:
        print(f"  {inertia.name:<11} ttl={DEFAULT_TTLS[inertia]:>8.2f}s "
              f"cacheable={inertia.cacheable}")

    print("\nSweep: detail x composition (every packet attested):")
    results = sweep(
        details=[DetailLevel.MINIMAL, DetailLevel.EXPANSIVE],
        compositions=list(CompositionMode),
        packet_count=32,
        switch_count=3,
    )
    print(format_table(results))

    print("\nSampling as the cost lever (traffic-path, minimal detail):")
    sampled = sweep(
        details=[DetailLevel.MINIMAL],
        compositions=[CompositionMode.TRAFFIC_PATH],
        samplings=[
            SamplingSpec(),
            SamplingSpec(mode=SamplingMode.ONE_IN_N, n=4),
            SamplingSpec(mode=SamplingMode.ONE_IN_N, n=16),
        ],
        packet_count=32,
        switch_count=3,
    )
    print(format_table(sampled))

    print("\nReading the space:")
    print(" - pointwise + high-inertia detail caches signed records:")
    print("   near-zero marginal cost, but evidence says nothing about")
    print("   this particular packet or path order;")
    print(" - chaining binds hop ORDER (reorder attacks detected);")
    print(" - traffic-path binds the PACKET (splice attacks detected)")
    print("   at one signature per packet per hop — sampling is how")
    print("   that cost is paid down.")


if __name__ == "__main__":
    main()
