#!/usr/bin/env python3
"""Quickstart: attest a programmable switch end to end.

Builds the smallest interesting deployment — two hosts, one attesting
PERA switch — compiles the paper's AP1 policy for the path, sends one
packet carrying the compiled policy in its RA options header, and
appraises the evidence the packet accumulated.

Run:  python examples/quickstart.py

With ``--trace-out trace.json`` (and/or ``--telemetry-out run.json``,
``--audit-out audit.json``) the run is observed end to end:
per-pipeline-stage spans, evidence counters, the verify-cache hit rate
and the attestation audit journal are exported as a Chrome
``chrome://tracing`` trace / JSON dumps. Exports are registered up
front (``Telemetry.auto_dump``) and flushed inside ``Simulator.run``'s
``try/finally``, so even a crashed run leaves usable artifacts.
Render the audit export with ``python -m repro.telemetry.report``.
"""

import argparse

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import firewall_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.telemetry import Telemetry


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event file of the run",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="write a JSON metrics + spans dump of the run",
    )
    parser.add_argument(
        "--audit-out", metavar="PATH", default=None,
        help="write the attestation audit journal as JSON",
    )
    args = parser.parse_args(argv)
    observe = args.trace_out or args.telemetry_out or args.audit_out
    telemetry = Telemetry() if observe else None
    if telemetry is not None:
        # Crash-safe: Simulator.run flushes these in a try/finally.
        telemetry.auto_dump(
            json_path=args.telemetry_out,
            trace_path=args.trace_out,
            audit_path=args.audit_out,
        )

    # 1. A tiny network: h-src — s1 — h-dst.
    topology = linear_topology(1)
    sim = Simulator(topology, telemetry=telemetry)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    switch = NetworkAwarePeraSwitch(
        "s1", config=EvidenceConfig(composition=CompositionMode.CHAINED)
    )
    for node in (src, dst, switch):
        sim.bind(node)

    # 2. Install the vetted dataplane program via the P4Runtime API.
    program = firewall_program()  # the paper's firewall_v5
    switch.runtime.arbitrate("controller", election_id=1)
    switch.runtime.set_forwarding_pipeline_config("controller", program)
    switch.runtime.write("controller", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))

    # 3. The relying party compiles AP1 for the path it will use.
    policy = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src", "s1", "h-dst"],
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    print(f"compiled policy {policy.policy_id}: attest {policy.hop.attest} "
          f"at every hop, appraise at {policy.appraiser}")

    # 4. Send traffic carrying the compiled policy in-band.
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=b"hello, attested world",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(policy),
        ),
    )
    sim.run()

    # 5. Appraise the delivered packet's path evidence.
    anchors = KeyRegistry()
    anchors.register_pair(switch.keys)
    appraiser = PathAppraiser("Appraiser", telemetry=telemetry, policy=PathAppraisalPolicy(
        anchors=anchors,
        reference_measurements={
            "s1": {
                InertiaClass.HARDWARE: hardware_reference(
                    switch.engine.hardware_identity
                ),
                InertiaClass.PROGRAM: program_reference(program),
            }
        },
        program_names={program_reference(program): program.full_name},
    ))
    packet = dst.received_packets[0]
    verdict = appraiser.appraise_packet(packet, compiled=policy)
    print(verdict.describe())
    assert verdict.accepted

    # 6. Explain the verdict from the audit journal, then re-flush the
    #    exports so the appraisal-side events land in them too.
    if telemetry is not None:
        if verdict.trace_id is not None:
            print("\n--- audit narrative ---")
            print(verdict.explain(telemetry))
        for path in telemetry.flush():
            print(f"telemetry written to {path}")


if __name__ == "__main__":
    main()
