#!/usr/bin/env python3
"""UC2 + AP3 — path evidence as an authentication factor.

A user who forgot their password asks for limited access. The bank
grants it only if the connection demonstrably traversed an acceptable,
fully-attested path (UC2 / policy AP1) — and, separately, a network
enforces that traffic crossed the right middlebox functions in the
right order (policy AP3).

Run:  python examples/path_authentication.py
"""

from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap3_path_check
from repro.core.usecases import run_path_authentication
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import acl_program, firewall_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind


def uc2_second_factor() -> None:
    print("=== UC2: path evidence as a second factor ===")
    home = run_path_authentication(from_home_path=True)
    print(f"from home path   : access granted = {home.access_granted} "
          f"({home.hops_attested} hops attested)")
    unknown = run_path_authentication(from_home_path=False)
    print(f"from unknown path: access granted = {unknown.access_granted}")
    for failure in unknown.verdict.failures:
        print(f"  appraiser: {failure}")


def ap3_function_path() -> None:
    print("\n=== AP3: the path must cross firewall_v5 then ACL_v3 ===")
    firewall = firewall_program()
    acl = acl_program()
    topo = linear_topology(2)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for name, program in (("s1", firewall), ("s2", acl)):
        switch = NetworkAwarePeraSwitch(name)
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)

    compiled = compile_policy_for_path(
        ap3_path_check(),
        path=["h-src", "s1", "s2", "h-dst"],
        bindings={
            "F1": firewall.full_name, "F2": acl.full_name,
            "peer1": "h-src", "peer2": "h-dst",
        },
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=443,
        payload=b"sensitive",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )
    sim.run()

    anchors = KeyRegistry()
    references = {}
    program_names = {}
    for switch, program in zip(switches, (firewall, acl)):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        program_names[program_reference(program)] = program.full_name
    appraiser = PathAppraiser("Appraiser", PathAppraisalPolicy(
        anchors=anchors,
        reference_measurements=references,
        program_names=program_names,
    ))
    verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
    print(verdict.describe())
    assert verdict.accepted


def main() -> None:
    uc2_second_factor()
    ap3_function_path()


if __name__ == "__main__":
    main()
