#!/usr/bin/env python3
"""§4.2 — why sequencing matters: the corrupt/repair adversary.

Reproduces the paper's banking example analysis. Expression (1)
measures the browser monitor and the extensions *in parallel*; an
adversary with userspace control cheats it by scheduling: scan the
extensions with a corrupt monitor, repair the monitor, then let the
antivirus look. Expression (2) sequences and signs the measurements,
forcing any successful adversary to corrupt *between two protocol-
ordered events* — a strictly stronger ("recent") capability.

The analysis below enumerates adversary strategies mechanically, then
the same attack is executed concretely on the Copland VM.

Run:  python examples/adversary_analysis.py
"""

from repro.analysis.trust import hardening_report
from repro.copland.adversary import ProtocolModel
from repro.copland.parser import parse_phrase

EXPR1 = "@ks [av us bmon] -~- @us [bmon us exts]"

MODEL = ProtocolModel(
    residence={"av": "ks", "bmon": "us", "exts": "us"},
    adversary_places=frozenset({"us"}),  # userspace only
    malicious=frozenset({"exts"}),  # the malware must stay installed
)


def main() -> None:
    print("banking example, expression (1):")
    print(f"  {EXPR1}")
    report = hardening_report(parse_phrase(EXPR1), MODEL, at_place="bank")
    print()
    print(report.describe())
    assert report.improved

    print("\nConcrete VM execution of the attack on (1):")
    from repro.copland.vm import CoplandVM, Place
    from repro.copland.evidence import ParallelEvidence
    from repro.crypto.hashing import digest

    vm = CoplandVM()
    vm.register(Place("bank"))
    ks = vm.register(Place("ks"))
    us = vm.register(Place("us"))
    ks.install_component("av", b"antivirus")
    us.install_component("bmon", b"bmon-good")
    us.install_component("exts", b"extensions-good")
    # The adversary corrupts the extensions (malware) and the monitor.
    us.corrupt_component("exts", b"MALWARE")
    us.corrupt_component("bmon", b"bmon-evil")
    # Its schedule: C2 with the lying monitor, repair, then C1.
    c2 = vm.execute(parse_phrase("@us [bmon us exts]"), "bank")
    us.repair_component("bmon")
    c1 = vm.execute(parse_phrase("@ks [av us bmon]"), "bank")
    evidence = ParallelEvidence(left=c1, right=c2)
    golden_exts = digest(b"extensions-good", domain="component-measurement")
    golden_bmon = digest(b"bmon-good", domain="component-measurement")
    exts_reads_clean = c2.value == golden_exts
    bmon_reads_clean = c1.value == golden_bmon
    print(f"  bmon measurement reports clean : {bmon_reads_clean}")
    print(f"  exts measurement reports clean : {exts_reads_clean}")
    print(f"  malware still installed        : "
          f"{us.components['exts'] == b'MALWARE'}")
    assert exts_reads_clean and bmon_reads_clean
    print("  -> the bank accepts while the malware persists.")


if __name__ == "__main__":
    main()
