#!/usr/bin/env python3
"""Fault-matrix sweep: every fault family, one campaign at a time.

Where ``chaos_athens.py`` throws every fault at once, this sweep
replays the same attested deployment once per fault *family* —
link loss, a flapping link, an Athens-style compromise, an appraiser
outage, packet corruption, clock skew, and in-band evidence stripping
— each with a minimal single-fault plan and an expected protocol
signal. A family passes only when its signal actually appeared
(drops counted, evidence rejected, retries engaged, ...), so the
matrix proves each resilience mechanism fires in isolation.

Run:  python examples/fault_matrix.py [--seed N] [--packets N]
                                      [--shards K] [--backend inline|mp]

With ``--shards`` every campaign runs on the sharded simulation core
(docs/SHARDING.md); the closing determinism check replays the matrix
at 1 shard and compares the canonical merged journals byte for byte.
"""

import argparse

from repro.core.chaos import fault_matrix_kinds, run_fault_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--packets", type=int, default=18)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run each campaign on the sharded core with K event loops",
    )
    parser.add_argument(
        "--backend", choices=("inline", "mp"), default="inline",
        help="sharded backend: in-process (inline) or multiprocessing "
        "(mp); only meaningful with --shards",
    )
    args = parser.parse_args()

    sharding = dict(shards=args.shards, backend=args.backend) \
        if args.shards else {}
    print(f"=== fault matrix (seed {args.seed}, {args.packets} packets"
          + (f", {args.shards} shards via {args.backend}" if args.shards
             else "") + ") ===")
    entries = run_fault_matrix(
        seed=args.seed, packets=args.packets, **sharding
    )
    failed = []
    for kind in fault_matrix_kinds():
        entry = entries[kind]
        status = "ok " if entry.signal_seen else "MISSING"
        print(f"  {kind:18s} [{status}] {entry.signal}")
        accepted = sum(1 for v in entry.result.verdicts if v.accepted)
        print(f"  {'':18s}  {len(entry.result.verdicts)} appraised, "
              f"{accepted} accepted, "
              f"{entry.result.stats.packets_dropped} dropped, "
              f"{entry.result.fault_stats.injected} fault(s) injected")
        if not entry.signal_seen:
            failed.append(kind)
    assert not failed, f"expected signals missing for: {failed}"

    if args.shards:
        print("\n=== determinism ===")
        replay = run_fault_matrix(
            seed=args.seed, packets=args.packets, shards=1,
            backend="inline",
        )
        for kind in fault_matrix_kinds():
            a = entries[kind].result.sharded
            b = replay[kind].result.sharded
            identical = (
                a.audit_export() == b.audit_export()
                and a.stats_export() == b.stats_export()
            )
            print(f"  {kind:18s} {args.shards}-shard vs 1-shard "
                  f"byte-identical: {identical}")
            assert identical, f"{kind}: shard count changed the story"


if __name__ == "__main__":
    main()
