#!/usr/bin/env python3
"""UC4 + UC5 — audit trails, cross-referencing, trusted redaction.

UC4: a scanner switch fingerprints malware command-and-control traffic
(AP2). Each finding is attested out-of-band and committed into a
Merkle audit log; an inclusion proof later documents the finding — the
paper's example is justifying a court order to deactivate the malware.

UC5: host-based evidence (the sender's TLS stack, measured with
Copland) composes with network path evidence; only traffic from a
verified TLS implementation over an attested path may leave.

Run:  python examples/audit_and_crossref.py
"""

from repro.core.usecases import (
    run_audit_trail,
    run_compliance_redaction,
    run_cross_referenced,
)


def main() -> None:
    print("=== UC4: attested audit trail of C2 findings ===")
    audit = run_audit_trail(c2_flows=4, benign_flows=10)
    print(f"C2 matches punted & attested : {audit.matches}")
    print(f"audit log Merkle root        : {audit.log_root.hex()[:32]}…")
    print(f"inclusion proofs verify      : {audit.proofs_verify}")
    print(f"record signatures verify     : {audit.verdict_accepted}")
    assert audit.matches == 4 and audit.proofs_verify

    print("\n=== UC5: verified-TLS gating via composed evidence ===")
    good = run_cross_referenced(verified_tls=True)
    print("sender runs verified TLS 1.3:")
    print(f"  host evidence ok  : {good.host_evidence_ok}")
    print(f"  path evidence ok  : {good.path_verdict.accepted}")
    print(f"  flow allowed out  : {good.flow_allowed}")

    bad = run_cross_referenced(verified_tls=False)
    print("sender runs an unvetted TLS fork:")
    print(f"  host evidence ok  : {bad.host_evidence_ok}")
    print(f"  path evidence ok  : {bad.path_verdict.accepted}")
    print(f"  flow allowed out  : {bad.flow_allowed}")
    assert good.flow_allowed and not bad.flow_allowed

    print("\n=== UC5: trusted redaction for the compliance officer ===")
    redacted = run_compliance_redaction(switch_count=5, disclose=(0, 4))
    print(f"hops attested in the cloud   : {redacted.total_hops}")
    print(f"hops disclosed to the officer: {redacted.disclosed_hops} "
          "(ingress + egress)")
    print(f"officer verification         : "
          f"{'PASS' if redacted.compliant else redacted.officer_failures}")
    print(f"internal topology leaked     : {redacted.hidden_places_leaked}")
    assert redacted.compliant and not redacted.hidden_places_leaked


if __name__ == "__main__":
    main()
