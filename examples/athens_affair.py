#!/usr/bin/env python3
"""UC1 — the Athens affair, replayed with and without attestation.

The paper opens with the 2004-05 "Athens Affair": rogue software on
programmable network equipment silently duplicated the prime
minister's calls to attacker-controlled phones, and "the operators of
the network were unaware that their equipment had been subverted".

This example re-stages the attack on a simulated network. Mid-run, an
attacker who has won P4Runtime mastership swaps the vetted firewall
for a byte-compatible rogue variant with a hidden intercept table.
Without RA nothing changes observably; with per-packet attestation the
very first post-swap packet fails appraisal.

Run:  python examples/athens_affair.py
"""

from repro.core.usecases import run_config_assurance
from repro.pera.sampling import SamplingMode, SamplingSpec
from repro.telemetry import Telemetry, use_default


def main() -> None:
    print("=== honest run (no swap) ===")
    honest = run_config_assurance(packets=10, swap_at=None)
    print(f"packets appraised : {len(honest.verdicts)}")
    print(f"rejections        : {sum(not v.accepted for v in honest.verdicts)}")
    print(f"calls exfiltrated : {honest.exfiltrated}")

    # The attack run is traced: the audit journal explains, hop by hop,
    # WHY the first rogue packet was rejected — the observability the
    # Athens operators lacked.
    telemetry = Telemetry()
    previous = use_default(telemetry)
    try:
        print("\n=== attack run, per-packet attestation ===")
        attack = run_config_assurance(packets=20, swap_at=8)
    finally:
        use_default(previous)
    print(f"rogue program installed before packet {attack.swap_at}")
    print(f"first rejected packet            : {attack.first_rejection}")
    print(f"detection delay (packets)        : {attack.detection_delay}")
    print(f"calls exfiltrated before detection: {attack.exfiltrated}")
    assert attack.detection_delay == 0

    rejected = next(v for v in attack.verdicts if not v.accepted)
    print("\n--- why the first rejected packet failed ---")
    print(rejected.explain(telemetry))

    print("\n=== attack run, 1-in-4 sampled attestation ===")
    sampled = run_config_assurance(
        packets=20, swap_at=8,
        sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=4),
    )
    print(f"first rejected packet     : {sampled.first_rejection}")
    print(f"detection delay (packets) : {sampled.detection_delay}")
    print("\nSampling trades detection latency for per-packet cost —")
    print("exactly the Fig. 4 Detail/sampling axis of the paper.")


if __name__ == "__main__":
    main()
