"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or Table 1 (see
DESIGN.md §4). Each prints the rows it reproduces via
:func:`report` — run ``pytest benchmarks/ --benchmark-only -s`` to see
them inline; the same text is also appended to
``benchmarks/_reported.txt`` so a plain ``--benchmark-only`` run still
leaves the reproduced tables on disk.

At session end the harness also dumps ``benchmarks/BENCH_results.json``
— the reproduced tables plus pytest-benchmark's timing stats in one
machine-readable file, so CI (and perf-regression tooling) can diff
runs without scraping stdout — and ``benchmarks/TELEMETRY.json``, the
:mod:`repro.telemetry` export for the whole session, so a perf
regression arrives with a breakdown (per-switch evidence counters,
verify-cache hit rate, span aggregates) rather than just a total. Run
with ``REPRO_TELEMETRY=1`` to capture live per-link counters and
per-stage spans too; a ``benchmarks/TELEMETRY_trace.json`` Chrome
trace and, when attestation audit events were recorded, a
``benchmarks/AUDIT.json`` journal (render it with
``python -m repro.telemetry.report``) are then written alongside.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Mapping

_REPORT_PATH = pathlib.Path(__file__).parent / "_reported.txt"
_RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_results.json"
_TELEMETRY_PATH = pathlib.Path(__file__).parent / "TELEMETRY.json"
_TELEMETRY_TRACE_PATH = pathlib.Path(__file__).parent / "TELEMETRY_trace.json"
_AUDIT_PATH = pathlib.Path(__file__).parent / "AUDIT.json"

# Version stamp for BENCH_results.json; bump on layout changes.
_BENCH_SCHEMA = "repro.bench/v1"

# Tables reproduced during this session, in report() order.
_reported: List[dict] = []


def report(title: str, lines: Iterable[str]) -> None:
    """Print a reproduced table and append it to the report file."""
    lines = list(lines)
    text = "\n".join([f"--- {title} ---", *lines, ""])
    print("\n" + text)
    with _REPORT_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")
    _reported.append({"title": title, "lines": lines})


def table(rows: Iterable[Mapping[str, object]]) -> Iterable[str]:
    """Align a list of dict rows into table lines."""
    rows = list(rows)
    if not rows:
        return ["(no rows)"]
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows)) for h in headers
    }
    lines = [
        "  ".join(str(h).ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return lines


def _benchmark_stats(config) -> List[dict]:
    """Serialize pytest-benchmark's per-test stats, if any ran."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    out = []
    for bench in getattr(session, "benchmarks", []):
        try:
            out.append(bench.as_dict(include_data=False))
        except Exception:  # stats API drift must not fail the run
            out.append({"name": getattr(bench, "name", "?")})
    return out


def _dump_telemetry() -> None:
    """Attach the session's telemetry export next to the results.

    With ``REPRO_TELEMETRY`` unset the ambient telemetry is the null
    object; the export then still carries the process-wide shared
    state (most usefully the memoized verify-cache hit rate) via the
    global collectors. With it set, the full live registry — per-link
    counters, per-switch gauges, per-stage spans — lands here, plus a
    Chrome trace for ``chrome://tracing``.
    """
    from repro.telemetry import (
        Telemetry,
        collect_globals,
        default_telemetry,
        dump_audit,
        dump_json,
        write_chrome_trace,
    )

    telemetry = default_telemetry()
    if not telemetry.active:
        telemetry = Telemetry()  # holder for the global collectors only
    collect_globals(telemetry)
    dump_json(telemetry, _TELEMETRY_PATH)
    if len(telemetry.spans):
        write_chrome_trace(telemetry, _TELEMETRY_TRACE_PATH)
    if len(telemetry.audit):
        dump_audit(telemetry, _AUDIT_PATH)


def pytest_sessionfinish(session, exitstatus):
    """Dump everything this run reproduced as one JSON document."""
    benchmarks = _benchmark_stats(session.config)
    if not benchmarks and not _reported:
        return  # collection-only / non-benchmark invocation
    document = {
        "schema": _BENCH_SCHEMA,
        "exit_status": int(exitstatus),
        "reported_tables": _reported,
        "benchmarks": benchmarks,
    }
    with _RESULTS_PATH.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    try:
        _dump_telemetry()
    except Exception as error:  # telemetry must never fail a bench run
        print(f"(telemetry export skipped: {error})")
