"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or Table 1 (see
DESIGN.md §4). Each prints the rows it reproduces via
:func:`report` — run ``pytest benchmarks/ --benchmark-only -s`` to see
them inline; the same text is also appended to
``benchmarks/_reported.txt`` so a plain ``--benchmark-only`` run still
leaves the reproduced tables on disk.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Mapping

_REPORT_PATH = pathlib.Path(__file__).parent / "_reported.txt"


def report(title: str, lines: Iterable[str]) -> None:
    """Print a reproduced table and append it to the report file."""
    text = "\n".join([f"--- {title} ---", *lines, ""])
    print("\n" + text)
    with _REPORT_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


def table(rows: Iterable[Mapping[str, object]]) -> Iterable[str]:
    """Align a list of dict rows into table lines."""
    rows = list(rows)
    if not rows:
        return ["(no rows)"]
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows)) for h in headers
    }
    lines = [
        "  ".join(str(h).ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return lines
