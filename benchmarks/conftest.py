"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or Table 1 (see
DESIGN.md §4). Each prints the rows it reproduces via
:func:`report` — run ``pytest benchmarks/ --benchmark-only -s`` to see
them inline; the same text is also appended to
``benchmarks/_reported.txt`` so a plain ``--benchmark-only`` run still
leaves the reproduced tables on disk.

At session end the harness also dumps ``benchmarks/BENCH_results.json``
— the reproduced tables plus pytest-benchmark's timing stats in one
machine-readable file, so CI (and perf-regression tooling) can diff
runs without scraping stdout.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Mapping

_REPORT_PATH = pathlib.Path(__file__).parent / "_reported.txt"
_RESULTS_PATH = pathlib.Path(__file__).parent / "BENCH_results.json"

# Tables reproduced during this session, in report() order.
_reported: List[dict] = []


def report(title: str, lines: Iterable[str]) -> None:
    """Print a reproduced table and append it to the report file."""
    lines = list(lines)
    text = "\n".join([f"--- {title} ---", *lines, ""])
    print("\n" + text)
    with _REPORT_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")
    _reported.append({"title": title, "lines": lines})


def table(rows: Iterable[Mapping[str, object]]) -> Iterable[str]:
    """Align a list of dict rows into table lines."""
    rows = list(rows)
    if not rows:
        return ["(no rows)"]
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows)) for h in headers
    }
    lines = [
        "  ".join(str(h).ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return lines


def _benchmark_stats(config) -> List[dict]:
    """Serialize pytest-benchmark's per-test stats, if any ran."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    out = []
    for bench in getattr(session, "benchmarks", []):
        try:
            out.append(bench.as_dict(include_data=False))
        except Exception:  # stats API drift must not fail the run
            out.append({"name": getattr(bench, "name", "?")})
    return out


def pytest_sessionfinish(session, exitstatus):
    """Dump everything this run reproduced as one JSON document."""
    benchmarks = _benchmark_stats(session.config)
    if not benchmarks and not _reported:
        return  # collection-only / non-benchmark invocation
    document = {
        "exit_status": int(exitstatus),
        "reported_tables": _reported,
        "benchmarks": benchmarks,
    }
    with _RESULTS_PATH.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
