"""Overhead of the fault-injection hook on the dataplane hot path.

Three design points: no injector (the PR 3 baseline), an attached
injector with an *empty* plan (the disabled fast path every production
scenario pays), and an actively faulting plan. The contract is that
the empty-plan run is observably identical to the baseline — the
injector draws from its own RNG, so attaching it must not perturb the
baseline loss sequence — and its per-packet cost is a couple of dict
lookups.
"""

import time

import pytest

from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.faults import FaultInjector, FaultPlan
from repro.net.headers import ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind

from conftest import report, table

PACKETS = 200


def build():
    topo = Topology()
    topo.add_node("h1", kind="host")
    topo.add_node("h2", kind="host")
    topo.add_node("s1")
    topo.add_link("h1", 1, "s1", 1)
    topo.add_link("s1", 2, "h2", 1)
    sim = Simulator(topo, seed=0)
    h1 = Host("h1", mac=1, ip=ip_to_int("10.0.0.1"))
    h2 = Host("h2", mac=2, ip=ip_to_int("10.0.1.1"))
    switch = NetworkAwarePeraSwitch("s1")
    for node in (h1, h2, switch):
        sim.bind(node)
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config(
        "ctl", ipv4_forwarding_program()
    )
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return sim, h1, h2


def active_plan():
    return (
        FaultPlan(seed=0)
        .link_loss(0.0, "s1", "h2", rate=0.2)
        .corrupt_packets(0.05, "h1", "s1", rate=0.3, duration_s=0.05)
        .link_flap(0.08, "s1", "h2", down_s=0.01, up_s=0.01, cycles=2)
    )


def run_once(plan=None, packets=PACKETS):
    sim, h1, h2 = build()
    if plan is not None:
        FaultInjector(plan).attach(sim)
    for index in range(packets):
        sim.schedule(index * 1e-3, lambda: h1.send_udp(
            dst_mac=h2.mac, dst_ip=h2.ip, src_port=1, dst_port=2,
            payload=bytes(64),
        ))
    sim.run()
    return sim, h2


PLANS = {
    "no injector": lambda: None,
    "empty plan (disabled fast path)": lambda: FaultPlan(),
    "active plan (loss+corrupt+flap)": active_plan,
}


@pytest.mark.parametrize("label", list(PLANS))
def test_faults_overhead(benchmark, label):
    factory = PLANS[label]
    benchmark(lambda: run_once(factory()))


def test_faults_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    timings = {}
    for label, factory in PLANS.items():
        start = time.perf_counter()
        sim, h2 = run_once(factory())
        timings[label] = time.perf_counter() - start
        rows.append({
            "mode": label,
            "delivered": len(h2.received_packets),
            "dropped": sim.stats.packets_dropped,
            "resends": sim.stats.local_resends,
            "wall ms": round(timings[label] * 1e3, 1),
        })
    report("Fault-injection hook overhead (simulated dataplane run)",
           table(rows))
    by_mode = {r["mode"]: r for r in rows}
    # Attaching an empty plan must not perturb the run at all: the
    # injector's RNG is separate, so delivery and drop counts match
    # the baseline exactly.
    baseline = by_mode["no injector"]
    disabled = by_mode["empty plan (disabled fast path)"]
    assert disabled["delivered"] == baseline["delivered"] == PACKETS
    assert disabled["dropped"] == baseline["dropped"] == 0
    # The active plan really does damage.
    active = by_mode["active plan (loss+corrupt+flap)"]
    assert active["dropped"] > 0
    assert active["delivered"] < PACKETS
