"""Tail flow-completion time under congestion, by attestation variant.

An 8-way incast converges on one pod-0 host of a k=4 fat-tree with
tight finite buffers (tail-drop, ECN marking, PFC pauses), while a
bulk/web background mix rides the flowlet-routed fast path. The same
congested campaign runs four times, varying only how attestation
evidence travels:

- ``baseline``      — no attested flows at all,
- ``in-band``       — every attested flow carries evidence in-band,
- ``out-of-band``   — every attested flow diverts evidence to the
  collector,
- ``epoch-batched`` — out-of-band with epoch sealing (BatchingSpec).

The reported rows are the FCT tail percentiles p50/p95/p99/p99.9 per
variant — the "attestation under congestion" cost the paper's story
needs quantified. The timed row is the in-band variant (the canonical
worst case: evidence competes with data for the congested buffers).

A second benchmark pins the LinkGuardian-style link-local recovery
claim: a 30%-corrupting edge→agg hop on the first attested flow's
path is masked by local retransmits — the report shows the raw
corruption pressure vs the effective end-to-end loss rate (zero) and
the resend latency each recovered flow actually paid, measured as the
per-flow FCT delta against the byte-identical clean run.

Everything lands in ``BENCH_results.json`` (regression-gated by
``check_regression.py``) and ``CONGESTION_summary.json`` for CI
artifact upload.
"""

import gc
import json
import pathlib
import time

from repro.core.fabric import FatTreeShape, run_fabric_traffic
from repro.net.qdisc import QueueConfig, RecoveryConfig
from repro.net.routing import RoutingMode
from repro.pera.config import BatchingSpec

from conftest import report, table

_SUMMARY_PATH = pathlib.Path(__file__).parent / "CONGESTION_summary.json"

SEED = 20260807

#: Percentile grid for every FCT row in this module.
QS = (0.5, 0.95, 0.99, 0.999)

#: Tight buffers: at 256-byte incast payloads the 8 KiB / 32-packet
#: budget overflows within the first fan-in burst, ECN marks from
#: 2 KiB and PFC pauses from 4 KiB.
CONGESTED_QUEUE = QueueConfig(
    capacity_bytes=8192,
    capacity_packets=32,
    ecn_threshold_bytes=2048,
    pause_threshold_bytes=4096,
)

#: The shared congested stage; variants below only change how the
#: attested flows move their evidence.
BASE = dict(
    k=4,
    bulk_flows=200,
    web_sessions=20,
    attested_packets=6,
    queue=CONGESTED_QUEUE,
    incast_fan_in=8,
    routing=RoutingMode.FLOWLET,
)

VARIANTS = (
    ("baseline", dict(attested_flows=0)),
    ("in-band", dict(attested_flows=4, oob_fraction=0.0)),
    ("out-of-band", dict(attested_flows=4, oob_fraction=1.0)),
    (
        "epoch-batched",
        dict(
            attested_flows=4,
            oob_fraction=1.0,
            batching=BatchingSpec(max_records=4, max_delay_s=50e-6),
        ),
    ),
)

# Variant results, shared between the timed test and the report test
# so the sweep is not paid twice.
_cache = {}


def _variant_shape(overrides):
    return FatTreeShape(**{**BASE, **overrides})


def _run_variant(name, overrides):
    gc.collect()
    start = time.perf_counter()
    result = run_fabric_traffic(
        _variant_shape(overrides), shards=2, seed=SEED
    )
    wall = time.perf_counter() - start

    stats = json.loads(result.result.stats_export())
    assert stats["queue_drops"] > 0, f"{name}: incast never overflowed"
    assert stats["ecn_marked"] > 0, f"{name}: ECN never marked"
    accepted, rejected = result.verdict_counts
    if overrides.get("attested_flows"):
        assert rejected == 0, f"{name}: verdict churn"
        if overrides.get("oob_fraction", 0.0) < 1.0:
            assert accepted > 0, f"{name}: no in-band verdicts"
        else:  # all evidence diverts: the collector is the appraiser
            assert result.oob_records > 0, f"{name}: no OOB records"
            assert result.oob_verified == result.oob_records, name
    return {
        "name": name,
        "result": result,
        "stats": stats,
        "wall": wall,
        "fct": result.fct_percentiles(QS),
    }


def test_fct_congestion_variants(benchmark):
    """Timed: the in-band congested campaign (evidence and data share
    the congested buffers — the canonical worst case)."""
    result = benchmark.pedantic(
        lambda: _run_variant("in-band", dict(VARIANTS)["in-band"]),
        rounds=1,
        iterations=1,
    )
    _cache["in-band"] = result
    pct = result["fct"]
    benchmark.extra_info["flows_completed"] = len(result["result"].fct_s)
    benchmark.extra_info["queue_drops"] = result["stats"]["queue_drops"]
    benchmark.extra_info["ecn_marked"] = result["stats"]["ecn_marked"]
    benchmark.extra_info["pause_frames"] = result["stats"]["pause_frames"]
    for label, value in pct.items():
        benchmark.extra_info[f"fct_{label}_us"] = round(value * 1e6, 2)


def test_fct_congestion_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    runs = []
    for name, overrides in VARIANTS:
        if name in _cache:
            runs.append(_cache[name])
        else:
            runs.append(_run_variant(name, overrides))

    baseline = next(r for r in runs if r["name"] == "baseline")
    rows = []
    for run in runs:
        pct = run["fct"]
        rows.append({
            "variant": run["name"],
            **{
                label: f"{value * 1e6:.1f}us"
                for label, value in pct.items()
            },
            "drops": run["stats"]["queue_drops"],
            "ecn": run["stats"]["ecn_marked"],
            "pauses": run["stats"]["pause_frames"],
            "flows": len(run["result"].fct_s),
        })

    summary = {
        "seed": SEED,
        "shape": {
            **{k: v for k, v in BASE.items() if isinstance(v, (int, str))},
            "routing": BASE["routing"].value,
            "queue": {
                "capacity_bytes": CONGESTED_QUEUE.capacity_bytes,
                "capacity_packets": CONGESTED_QUEUE.capacity_packets,
                "ecn_threshold_bytes": CONGESTED_QUEUE.ecn_threshold_bytes,
                "pause_threshold_bytes":
                    CONGESTED_QUEUE.pause_threshold_bytes,
            },
        },
        "variants": {
            run["name"]: {
                "fct_us": {
                    label: round(value * 1e6, 3)
                    for label, value in run["fct"].items()
                },
                "queue_drops": run["stats"]["queue_drops"],
                "ecn_marked": run["stats"]["ecn_marked"],
                "pause_frames": run["stats"]["pause_frames"],
                "flows_completed": len(run["result"].fct_s),
            }
            for run in runs
        },
    }
    _SUMMARY_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    base_p99 = baseline["fct"]["p99"]
    inband_p99 = next(
        r for r in runs if r["name"] == "in-band"
    )["fct"]["p99"]
    report(
        "Tail FCT under 8-way incast by attestation variant "
        f"(k=4 fat-tree, tight buffers, seed {SEED})",
        [
            *table(rows),
            "",
            f"in-band p99 vs baseline: {inband_p99 * 1e6:.1f}us vs "
            f"{base_p99 * 1e6:.1f}us "
            f"({(inband_p99 - base_p99) / base_p99:+.1%})",
        ],
    )


# ---------------------------------------------------------------------------
# Link-local recovery: corruption masked below the transport

#: The recovery stage: roomy default buffers (loss must come from the
#: corrupting hop, not tail-drop) and up to 8 local retransmits.
RECOVERY_QUEUE = QueueConfig(recovery=RecoveryConfig(retransmit_limit=8))

CORRUPT_RATE = 0.3
RECOVERY_SEED = 7


def _recovery_run(rate):
    gc.collect()
    start = time.perf_counter()
    result = run_fabric_traffic(
        FatTreeShape(queue=RECOVERY_QUEUE, corrupt_link_rate=rate),
        shards=2,
        seed=RECOVERY_SEED,
    )
    return result, time.perf_counter() - start


def test_fct_recovery_masks_corruption(benchmark):
    """Timed: the corrupted campaign with link-local recovery. The
    report row is the LinkGuardian claim: raw corruption pressure on
    the wire, zero effective loss end to end, and the resend latency
    each recovered flow actually paid."""
    dirty = benchmark.pedantic(
        lambda: _recovery_run(CORRUPT_RATE)[0], rounds=1, iterations=1
    )
    clean, _ = _recovery_run(0.0)

    stats = json.loads(dirty.result.stats_export())
    retransmits = stats["recovery_retransmits"]
    assert retransmits > 0, "the corrupting hop never fired"
    assert stats["queue_drops"] == 0

    # Zero verdict churn: recovery is invisible to the appraiser.
    assert dirty.verdicts == clean.verdicts
    accepted, rejected = dirty.verdict_counts
    assert accepted > 0 and rejected == 0

    # Effective end-to-end loss: flows that completed clean but not
    # dirty (none, with retransmit budget 8 against rate 0.3).
    lost_flows = set(clean.fct_s) - set(dirty.fct_s)
    effective_loss = len(lost_flows) / max(1, len(clean.fct_s))
    assert effective_loss == 0.0

    # Resend latency: the per-flow FCT delta against the clean run is
    # exactly what the local retransmits cost the transport.
    deltas = [
        dirty.fct_s[flow] - clean.fct_s[flow]
        for flow in clean.fct_s
        if dirty.fct_s[flow] > clean.fct_s[flow]
    ]
    slowed = len(deltas)
    mean_delta = sum(deltas) / slowed if slowed else 0.0
    max_delta = max(deltas) if deltas else 0.0

    benchmark.extra_info["corrupt_rate"] = CORRUPT_RATE
    benchmark.extra_info["recovery_retransmits"] = retransmits
    benchmark.extra_info["effective_loss_rate"] = effective_loss
    benchmark.extra_info["flows_slowed"] = slowed
    benchmark.extra_info["resend_latency_mean_us"] = round(
        mean_delta * 1e6, 3
    )
    benchmark.extra_info["resend_latency_max_us"] = round(
        max_delta * 1e6, 3
    )

    summary = {}
    if _SUMMARY_PATH.exists():
        summary = json.loads(_SUMMARY_PATH.read_text(encoding="utf-8"))
    summary["recovery"] = {
        "seed": RECOVERY_SEED,
        "corrupt_rate": CORRUPT_RATE,
        "retransmit_limit": RECOVERY_QUEUE.recovery.retransmit_limit,
        "recovery_retransmits": retransmits,
        "effective_loss_rate": effective_loss,
        "flows_slowed": slowed,
        "resend_latency_mean_us": round(mean_delta * 1e6, 3),
        "resend_latency_max_us": round(max_delta * 1e6, 3),
        "verdict_churn": dirty.verdicts != clean.verdicts,
    }
    _SUMMARY_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    report(
        f"Link-local recovery vs a {CORRUPT_RATE:.0%}-corrupting hop "
        f"(k=4 fat-tree, seed {RECOVERY_SEED})",
        [
            f"local retransmits: {retransmits}; "
            f"effective end-to-end loss: {effective_loss:.1%}",
            f"flows slowed: {slowed}/{len(clean.fct_s)}; resend latency "
            f"mean {mean_delta * 1e6:.2f}us, max {max_delta * 1e6:.2f}us",
            f"verdict churn vs clean run: "
            f"{'YES' if dirty.verdicts != clean.verdicts else 'none'}",
        ],
    )
