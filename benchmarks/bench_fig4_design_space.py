"""E5 / Fig. 4 — the Inertia x Detail x Composition design space.

Runs the full sweep and reports, per design point, cache hit rate,
signatures per packet, evidence bytes and RA cost. Expected shapes:
high-inertia-only evidence caches nearly perfectly; packet-bound
evidence cannot cache; sampling divides cost by its rate.
"""

import pytest

from repro.core.design_space import format_table, run_design_point, sweep
from repro.pera.config import CompositionMode, DetailLevel, EvidenceConfig
from repro.pera.inertia import DEFAULT_TTLS, InertiaClass
from repro.pera.sampling import SamplingMode, SamplingSpec

from conftest import report


def test_fig4_single_point(benchmark):
    result = benchmark(lambda: run_design_point(
        EvidenceConfig(), packet_count=20, switch_count=2
    ))
    assert result.packets_delivered == 20


def test_fig4_composition_axis(benchmark):
    results = benchmark(lambda: sweep(
        details=[DetailLevel.MINIMAL],
        compositions=list(CompositionMode),
        packet_count=10, switch_count=2,
    ))
    assert len(results) == 3


def test_fig4_report_full_grid(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    samplings = [
        SamplingSpec(),
        SamplingSpec(mode=SamplingMode.ONE_IN_N, n=8),
    ]
    results = sweep(
        details=list(DetailLevel),
        compositions=list(CompositionMode),
        samplings=samplings,
        packet_count=32,
        switch_count=3,
    )
    report("Fig. 4: design-space sweep (detail x composition x sampling)",
           format_table(results).splitlines())

    def pick(detail, composition, sampling_mode):
        for r in results:
            if (r.detail is detail and r.composition is composition
                    and r.sampling.mode is sampling_mode):
                return r
        raise AssertionError("missing grid point")

    # Shape 1: pointwise minimal evidence caches near-perfectly.
    pointwise = pick(DetailLevel.MINIMAL, CompositionMode.POINTWISE,
                     SamplingMode.EVERY_PACKET)
    assert pointwise.cache_hit_rate > 0.9
    assert pointwise.signatures_per_packet < 0.2
    # Shape 2: traffic-path binding cannot cache (per-packet signature).
    bound = pick(DetailLevel.MINIMAL, CompositionMode.TRAFFIC_PATH,
                 SamplingMode.EVERY_PACKET)
    assert bound.signatures_per_packet == pytest.approx(3.0)
    # Shape 3: sampling divides signing cost by ~n.
    sampled = pick(DetailLevel.MINIMAL, CompositionMode.TRAFFIC_PATH,
                   SamplingMode.ONE_IN_N)
    assert sampled.signatures_per_packet < bound.signatures_per_packet / 4
    # Shape 4: expansive detail costs more than minimal everywhere.
    minimal = pick(DetailLevel.MINIMAL, CompositionMode.CHAINED,
                   SamplingMode.EVERY_PACKET)
    expansive = pick(DetailLevel.EXPANSIVE, CompositionMode.CHAINED,
                     SamplingMode.EVERY_PACKET)
    assert expansive.ra_cost_per_packet > minimal.ra_cost_per_packet
    assert expansive.evidence_bytes_per_packet > minimal.evidence_bytes_per_packet


def test_fig4_inertia_ttl_gradient(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The inertia axis itself: TTLs fall as inertia falls, and the
    packet class is never cacheable."""
    ordered = [
        InertiaClass.HARDWARE, InertiaClass.PROGRAM, InertiaClass.TABLES,
        InertiaClass.PROG_STATE, InertiaClass.PACKETS,
    ]
    ttls = [DEFAULT_TTLS[i] for i in ordered]
    assert ttls == sorted(ttls, reverse=True)
    assert not InertiaClass.PACKETS.cacheable
    assert all(i.cacheable for i in ordered[:-1])
    report("Fig. 4: inertia axis default evidence lifetimes", [
        f"{inertia.name:<11} ttl={DEFAULT_TTLS[inertia]:>8.2f}s "
        f"cacheable={inertia.cacheable}"
        for inertia in ordered
    ])
