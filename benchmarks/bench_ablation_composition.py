"""Ablation — what each composition mode actually buys (DESIGN.md).

The Fig. 4 Composition axis is a security/cost trade. This ablation
mounts three concrete in-path attacks against evidence gathered under
each composition mode and reports which mode catches which attack:

- *strip*: remove one hop's record (a middle adversary hides a hop).
- *reorder*: swap two hops' records (forge a different path shape).
- *splice*: replace the packet under the evidence (bind evidence from
  a sanctioned packet onto attack traffic).

Expected shape: pointwise catches only stripping (via the hop count);
chained adds reorder detection; traffic-path adds splice detection —
each step up the axis costs more signatures (see bench_fig3).
"""

from dataclasses import replace as dc_replace


from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pera.records import decode_record_stack, encode_record_stack
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind

from conftest import report, table


def run_and_capture(composition: CompositionMode):
    """Send one policy packet over 3 attesting hops; return everything
    an appraiser (and an attacker) would have."""
    programs = [ipv4_forwarding_program() for _ in range(3)]
    topo = linear_topology(3)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for i, program in enumerate(programs, start=1):
        switch = NetworkAwarePeraSwitch(
            f"s{i}", config=EvidenceConfig(composition=composition)
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
    compiled = compile_policy_for_path(
        ap1_bank_path_attestation(),
        path=["h-src", "s1", "s2", "s3", "h-dst"],
        bindings={"client": "h-dst"},
        composition=composition,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1000, dst_port=2000,
        payload=b"sanctioned-payload",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )
    sim.run()
    packet = dst.received_packets[0]

    anchors = KeyRegistry()
    references, names = {}, {}
    for switch, program in zip(switches, programs):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        names[program_reference(program)] = program.full_name
    appraiser = PathAppraiser("Appraiser", PathAppraisalPolicy(
        anchors=anchors, reference_measurements=references,
        program_names=names,
    ))
    return packet, compiled, appraiser


def mutate(packet, compiled, attack: str):
    """Apply one in-path attack to the delivered packet."""
    records = decode_record_stack(packet.ra_shim.body)
    if attack == "none":
        return packet
    if attack == "strip":
        kept = records[:-1]
        body = encode_compiled_policy(compiled) + encode_record_stack(kept)
        return packet.with_shim(dc_replace(packet.ra_shim, body=body))
    if attack == "reorder":
        swapped = [records[1], records[0]] + records[2:]
        body = encode_compiled_policy(compiled) + encode_record_stack(swapped)
        return packet.with_shim(dc_replace(packet.ra_shim, body=body))
    if attack == "splice":
        # Bind the sanctioned evidence onto different traffic: the
        # adversary changes the payload but keeps every record intact.
        return dc_replace(packet, payload=b"ATTACK-TRAFFIC-18B")
    raise AssertionError(attack)


ATTACKS = ["none", "strip", "reorder", "splice"]
MODES = [
    CompositionMode.POINTWISE,
    CompositionMode.CHAINED,
    CompositionMode.TRAFFIC_PATH,
]


def detect(mode: CompositionMode, attack: str) -> bool:
    packet, compiled, appraiser = run_and_capture(mode)
    mutated = mutate(packet, compiled, attack)
    verdict = appraiser.appraise_packet(mutated, compiled)
    return not verdict.accepted


def test_ablation_baseline_accepts(benchmark):
    caught = benchmark(lambda: detect(CompositionMode.CHAINED, "none"))
    assert not caught  # honest evidence accepted


def test_ablation_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    matrix = {}
    for mode in MODES:
        row = {"composition": mode.value}
        for attack in ATTACKS:
            caught = detect(mode, attack)
            matrix[(mode, attack)] = caught
            row[attack] = "caught" if caught else ("ok" if attack == "none" else "MISSED")
        rows.append(row)
    report("Ablation: attacks caught per composition mode", table(rows))
    # Honest evidence is never rejected.
    assert not any(matrix[(m, "none")] for m in MODES)
    # Stripping is caught everywhere (authenticated hop counting).
    assert all(matrix[(m, "strip")] for m in MODES)
    # Reordering requires at least chaining.
    assert not matrix[(CompositionMode.POINTWISE, "reorder")]
    assert matrix[(CompositionMode.CHAINED, "reorder")]
    assert matrix[(CompositionMode.TRAFFIC_PATH, "reorder")]
    # Splicing evidence onto other traffic requires packet binding.
    assert not matrix[(CompositionMode.POINTWISE, "splice")]
    assert not matrix[(CompositionMode.CHAINED, "splice")]
    assert matrix[(CompositionMode.TRAFFIC_PATH, "splice")]
