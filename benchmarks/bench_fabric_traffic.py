"""Million-packet attested traffic campaign on a 125-switch fat-tree.

The flow-level engine acceptance benchmark: a k=10 fat-tree (100 edge
+ aggregation switches in 10 pods, 25 cores, 100 hosts) carries a
seeded heavy-tailed datacenter mix — ~16k elephant/mice flows plus
web request/response sessions on the flowlet-routed fast path, and
eight attested flows riding compiled AP1 path policies (half in-band,
half diverting evidence out-of-band to the collector) through the
full PISA+PERA pipeline with stateless ECMP selection.

The timed row is the 4-shard multiprocessing run; the report then
replays the identical campaign on 1 shard inline and asserts the
merged SimStats and audit journals are byte-identical — the
determinism contract of docs/SHARDING.md at million-packet scale.
Flow completion time percentiles, ECMP load spread, and appraisal
verdict counts land in ``BENCH_results.json`` (via the report table)
and in ``FABRIC_summary.json`` for CI artifact upload.
"""

import gc
import json
import os
import pathlib
import time

from repro.core.fabric import (
    FatTreeShape,
    fabric_sampling_spec,
    run_fabric_traffic,
    standard_fabric_rules,
)
from repro.net.routing import RoutingMode
from repro.telemetry.timeseries import dump_timeseries

from conftest import report, table

_SUMMARY_PATH = pathlib.Path(__file__).parent / "FABRIC_summary.json"
_TIMESERIES_PATH = pathlib.Path(__file__).parent / "TIMESERIES.json"

SEED = 20260807

# 125 switches, 100 hosts; ~16k flows push >1e6 switch forwardings.
SHAPE = FatTreeShape(
    k=10,
    hosts_per_edge=2,
    bulk_flows=16_000,
    web_sessions=400,
    attested_flows=8,
    attested_packets=8,
    elephant_packets=(64, 192),
    arrival_rate_per_s=2_000_000.0,
    routing=RoutingMode.FLOWLET,
    # Cap flowlets at 32 packets: with 2us intra-flow pacing the idle
    # gap never expires, so the budget is what rotates an elephant's
    # 64-192 packet burst across uplinks instead of pinning it.
    flowlet_n_packets=32,
)

#: Acceptance floor: switch-level forwarding events in one campaign.
MIN_FORWARDED = 1_000_000

#: Worst tolerated per-switch max/mean multipath spread (1.0 = even).
MAX_IMBALANCE = 1.5
#: Switches with fewer multipath picks than this are spread noise.
IMBALANCE_MIN_SAMPLES = 500

# The timed 4-shard result, reused by the report test so the
# million-packet campaign is not re-run a third time.
_cache = {}


def _run(shards, backend):
    gc.collect()
    start = time.perf_counter()
    result = run_fabric_traffic(
        SHAPE,
        shards=shards,
        backend=backend,
        seed=SEED,
        telemetry_active=False,
    )
    return result, time.perf_counter() - start


def _check(result):
    """The acceptance gates every configuration must clear."""
    assert result.forwarded >= MIN_FORWARDED
    assert result.unroutable == 0
    assert result.ecmp_imbalance(IMBALANCE_MIN_SAMPLES) <= MAX_IMBALANCE
    accepted, rejected = result.verdict_counts
    assert rejected == 0 and accepted > 0
    assert result.oob_records > 0
    assert result.oob_verified == result.oob_records


def test_fabric_traffic_campaign(benchmark):
    """Timed: the 4-shard mp campaign end to end (one round — the
    run is minutes long; medians over repeats buy nothing here)."""
    result = benchmark.pedantic(
        lambda: _run(4, "mp")[0], rounds=1, iterations=1
    )
    _cache["mp4"] = result
    _check(result)
    pct = result.fct_percentiles()
    accepted, rejected = result.verdict_counts
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["switches"] = SHAPE.switch_count
    benchmark.extra_info["forwarded"] = result.forwarded
    benchmark.extra_info["flows_completed"] = len(result.fct_s)
    benchmark.extra_info["fct_p50_us"] = round(pct["p50"] * 1e6, 2)
    benchmark.extra_info["fct_p99_us"] = round(pct["p99"] * 1e6, 2)
    benchmark.extra_info["ecmp_imbalance"] = round(
        result.ecmp_imbalance(IMBALANCE_MIN_SAMPLES), 4
    )
    benchmark.extra_info["verdicts_accepted"] = accepted
    benchmark.extra_info["verdicts_rejected"] = rejected
    benchmark.extra_info["oob_verified"] = result.oob_verified
    benchmark.extra_info["windows"] = result.result.windows
    benchmark.extra_info["critical_path_s"] = round(
        result.result.critical_path_s, 3
    )


def test_fabric_traffic_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if "mp4" in _cache:
        four, wall4 = _cache["mp4"], None
    else:  # report test ran alone: pay for the campaign here
        four, wall4 = _run(4, "mp")
    one, wall1 = _run(1, "inline")
    _check(four)
    _check(one)

    # The determinism contract at full scale: shard count must not
    # change a byte of the merged stats or the audit ordering.
    identical = (
        one.result.stats_export() == four.result.stats_export()
        and one.result.audit_export() == four.result.audit_export()
    )
    assert identical, "1-shard and 4-shard campaigns diverged"
    assert one.fct_s == four.fct_s
    assert one.verdicts == four.verdicts
    assert one.tx_by_port == four.tx_by_port

    pct = four.fct_percentiles()
    accepted, rejected = four.verdict_counts
    imbalance = four.ecmp_imbalance(IMBALANCE_MIN_SAMPLES)
    rows = []
    for config, result, wall in (
        ("sharded x4 (mp)", four, wall4),
        ("sharded x1 (inline)", one, wall1),
    ):
        rows.append({
            "config": config,
            "forwarded": result.forwarded,
            "flows done": len(result.fct_s),
            "wall s": "-" if wall is None else round(wall, 1),
            "windows": result.result.windows,
            "critical s": round(result.result.critical_path_s, 1),
        })

    summary = {
        "seed": SEED,
        "shape": {
            "k": SHAPE.k,
            "switches": SHAPE.switch_count,
            "hosts": SHAPE.host_count,
            "bulk_flows": SHAPE.bulk_flows,
            "web_sessions": SHAPE.web_sessions,
            "attested_flows": SHAPE.attested_flows,
            "routing": SHAPE.routing.value,
        },
        "forwarded": four.forwarded,
        "attested_hops": four.attested_hops,
        "flows_completed": len(four.fct_s),
        "fct_us": {k: round(v * 1e6, 3) for k, v in pct.items()},
        "ecmp_imbalance": round(imbalance, 4),
        "verdicts": {"accepted": accepted, "rejected": rejected},
        "oob": {
            "records": four.oob_records,
            "verified": four.oob_verified,
        },
        "determinism_x1_vs_x4": identical,
    }
    with _SUMMARY_PATH.open("w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report(
        f"Fat-tree attested traffic, {SHAPE.switch_count} switches "
        f"({SHAPE.host_count} hosts, seed {SEED}, "
        f"cpu_count={os.cpu_count()})",
        [
            *table(rows),
            "",
            f"FCT p50/p95/p99 us: {round(pct['p50'] * 1e6, 1)} / "
            f"{round(pct['p95'] * 1e6, 1)} / {round(pct['p99'] * 1e6, 1)}",
            f"ECMP spread (worst max/mean): {imbalance:.3f} "
            f"(gate: <={MAX_IMBALANCE})",
            f"verdicts: {accepted} accepted, {rejected} rejected; "
            f"out-of-band: {four.oob_verified}/{four.oob_records} verified",
            f"x1 vs x4 byte-identical journals: {identical}",
        ],
    )


# ---------------------------------------------------------------------------
# Flight-recorder sampling overhead (docs/MONITORING.md)

# A mid-size shape: ~66k forwardings, big enough that per-run wall
# time (~1.5s) dwarfs timer noise, small enough to run six times.
OVERHEAD_SHAPE = FatTreeShape(bulk_flows=1_200, web_sessions=60)

#: Gate enforced by check_regression.py: sampling must cost <3%.
MAX_SAMPLING_OVERHEAD = 0.03

OVERHEAD_ROUNDS = 3


def _timed_overhead_run(sampling):
    gc.collect()
    start = time.perf_counter()
    result = run_fabric_traffic(
        OVERHEAD_SHAPE,
        shards=1,
        backend="inline",
        seed=SEED,
        telemetry_active=True,
        sampling=sampling,
    )
    return result, time.perf_counter() - start


def test_fabric_sampling_overhead(benchmark):
    """Timed: the sampled campaign; extra_info carries the overhead
    fraction vs the identical unsampled run (min-of-N each,
    interleaved so drift hits both configurations alike)."""
    off_s, on_s = [], []
    frames = 0
    for _ in range(OVERHEAD_ROUNDS):
        base, wall_off = _timed_overhead_run(None)
        sampled, wall_on = _timed_overhead_run(fabric_sampling_spec())
        off_s.append(wall_off)
        on_s.append(wall_on)
        # Sampling must not perturb the campaign itself.
        assert sampled.forwarded == base.forwarded
        assert sampled.fct_s == base.fct_s
        frames = len(sampled.frames)
    overhead = (min(on_s) - min(off_s)) / min(off_s)

    # The timed row re-runs the sampled configuration so the median
    # lands in BENCH_results.json for the regression gate.
    result = benchmark.pedantic(
        lambda: _timed_overhead_run(fabric_sampling_spec())[0],
        rounds=1,
        iterations=1,
    )
    assert result.frames, "sampling produced no frames"
    benchmark.extra_info["sampling_overhead_frac"] = round(overhead, 4)
    benchmark.extra_info["sampling_interval_us"] = round(
        fabric_sampling_spec().interval_s * 1e6, 1
    )
    benchmark.extra_info["frames"] = frames
    benchmark.extra_info["forwarded"] = result.forwarded

    # The CI artifact: the same campaign once more under the standard
    # health rules, dumped as the schema-versioned timeseries document
    # (rendered by `python -m repro.telemetry.report timeline|health`).
    monitored = run_fabric_traffic(
        OVERHEAD_SHAPE,
        shards=1,
        backend="inline",
        seed=SEED,
        telemetry_active=True,
        health=standard_fabric_rules(),
    )
    dump_timeseries(monitored.timeseries(), _TIMESERIES_PATH)

    report(
        "Flight-recorder sampling overhead "
        f"({OVERHEAD_SHAPE.switch_count} switches, seed {SEED})",
        [
            f"unsampled best-of-{OVERHEAD_ROUNDS}: {min(off_s):.3f}s; "
            f"sampled: {min(on_s):.3f}s",
            f"overhead: {overhead:+.2%} (gate: <{MAX_SAMPLING_OVERHEAD:.0%} "
            "in check_regression.py)",
            f"frames: {frames} at "
            f"{fabric_sampling_spec().interval_s * 1e6:.0f}us cadence; "
            f"health alerts: {len(monitored.health.alerts)}",
        ],
    )
