"""E3 / Table 1 — compile and execute AP1, AP2 and AP3 end to end.

For each attestation policy: compile for a concrete path, run traffic
through attesting switches, appraise. Sweeps path length to show the
linear growth of evidence size and verification work.
"""


from repro.core.appraisal import (
    PathAppraisalPolicy,
    PathAppraiser,
    hardware_reference,
    program_reference,
)
from repro.core.compiler import compile_policy_for_path
from repro.core.policies import ap1_bank_path_attestation, ap3_path_check
from repro.core.raswitch import NetworkAwarePeraSwitch
from repro.core.wire import encode_compiled_policy
from repro.crypto.keys import KeyRegistry
from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.config import CompositionMode, EvidenceConfig
from repro.pera.inertia import InertiaClass
from repro.pisa.programs import acl_program, firewall_program, ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind

from conftest import report, table


def build_chain(programs):
    count = len(programs)
    topo = linear_topology(count)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    switches = []
    for i, program in enumerate(programs, start=1):
        switch = NetworkAwarePeraSwitch(
            f"s{i}", config=EvidenceConfig(composition=CompositionMode.CHAINED)
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config("ctl", program)
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
        switches.append(switch)
    return sim, src, dst, switches


def appraiser_for(switches, programs):
    anchors = KeyRegistry()
    references, names = {}, {}
    for switch, program in zip(switches, programs):
        anchors.register_pair(switch.keys)
        references[switch.name] = {
            InertiaClass.HARDWARE: hardware_reference(
                switch.engine.hardware_identity
            ),
            InertiaClass.PROGRAM: program_reference(program),
        }
        names[program_reference(program)] = program.full_name
    return PathAppraiser("Appraiser", PathAppraisalPolicy(
        anchors=anchors, reference_measurements=references,
        program_names=names,
    ))


def run_ap1(path_switches: int):
    programs = [ipv4_forwarding_program() for _ in range(path_switches)]
    sim, src, dst, switches = build_chain(programs)
    appraiser = appraiser_for(switches, programs)
    path = ["h-src"] + [s.name for s in switches] + ["h-dst"]
    compiled = compile_policy_for_path(
        ap1_bank_path_attestation(), path=path,
        bindings={"client": "h-dst"},
        composition=CompositionMode.CHAINED,
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
        payload=b"x",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )
    sim.run()
    packet = dst.received_packets[0]
    verdict = appraiser.appraise_packet(packet, compiled)
    return verdict, packet.ra_shim.wire_length


def run_ap3(path_switches: int = 2):
    programs = [firewall_program(), acl_program()] + [
        ipv4_forwarding_program() for _ in range(path_switches - 2)
    ]
    sim, src, dst, switches = build_chain(programs)
    appraiser = appraiser_for(switches, programs)
    path = ["h-src"] + [s.name for s in switches] + ["h-dst"]
    compiled = compile_policy_for_path(
        ap3_path_check(), path=path,
        bindings={
            "F1": programs[0].full_name, "F2": programs[1].full_name,
            "peer1": "h-src", "peer2": "h-dst",
        },
    )
    src.send_udp(
        dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2, payload=b"x",
        ra_shim=RaShimHeader(
            flags=RaShimHeader.FLAG_POLICY,
            body=encode_compiled_policy(compiled),
        ),
    )
    sim.run()
    verdict = appraiser.appraise_packet(dst.received_packets[0], compiled)
    return verdict


def run_ap2():
    from repro.core.usecases import run_audit_trail

    return run_audit_trail(c2_flows=3, benign_flows=3)


def test_table1_ap1(benchmark):
    verdict, _ = benchmark(lambda: run_ap1(3))
    assert verdict.accepted


def test_table1_ap2(benchmark):
    result = benchmark(run_ap2)
    assert result.matches == 3 and result.verdict_accepted


def test_table1_ap3(benchmark):
    verdict = benchmark(lambda: run_ap3(2))
    assert verdict.accepted


def test_table1_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for hops in (1, 2, 4, 8):
        verdict, shim_bytes = run_ap1(hops)
        rows.append({
            "policy": "AP1",
            "attesting hops": hops,
            "verdict": "accept" if verdict.accepted else "reject",
            "records": verdict.records_checked,
            "shim bytes": shim_bytes,
        })
    ap2 = run_ap2()
    rows.append({
        "policy": "AP2", "attesting hops": 1,
        "verdict": "accept" if ap2.verdict_accepted else "reject",
        "records": ap2.matches, "shim bytes": 0,
    })
    ap3 = run_ap3()
    rows.append({
        "policy": "AP3", "attesting hops": 2,
        "verdict": "accept" if ap3.accepted else "reject",
        "records": ap3.records_checked, "shim bytes": 0,
    })
    report("Table 1: attestation policies executed end to end", table(rows))
    ap1_rows = [r for r in rows if r["policy"] == "AP1"]
    # Shape: evidence grows linearly with attesting hops.
    bytes_per_hop = [
        (r["shim bytes"], r["attesting hops"]) for r in ap1_rows
    ]
    increments = [
        (b2 - b1) / (h2 - h1)
        for (b1, h1), (b2, h2) in zip(bytes_per_hop, bytes_per_hop[1:])
    ]
    assert max(increments) - min(increments) < 1e-6  # constant per-hop cost
    assert all(r["verdict"] == "accept" for r in rows)
