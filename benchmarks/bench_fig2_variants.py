"""E2 / Fig. 2 + expressions (3),(4) — out-of-band vs in-band evidence.

Two levels of reproduction:

1. *Protocol level*: the Copland expressions (3) and (4) executed on
   the attestation VM. Expected shape: in-band reaches both relying
   parties with fewer control messages; out-of-band needs the
   nonce-linked store/retrieve round.
2. *Dataplane level*: PERA chains running both evidence channels.
   Expected shape: in-band grows the packets themselves (shim bytes on
   the wire); out-of-band keeps packets small but loads the control
   channel — the same total evidence, carried on different planes.
"""

from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.host import Host
from repro.net.simulator import Simulator
from repro.net.topology import linear_topology
from repro.pera.switch import PeraSwitch
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.tables import MatchKey, MatchKind
from repro.ra.protocol import AttestationScenario, run_in_band, run_out_of_band

from conftest import report, table

GOLDEN = {"Hardware": b"tofino-model-x", "Program": b"firewall_v5-binary"}


def honest_scenario():
    return AttestationScenario(
        switch_targets=dict(GOLDEN), golden_targets=dict(GOLDEN)
    )


def compromised_scenario():
    targets = dict(GOLDEN)
    targets["Program"] = b"firewall_v5-binary-with-implant"
    return AttestationScenario(
        switch_targets=targets, golden_targets=dict(GOLDEN)
    )


def test_fig2_out_of_band(benchmark):
    run = benchmark(lambda: run_out_of_band(honest_scenario()))
    assert run.accepted


def test_fig2_in_band(benchmark):
    run = benchmark(lambda: run_in_band(honest_scenario()))
    assert run.accepted


def test_fig2_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for label, scenario_fn in (
        ("honest", honest_scenario), ("compromised", compromised_scenario),
    ):
        for runner in (run_out_of_band, run_in_band):
            run = runner(scenario_fn())
            rows.append({
                "switch": label,
                "variant": run.variant,
                "result": "accept" if run.accepted else "reject",
                "ctl msgs": run.messages,
                "evidence B": run.evidence_bytes,
                "RP1 informed": run.rp1_informed,
                "RP2 informed": run.rp2_informed,
            })
    report("Fig. 2: evidence delivery variants (exprs (3) and (4))",
           table(rows))
    out_of_band = [r for r in rows if r["variant"] == "out-of-band"]
    in_band = [r for r in rows if r["variant"] == "in-band"]
    # Shape check: in-band needs strictly fewer control messages.
    assert all(
        ib["ctl msgs"] < oob["ctl msgs"]
        for ib, oob in zip(in_band, out_of_band)
    )
    # Both variants detect the compromised switch.
    assert all(r["result"] == "reject" for r in rows if r["switch"] == "compromised")


def run_dataplane_variant(out_of_band: bool, packets: int = 20):
    """Drive a 3-switch PERA chain in one evidence-channel mode."""
    topo = linear_topology(3)
    if out_of_band:
        topo.add_node("appraiser", kind="host")
        topo.add_link("appraiser", 1, "s1", 9)
    sim = Simulator(topo)
    src = Host("h-src", mac=0x1, ip=ip_to_int("10.0.0.1"))
    dst = Host("h-dst", mac=0x2, ip=ip_to_int("10.0.1.1"))
    sim.bind(src)
    sim.bind(dst)
    if out_of_band:
        sim.bind(Host("appraiser", mac=0x3, ip=ip_to_int("10.0.9.9")))
    for i in range(1, 4):
        switch = PeraSwitch(
            f"s{i}",
            appraiser_node="appraiser" if out_of_band else None,
            out_of_band=out_of_band,
        )
        sim.bind(switch)
        switch.runtime.arbitrate("ctl", 1)
        switch.runtime.set_forwarding_pipeline_config(
            "ctl", ipv4_forwarding_program()
        )
        switch.runtime.write("ctl", TableEntry(
            table="ipv4_lpm",
            keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
            action="forward", params=(2,),
        ))
    for index in range(packets):
        sim.schedule(index * 1e-3, lambda: src.send_udp(
            dst_mac=dst.mac, dst_ip=dst.ip, src_port=1, dst_port=2,
            payload=bytes(64),
            ra_shim=RaShimHeader(flags=RaShimHeader.FLAG_POLICY),
        ))
    sim.run()
    delivered = dst.received_packets
    return {
        "channel": "out-of-band" if out_of_band else "in-band",
        "delivered": len(delivered),
        "pkt bytes at dst": (
            sum(p.wire_length for p in delivered) // max(1, len(delivered))
        ),
        "control msgs": sim.stats.control_messages,
        "control bytes": sim.stats.control_bytes,
    }


def test_fig2_dataplane_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [run_dataplane_variant(False), run_dataplane_variant(True)]
    report("Fig. 2 on the dataplane: where the evidence bytes travel",
           table(rows))
    in_band, oob = rows
    # In-band: fat packets, silent control channel. Out-of-band: the
    # reverse. The same security, a different plane.
    assert in_band["pkt bytes at dst"] > oob["pkt bytes at dst"]
    assert in_band["control msgs"] == 0
    assert oob["control msgs"] > 0
    assert oob["control bytes"] > 0
