"""Benchmark regression gate.

Compares a fresh ``BENCH_results.json`` against a committed baseline
and fails (exit 1) when any watched benchmark's median slowed down by
more than the threshold (default 25%). Watched benchmarks are the
hot-path suites the repository makes throughput claims about:
``bench_fig3_pipeline``, ``bench_substrate_crypto``, the sharded
event-core scaling run ``bench_shard_scaling``, the million-packet
fat-tree campaign ``bench_fabric_traffic``, and the congested
tail-FCT campaign ``bench_fct_congestion``.

Usage::

    python benchmarks/check_regression.py BASELINE.json FRESH.json \
        [--threshold 0.25] [--min-median-us 10]

Benchmarks present in only one file are reported but never fail the
gate (new benchmarks must be able to land; retired ones to leave).
Medians below ``--min-median-us`` are skipped: sub-10µs no-op anchors
(the ``*_report`` table tests) and cache-hit micro-ops jitter far more
than 25% on shared CI runners and carry no regression signal.

The gate also enforces the flight-recorder cost budget: any benchmark
in the *fresh* file recording a ``sampling_overhead_frac`` extra-info
value (``bench_fabric_traffic``'s overhead test) must stay below
``--max-sampling-overhead`` (default 0.03 — docs/MONITORING.md's <3%
promise). This check is absolute, not baseline-relative.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

WATCHED_MODULES = (
    "bench_fig3_pipeline",
    "bench_substrate_crypto",
    "bench_shard_scaling",
    "bench_fabric_traffic",
    "bench_fct_congestion",
)


def load_medians(path: str) -> Dict[str, float]:
    """Map fullname -> median seconds for the watched benchmarks."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    medians: Dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        fullname = bench.get("fullname", bench.get("name", ""))
        if not any(module in fullname for module in WATCHED_MODULES):
            continue
        median = bench.get("stats", {}).get("median")
        if isinstance(median, (int, float)):
            medians[fullname] = float(median)
    return medians


def load_sampling_overheads(path: str) -> Dict[str, float]:
    """Map fullname -> recorded sampling_overhead_frac, where present."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    overheads: Dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        fullname = bench.get("fullname", bench.get("name", ""))
        value = bench.get("extra_info", {}).get("sampling_overhead_frac")
        if isinstance(value, (int, float)):
            overheads[fullname] = float(value)
    return overheads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_results.json")
    parser.add_argument("fresh", help="freshly generated BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated slowdown fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-median-us",
        type=float,
        default=10.0,
        help="skip benchmarks whose baseline median is below this (µs)",
    )
    parser.add_argument(
        "--max-sampling-overhead",
        type=float,
        default=0.03,
        help="maximum tolerated flight-recorder sampling overhead "
        "fraction recorded in the fresh run (default 0.03 = 3%%)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    fresh = load_medians(args.fresh)
    if not baseline:
        print(f"no watched benchmarks in baseline {args.baseline}")

    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            print(f"SKIP  {name}: not in fresh run")
            continue
        if base * 1e6 < args.min_median_us:
            print(f"SKIP  {name}: baseline median {base * 1e6:.2f}µs below floor")
            continue
        current = fresh[name]
        change = (current - base) / base
        status = "FAIL" if change > args.threshold else "ok"
        print(
            f"{status:4}  {name}: {base * 1e6:.1f}µs -> {current * 1e6:.1f}µs "
            f"({change:+.1%})"
        )
        if change > args.threshold:
            failures.append((name, change))
    for name in sorted(set(fresh) - set(baseline)):
        print(f"NEW   {name}: {fresh[name] * 1e6:.1f}µs (no baseline)")

    for name, overhead in sorted(load_sampling_overheads(args.fresh).items()):
        over = overhead >= args.max_sampling_overhead
        status = "FAIL" if over else "ok"
        print(
            f"{status:4}  {name}: sampling overhead {overhead:+.2%} "
            f"(gate: <{args.max_sampling_overhead:.0%})"
        )
        if over:
            failures.append((name, overhead))

    if failures:
        print(f"\n{len(failures)} benchmark gate failure(s)")
        return 1
    print("\nno benchmark regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
