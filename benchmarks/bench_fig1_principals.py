"""E1 / Fig. 1 — the RA principal round trip.

Claim → Evidence → Appraisal → Result, for an honest and a compromised
attester, plus the cost of the appraisal step itself.
"""

from repro.copland.evidence import MeasurementEvidence, NonceEvidence, SignedEvidence
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.ra.appraiser import AppraisalPolicy, Appraiser
from repro.ra.claims import Claim
from repro.ra.nonce import NonceManager

from conftest import report, table


def build_round_trip(honest: bool = True):
    """One full Fig. 1 flow as a callable."""
    switch_keys = KeyPair.generate("Switch")
    anchors = KeyRegistry()
    anchors.register_pair(switch_keys)
    nonces = NonceManager("fig1")
    appraiser = Appraiser(
        name="Appraiser",
        anchors=anchors,
        policy=AppraisalPolicy(
            reference_values={("attest", "Program"): b"vetted-program-digest"},
            required_signers=("Switch",),
            require_nonce=True,
        ),
        nonces=nonces,
    )
    claim = Claim(attester="Switch", targets=("Program",))

    def round_trip():
        # (1) Claim, carried by a fresh nonce from the relying party.
        nonce = nonces.issue()
        # (2) Evidence produced by the attester.
        value = b"vetted-program-digest" if honest else b"tampered"
        measurement = MeasurementEvidence(
            asp="attest", place="Switch", target="Program",
            target_place="Switch", value=value,
            prior=NonceEvidence("n", nonce),
        )
        evidence = SignedEvidence(
            evidence=measurement, place="Switch",
            signature=switch_keys.sign(measurement.encode()),
        )
        # (3)+(4) Appraisal and result.
        return appraiser.appraise(evidence, claim=claim)

    return round_trip


def test_fig1_honest_round_trip(benchmark):
    verdict = benchmark(build_round_trip(honest=True))
    assert verdict.accepted


def test_fig1_compromised_round_trip(benchmark):
    verdict = benchmark(build_round_trip(honest=False))
    assert not verdict.accepted


def test_fig1_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for honest in (True, False):
        verdict = build_round_trip(honest=honest)()
        rows.append({
            "attester": "honest" if honest else "compromised",
            "result": "ACCEPTED" if verdict.accepted else "REJECTED",
            "measurements": verdict.checked_measurements,
            "signatures": verdict.checked_signatures,
            "failures": len(verdict.failures),
        })
    report("Fig. 1: RA principals round trip", table(rows))
    assert rows[0]["result"] == "ACCEPTED"
    assert rows[1]["result"] == "REJECTED"
