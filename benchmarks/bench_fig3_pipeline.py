"""E4 / Fig. 3 — per-packet cost of the PERA pipeline stages.

Compares a plain PISA switch against PERA at several design points.
Expected shape: signing dominates per-packet cost; pointwise
composition with caching recovers almost all of the RA overhead, which
is the motivation for the Fig. 4 tuning surface.
"""

import time

import pytest

from repro.net.headers import RaShimHeader, ip_to_int
from repro.net.packet import Packet
from repro.pera.config import (
    BatchingSpec,
    CompositionMode,
    DetailLevel,
    EvidenceConfig,
)
from repro.pera.switch import PeraSwitch
from repro.pisa.pipeline import CostModel, PacketContext
from repro.pisa.programs import ipv4_forwarding_program
from repro.pisa.runtime import TableEntry
from repro.pisa.switch import PisaSwitch
from repro.pisa.tables import MatchKey, MatchKind

from conftest import report, table


def make_switch(cls=PisaSwitch, **kwargs):
    switch = cls("s1", **kwargs)
    switch.runtime.arbitrate("ctl", 1)
    switch.runtime.set_forwarding_pipeline_config("ctl", ipv4_forwarding_program())
    switch.runtime.write("ctl", TableEntry(
        table="ipv4_lpm",
        keys=(MatchKey(MatchKind.LPM, ip_to_int("10.0.1.0"), prefix_len=24),),
        action="forward", params=(2,),
    ))
    return switch


def make_packet(with_shim: bool):
    return Packet.udp_packet(
        src_mac=1, dst_mac=2,
        src_ip=ip_to_int("10.0.0.1"), dst_ip=ip_to_int("10.0.1.1"),
        src_port=1000, dst_port=2000, payload=bytes(64),
        ra_shim=RaShimHeader(flags=RaShimHeader.FLAG_POLICY) if with_shim else None,
    )


def drive(switch, with_shim: bool, packets: int = 1):
    packet = make_packet(with_shim)
    for _ in range(packets):
        ctx = PacketContext.from_packet(packet, ingress_port=1)
        switch.process_context(ctx)
    return switch


CONFIGS = {
    "baseline (no RA)": None,
    "pointwise+cache": EvidenceConfig(composition=CompositionMode.POINTWISE),
    "chained": EvidenceConfig(composition=CompositionMode.CHAINED),
    "chained batched(32)": EvidenceConfig(
        composition=CompositionMode.CHAINED,
        batching=BatchingSpec(max_records=32, max_delay_s=0.0),
    ),
    "traffic-path": EvidenceConfig(composition=CompositionMode.TRAFFIC_PATH),
    "traffic-path expansive": EvidenceConfig(
        composition=CompositionMode.TRAFFIC_PATH, detail=DetailLevel.EXPANSIVE
    ),
}


@pytest.mark.parametrize("label", list(CONFIGS))
def test_fig3_per_packet_cost(benchmark, label):
    config = CONFIGS[label]
    if config is None:
        switch = make_switch(PisaSwitch)
        benchmark(lambda: drive(switch, with_shim=False))
    else:
        switch = make_switch(PeraSwitch, config=config)
        benchmark(lambda: drive(switch, with_shim=True))


def test_fig3_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cost_model = CostModel()
    rows = []
    packets = 200
    for label, config in CONFIGS.items():
        if config is None:
            switch = make_switch(PisaSwitch)
            drive(switch, with_shim=False, packets=packets)
            ra_cost = 0.0
            signatures = 0
        else:
            switch = make_switch(PeraSwitch, config=config)
            drive(switch, with_shim=True, packets=packets)
            switch.flush_epochs()  # no-op outside batched mode
            ra_cost = switch.ra_cost
            signatures = switch.ra_stats.signatures_produced
        pipeline_cost = switch.total_cost
        rows.append({
            "mode": label,
            "pipeline cost/pkt": round(pipeline_cost / packets, 1),
            "ra cost/pkt": round(ra_cost / packets, 1),
            "sigs/pkt": round(signatures / packets, 2),
            "overhead x": round(
                (pipeline_cost + ra_cost) / pipeline_cost, 2
            ),
        })
    report(
        "Fig. 3: PERA pipeline per-packet cost "
        f"(sign={cost_model.sign:.0f} units, lookup={cost_model.table_lookup:.0f})",
        table(rows),
    )
    by_mode = {r["mode"]: r for r in rows}
    # Shapes: per-packet signing dominates; caching recovers most of it.
    assert by_mode["baseline (no RA)"]["ra cost/pkt"] == 0
    assert by_mode["pointwise+cache"]["overhead x"] < 1.5
    assert by_mode["chained"]["overhead x"] > 5
    assert (
        by_mode["traffic-path expansive"]["ra cost/pkt"]
        >= by_mode["traffic-path"]["ra cost/pkt"]
    )
    # Epoch batching amortizes the signature: far fewer sigs, less cost.
    assert by_mode["chained batched(32)"]["sigs/pkt"] < 0.1
    assert (
        by_mode["chained batched(32)"]["ra cost/pkt"]
        < by_mode["chained"]["ra cost/pkt"]
    )


def _measure_pps(config, packets: int = 512) -> float:
    """Wall-clock packets/sec through one standalone switch."""
    switch = make_switch(PeraSwitch, config=config)
    switch.keys.sign(b"warmup")  # build the lazy Ed25519 base table
    packet = make_packet(with_shim=True)
    start = time.perf_counter()
    for _ in range(packets):
        ctx = PacketContext.from_packet(packet, ingress_port=1)
        switch.process_context(ctx)
    switch.flush_epochs()  # the last (partial) epoch counts too
    return packets / (time.perf_counter() - start)


def _measure_baseline_pps(packets: int = 512) -> float:
    """Wall-clock packets/sec through a plain no-RA PISA switch."""
    switch = make_switch(PisaSwitch)
    packet = make_packet(with_shim=False)
    start = time.perf_counter()
    for _ in range(packets):
        ctx = PacketContext.from_packet(packet, ingress_port=1)
        switch.process_context(ctx)
    return packets / (time.perf_counter() - start)


def test_fig3_batched_speedup(benchmark):
    """Tentpole claims: batching amortizes signing, and the crypto hot
    path keeps absolute chained overhead in check.

    Both attested modes run the same chained design point; the only
    difference is one Ed25519 signature per epoch (Merkle-root
    amortized) instead of one per packet. The hard gate is the ratio
    between the two attested modes — measured interleaved under the
    same machine conditions — while a plain no-RA switch anchors the
    absolute overhead ratios, which are *reported* (extra_info + table)
    but gated baseline-relative by check_regression.py rather than as
    machine-dependent wall-clock constants here. All rates land in
    ``extra_info`` so BENCH_results.json shows them side by side.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_packet = EvidenceConfig(composition=CompositionMode.CHAINED)
    batched = EvidenceConfig(
        composition=CompositionMode.CHAINED,
        batching=BatchingSpec(max_records=32, max_delay_s=0.0),
    )
    # Interleaved best-of-5 damps scheduler noise: measuring the modes
    # back-to-back each round keeps both sides of the ratio under the
    # same machine conditions before taking the per-side maximum.
    per_packet_pps = batched_pps = baseline_pps = 0.0
    for _ in range(5):
        baseline_pps = max(baseline_pps, _measure_baseline_pps())
        per_packet_pps = max(per_packet_pps, _measure_pps(per_packet))
        batched_pps = max(batched_pps, _measure_pps(batched))
    speedup = batched_pps / per_packet_pps
    chained_overhead = baseline_pps / per_packet_pps
    batched_overhead = baseline_pps / batched_pps
    benchmark.extra_info["baseline_pps"] = round(baseline_pps, 1)
    benchmark.extra_info["per_packet_pps"] = round(per_packet_pps, 1)
    benchmark.extra_info["batched_pps"] = round(batched_pps, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["chained_overhead_x"] = round(chained_overhead, 1)
    benchmark.extra_info["batched_overhead_x"] = round(batched_overhead, 1)
    report(
        "Fig. 3 addendum: epoch-batched signing throughput",
        table([
            {"mode": "baseline (no RA)", "packets/sec": round(baseline_pps)},
            {"mode": "chained per-packet", "packets/sec": round(per_packet_pps)},
            {"mode": "chained batched(32)", "packets/sec": round(batched_pps)},
            {"mode": "speedup (batched/per-packet)", "packets/sec": f"{speedup:.2f}x"},
            {"mode": "chained overhead vs baseline", "packets/sec": f"{chained_overhead:.1f}x"},
            {"mode": "batched overhead vs baseline", "packets/sec": f"{batched_overhead:.1f}x"},
        ]),
    )
    # The amortization ratio: batching still wins big, but the faster
    # windowed/base-table signing shrank the per-packet side it divides
    # by, so the old ≥5× ratio gate is now ≥4×. This is the only hard
    # gate here: both sides of the ratio run interleaved on the same
    # machine in the same process, so it is immune to runner speed.
    assert speedup >= 4.0
    # The absolute overhead-vs-baseline ratios (chained ~49×, batched
    # ~9× on the reference runner; ~63× chained before the widened base
    # table and single-exponentiation decompression) are reported in
    # extra_info and the table only: interpreter wall-clock constants
    # shift with machine and load, so pinning them here would flake on
    # slow runners and mask regressions on fast ones. Wall-clock
    # regressions are gated baseline-relative by check_regression.py
    # (this module is a watched suite); re-baselining = regenerating
    # BENCH_results.json on the reference runner (see docs/CRYPTO.md).
