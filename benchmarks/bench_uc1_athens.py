"""E7 / UC1 — detection latency of a rogue program swap vs sampling.

Expected shape: per-packet attestation detects at the first rogue
packet (delay 0); 1-in-N sampling detects within ~N packets, trading
detection latency for per-packet cost (the Fig. 4 sampling axis).
"""


from repro.core.usecases import run_config_assurance
from repro.pera.sampling import SamplingMode, SamplingSpec

from conftest import report, table


def test_uc1_per_packet_detection(benchmark):
    result = benchmark(lambda: run_config_assurance(packets=12, swap_at=4))
    assert result.detection_delay == 0


def test_uc1_sampled_detection(benchmark):
    result = benchmark(lambda: run_config_assurance(
        packets=16, swap_at=4,
        sampling=SamplingSpec(mode=SamplingMode.ONE_IN_N, n=4),
    ))
    assert result.first_rejection is not None


def test_uc1_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    swap_at = 8
    packets = 48
    for n in (1, 2, 4, 8):
        sampling = (
            None if n == 1
            else SamplingSpec(mode=SamplingMode.ONE_IN_N, n=n)
        )
        result = run_config_assurance(
            packets=packets, swap_at=swap_at, sampling=sampling
        )
        rows.append({
            "sampling": "every packet" if n == 1 else f"1-in-{n}",
            "swap at pkt": swap_at,
            "first rejection": result.first_rejection,
            "detection delay": result.detection_delay,
            "exfiltrated": result.exfiltrated,
        })
    report("UC1 (Athens affair): rogue-swap detection vs sampling rate",
           table(rows))
    delays = [r["detection delay"] for r in rows]
    # Shape: delay 0 at per-packet; grows (weakly) with sparser sampling.
    assert delays[0] == 0
    assert all(d is not None for d in delays)
    assert delays == sorted(delays)
    assert delays[-1] <= 8  # bounded by the sampling period
