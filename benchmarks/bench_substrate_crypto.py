"""Substrate microbenchmarks: the primitives everything else pays for.

Not a paper artifact per se, but the quantity behind every Fig. 3/4
trade-off: what signing, verifying, hashing, and encoding actually
cost in this implementation. The shape assertion mirrors the cost
model: sign and verify are orders of magnitude above hash and codec
operations — which is *why* the evidence cache exists.
"""

import time


from repro.copland.parser import parse_request
from repro.crypto.ed25519 import SigningKey, _point_decompress
from repro.crypto.hashing import HashChain, digest
from repro.crypto.merkle import MerkleTree
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord
from repro.util.tlv import Tlv, TlvCodec

from conftest import report, table

KEY = SigningKey.from_deterministic_seed("bench")
VERIFY_KEY = KEY.verify_key()
MESSAGE = bytes(range(256))
SIGNATURE = KEY.sign(MESSAGE)

RECORD = HopRecord(
    place="s1",
    measurements=(
        (InertiaClass.HARDWARE, b"\x01" * 32),
        (InertiaClass.PROGRAM, b"\x02" * 32),
    ),
    sequence=42,
    chain_head=b"\x03" * 32,
).sign_with(
    __import__("repro.crypto.keys", fromlist=["KeyPair"]).KeyPair.generate("s1")
)
RECORD_BYTES = RECORD.encode()

AP1_TEXT = (
    "*RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !] "
    "+>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]"
)


def test_ed25519_sign(benchmark):
    benchmark(lambda: KEY.sign(MESSAGE))


def test_ed25519_verify(benchmark):
    assert benchmark(lambda: VERIFY_KEY.verify(MESSAGE, SIGNATURE))


def test_ed25519_point_decompress_fresh(benchmark):
    """Square-root recovery of the public point from its 32-byte form."""
    benchmark(lambda: _point_decompress(VERIFY_KEY.key_bytes))


def test_ed25519_point_decompress_cached(benchmark):
    """The per-key cached point: what every verify after the first pays."""
    VERIFY_KEY.point()  # prime the cache
    benchmark(VERIFY_KEY.point)


def test_sha256_digest(benchmark):
    benchmark(lambda: digest(MESSAGE, domain="bench"))


def test_hash_chain_extend(benchmark):
    chain = HashChain()
    benchmark(lambda: chain.extend(b"link"))


def test_merkle_build_64(benchmark):
    leaves = [bytes([i]) * 32 for i in range(64)]
    benchmark(lambda: MerkleTree(leaves).root)


def test_hop_record_encode(benchmark):
    benchmark(RECORD.encode)


def test_hop_record_decode(benchmark):
    benchmark(lambda: HopRecord.decode(RECORD_BYTES))


def test_tlv_round_trip(benchmark):
    elements = [Tlv(i, bytes(32)) for i in range(8)]
    encoded = TlvCodec.encode(elements)
    benchmark(lambda: TlvCodec.decode(encoded))


def test_copland_parse(benchmark):
    benchmark(lambda: parse_request(AP1_TEXT))


def _time(fn, rounds=200):
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_substrate_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    VERIFY_KEY.point()  # prime the per-key point cache
    timings = {
        "ed25519 sign": _time(lambda: KEY.sign(MESSAGE), rounds=20),
        "ed25519 verify": _time(
            lambda: VERIFY_KEY.verify(MESSAGE, SIGNATURE), rounds=20
        ),
        "point decompress (fresh)": _time(
            lambda: _point_decompress(VERIFY_KEY.key_bytes), rounds=50
        ),
        "point decompress (cached)": _time(VERIFY_KEY.point, rounds=2000),
        "sha256 digest (256B)": _time(lambda: digest(MESSAGE)),
        "hop record encode": _time(RECORD.encode),
        "hop record decode": _time(lambda: HopRecord.decode(RECORD_BYTES)),
    }
    rows = [
        {"operation": name, "µs/op": round(seconds * 1e6, 1)}
        for name, seconds in timings.items()
    ]
    report("Substrate: primitive operation costs", table(rows))
    # The cost-model shape: signing dwarfs hashing and codec work.
    assert timings["ed25519 sign"] > 50 * timings["sha256 digest (256B)"]
    assert timings["ed25519 verify"] > timings["sha256 digest (256B)"]
    # The point cache: long-lived registry keys skip the square-root
    # recovery on every verify after the first.
    assert (
        timings["point decompress (cached)"]
        < timings["point decompress (fresh)"] / 10
    )
