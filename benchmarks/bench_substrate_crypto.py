"""Substrate microbenchmarks: the primitives everything else pays for.

Not a paper artifact per se, but the quantity behind every Fig. 3/4
trade-off: what signing, verifying, hashing, and encoding actually
cost in this implementation. The shape assertion mirrors the cost
model: sign and verify are orders of magnitude above hash and codec
operations — which is *why* the evidence cache exists.
"""

import json
import pathlib
import time


from repro.copland.parser import parse_request
from repro.crypto.ed25519 import SigningKey, _point_decompress, verify_batch
from repro.crypto.hashing import HashChain, digest
from repro.crypto.merkle import MerkleTree
from repro.pera.inertia import InertiaClass
from repro.pera.records import HopRecord
from repro.util.tlv import Tlv, TlvCodec

from conftest import report, table

_SUMMARY_PATH = pathlib.Path(__file__).parent / "CRYPTO_summary.json"

KEY = SigningKey.from_deterministic_seed("bench")
VERIFY_KEY = KEY.verify_key()
MESSAGE = bytes(range(256))
SIGNATURE = KEY.sign(MESSAGE)

RECORD = HopRecord(
    place="s1",
    measurements=(
        (InertiaClass.HARDWARE, b"\x01" * 32),
        (InertiaClass.PROGRAM, b"\x02" * 32),
    ),
    sequence=42,
    chain_head=b"\x03" * 32,
).sign_with(
    __import__("repro.crypto.keys", fromlist=["KeyPair"]).KeyPair.generate("s1")
)
RECORD_BYTES = RECORD.encode()

AP1_TEXT = (
    "*RP1 <n> : @Switch [attest(Hardware, Program) -> # -> !] "
    "+>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]"
)


def test_ed25519_sign(benchmark):
    benchmark(lambda: KEY.sign(MESSAGE))


def test_ed25519_verify(benchmark):
    assert benchmark(lambda: VERIFY_KEY.verify(MESSAGE, SIGNATURE))


def test_ed25519_point_decompress_fresh(benchmark):
    """Square-root recovery of the public point from its 32-byte form."""
    benchmark(lambda: _point_decompress(VERIFY_KEY.key_bytes))


def test_ed25519_point_decompress_cached(benchmark):
    """The per-key cached point: what every verify after the first pays."""
    VERIFY_KEY.point()  # prime the cache
    benchmark(VERIFY_KEY.point)


def test_sha256_digest(benchmark):
    benchmark(lambda: digest(MESSAGE, domain="bench"))


def test_hash_chain_extend(benchmark):
    chain = HashChain()
    benchmark(lambda: chain.extend(b"link"))


def test_merkle_build_64(benchmark):
    leaves = [bytes([i]) * 32 for i in range(64)]
    benchmark(lambda: MerkleTree(leaves).root)


def test_hop_record_encode(benchmark):
    benchmark(RECORD.encode)


def test_hop_record_decode(benchmark):
    benchmark(lambda: HopRecord.decode(RECORD_BYTES))


def test_tlv_round_trip(benchmark):
    elements = [Tlv(i, bytes(32)) for i in range(8)]
    encoded = TlvCodec.encode(elements)
    benchmark(lambda: TlvCodec.decode(encoded))


def test_copland_parse(benchmark):
    benchmark(lambda: parse_request(AP1_TEXT))


def _time(fn, rounds=200):
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


# --- batched verification sweep ----------------------------------------

#: The appraisal hot path sees a handful of distinct signers (one per
#: switch on the path) across many records — 4 signers is the realistic
#: shape the per-key scalar merging exploits.
BATCH_SIGNERS = 4
BATCH_SIZES = (1, 8, 64, 512)


def _batch_items(size, signers=BATCH_SIGNERS):
    keys = [
        SigningKey.from_deterministic_seed(f"bench-batch-{i}")
        for i in range(signers)
    ]
    items = []
    for i in range(size):
        signer = keys[i % len(keys)]
        message = MESSAGE + i.to_bytes(4, "little")
        items.append((signer.verify_key(), message, signer.sign(message)))
    # Prime the per-key caches (point, negation, wNAF tables) for both
    # paths: long-lived registry keys are the steady state being
    # modeled, not fresh-key decompression.
    for key, message, signature in items[: len(keys)]:
        assert key.verify(message, signature)
    return items


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_ed25519_verify_batch_64(benchmark):
    """The timed batched check: 64 signatures, one multi-scalar equation."""
    items = _batch_items(64)
    assert all(benchmark(lambda: verify_batch(items)))


def test_ed25519_batch_sweep(benchmark):
    """Per-signature cost of batched vs sequential verification.

    Sweeps batch sizes 1/8/64/512 (4 distinct signers, the path-
    appraisal shape) plus the distinct-key worst case at 64, where no
    per-key scalar merging is possible. Curves land in ``extra_info``
    (regression-gated via BENCH_results.json) and in
    ``CRYPTO_summary.json`` for CI artifact upload. The headline gate:
    at batch size 64 the batched path must be ≥4× cheaper per
    signature than sequential ``VerifyKey.verify``.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    summary = {"signers": BATCH_SIGNERS, "sizes": {}}
    speedup_at_64 = None
    for size in BATCH_SIZES:
        items = _batch_items(size)
        sequential_s = _best_of(
            lambda: [key.verify(m, s) for key, m, s in items]
        )
        batched_s = _best_of(lambda: verify_batch(items))
        per_sig_seq = sequential_s / size * 1e6
        per_sig_batch = batched_s / size * 1e6
        speedup = sequential_s / batched_s
        if size == 64:
            speedup_at_64 = speedup
        rows.append({
            "batch": size,
            "sequential µs/sig": round(per_sig_seq, 1),
            "batched µs/sig": round(per_sig_batch, 1),
            "speedup x": round(speedup, 2),
            "batched sigs/sec": round(size / batched_s),
        })
        benchmark.extra_info[f"batch_{size}_us_per_sig"] = round(
            per_sig_batch, 1
        )
        benchmark.extra_info[f"batch_{size}_speedup"] = round(speedup, 2)
        summary["sizes"][str(size)] = {
            "sequential_us_per_sig": round(per_sig_seq, 2),
            "batched_us_per_sig": round(per_sig_batch, 2),
            "speedup": round(speedup, 2),
            "batched_sigs_per_sec": round(size / batched_s, 1),
        }

    # Distinct-key worst case: every signature under its own key, so
    # the A-point scalars cannot merge — the floor of the optimization.
    worst = _batch_items(64, signers=64)
    worst_seq = _best_of(lambda: [key.verify(m, s) for key, m, s in worst])
    worst_batch = _best_of(lambda: verify_batch(worst))
    worst_speedup = worst_seq / worst_batch
    rows.append({
        "batch": "64 (distinct keys)",
        "sequential µs/sig": round(worst_seq / 64 * 1e6, 1),
        "batched µs/sig": round(worst_batch / 64 * 1e6, 1),
        "speedup x": round(worst_speedup, 2),
        "batched sigs/sec": round(64 / worst_batch),
    })
    benchmark.extra_info["batch_64_distinct_speedup"] = round(
        worst_speedup, 2
    )
    summary["distinct_keys_64"] = {
        "sequential_us_per_sig": round(worst_seq / 64 * 1e6, 2),
        "batched_us_per_sig": round(worst_batch / 64 * 1e6, 2),
        "speedup": round(worst_speedup, 2),
    }

    report("Batched Ed25519 verification sweep", table(rows))
    with _SUMMARY_PATH.open("w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The tentpole acceptance gate: ≥4× per-signature at batch 64.
    assert speedup_at_64 is not None and speedup_at_64 >= 4.0, rows
    # Even with nothing to merge, the shared doubling chain and
    # half-width randomizers must still beat sequential verification.
    assert worst_speedup > 1.5, rows


def test_substrate_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    VERIFY_KEY.point()  # prime the per-key point cache
    timings = {
        "ed25519 sign": _time(lambda: KEY.sign(MESSAGE), rounds=20),
        "ed25519 verify": _time(
            lambda: VERIFY_KEY.verify(MESSAGE, SIGNATURE), rounds=20
        ),
        "point decompress (fresh)": _time(
            lambda: _point_decompress(VERIFY_KEY.key_bytes), rounds=50
        ),
        "point decompress (cached)": _time(VERIFY_KEY.point, rounds=2000),
        "sha256 digest (256B)": _time(lambda: digest(MESSAGE)),
        "hop record encode": _time(RECORD.encode),
        "hop record decode": _time(lambda: HopRecord.decode(RECORD_BYTES)),
    }
    rows = [
        {"operation": name, "µs/op": round(seconds * 1e6, 1)}
        for name, seconds in timings.items()
    ]
    report("Substrate: primitive operation costs", table(rows))
    # The cost-model shape: signing dwarfs hashing and codec work.
    assert timings["ed25519 sign"] > 50 * timings["sha256 digest (256B)"]
    assert timings["ed25519 verify"] > timings["sha256 digest (256B)"]
    # The point cache: long-lived registry keys skip the square-root
    # recovery on every verify after the first.
    assert (
        timings["point decompress (cached)"]
        < timings["point decompress (fresh)"] / 10
    )
