"""Packets/sec vs shard count on a 104-switch leaf–spine fabric.

The sharded-core acceptance benchmark: the fabric workload
(:mod:`repro.core.fabric` — 100 leaves x 4 spines, 200 hosts, every
flow crossing the spine cut) runs under the monolithic
:class:`~repro.net.simulator.Simulator` and under
:func:`~repro.core.fabric.run_fabric` at 1/2/4 shards, and the table
records two throughput numbers per row:

- **wall pkts/s** — packets over real elapsed time on *this* box. On a
  single-core runner every shard time-slices one CPU, so this column
  shows the coordination overhead, not the speedup.
- **critical-path pkts/s** — packets over ``max`` per-shard busy time
  (:attr:`~repro.net.shardrun.ShardedResult.critical_path_s`), the
  standard conservative-PDES capacity metric: what the wall clock
  converges to once each shard has its own core. The >=2x scaling gate
  asserts on this column, with ``cpu_count`` recorded alongside so the
  context is never implicit.

Busy time is measured inside each shard's window loop (barrier and
transport costs excluded), so the critical path is the residual serial
fraction of the *simulation* work — the quantity sharding exists to
shrink.
"""

import gc
import os
import time

import pytest

from repro.core.fabric import FabricShape, run_fabric, run_fabric_monolith

from conftest import report, table

# 104 switches, 200 hosts, 2000 offered packets, all cross-spine.
SHAPE = FabricShape(leaves=100, spines=4, hosts_per_leaf=2, flows_per_host=10)
SHARD_COUNTS = (1, 2, 4)

#: Acceptance floor: critical-path throughput at 4 shards over 1 shard.
MIN_SCALING_X4 = 2.0

#: Repeats per config in the report table; best run wins. A single
#: shot is fragile on a shared 1-CPU runner (one GC pause or scheduler
#: preemption lands entirely inside one config's measurement).
ROUNDS = 3


def _timed(fn):
    """Run ``fn`` :data:`ROUNDS` times; returns the list of
    ``(result, wall_s)`` samples for the caller to reduce (min wall,
    min critical path — each taken independently, as is standard for
    noise-floor timing)."""
    samples = []
    for _ in range(ROUNDS):
        gc.collect()
        start = time.perf_counter()
        out = fn()
        samples.append((out, time.perf_counter() - start))
    return samples


def _warmup():
    """Pay first-call costs (imports, table builds) off the clock so
    they don't land on whichever measured row runs first."""
    run_fabric(
        FabricShape(leaves=4, spines=2, hosts_per_leaf=1, flows_per_host=1),
        shards=2,
        telemetry_active=False,
    )


def test_shard_scaling_monolith(benchmark):
    sim, delivered = benchmark(lambda: run_fabric_monolith(SHAPE))
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["packets"] = sim.stats.packets_transmitted
    assert delivered == SHAPE.packets_offered


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_shard_scaling_sharded(benchmark, shards):
    result = benchmark(
        lambda: run_fabric(SHAPE, shards=shards, telemetry_active=False)
    )
    critical = result.result.critical_path_s
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["packets"] = result.packets_transmitted
    benchmark.extra_info["windows"] = result.result.windows
    benchmark.extra_info["critical_path_s"] = round(critical, 6)
    benchmark.extra_info["critical_pkts_per_s"] = round(
        result.packets_transmitted / critical
    )
    assert result.delivered == SHAPE.packets_offered


def test_shard_scaling_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _warmup()

    rows = []
    samples = _timed(lambda: run_fabric_monolith(SHAPE))
    (sim, delivered), _ = samples[0]
    wall = min(w for _, w in samples)
    packets = sim.stats.packets_transmitted
    rows.append({
        "config": "monolith",
        "windows": "-",
        "delivered": delivered,
        "wall s": round(wall, 3),
        "wall pkts/s": round(packets / wall),
        "critical s": round(wall, 3),
        "critical pkts/s": round(packets / wall),
    })

    def sharded_row(config, shards, backend):
        samples = _timed(lambda: run_fabric(
            SHAPE, shards=shards, backend=backend, telemetry_active=False
        ))
        result = samples[0][0]
        wall = min(w for _, w in samples)
        critical = min(r.result.critical_path_s for r, _ in samples)
        packets = result.packets_transmitted
        rows.append({
            "config": config,
            "windows": result.result.windows,
            "delivered": result.delivered,
            "wall s": round(wall, 3),
            "wall pkts/s": round(packets / wall),
            "critical s": round(critical, 3),
            "critical pkts/s": round(packets / critical),
        })
        return packets / critical

    critical_rate = {
        shards: sharded_row(f"sharded x{shards} (inline)", shards, "inline")
        for shards in SHARD_COUNTS
    }
    sharded_row("sharded x2 (mp)", 2, "mp")

    scaling = critical_rate[4] / critical_rate[1]
    report(
        f"Shard scaling, {SHAPE.switch_count}-switch leaf-spine fabric "
        f"({SHAPE.host_count} hosts, {SHAPE.packets_offered} pkts, "
        f"cpu_count={os.cpu_count()})",
        [
            *table(rows),
            "",
            f"critical-path scaling at 4 shards: {scaling:.2f}x "
            f"(gate: >={MIN_SCALING_X4}x)",
        ],
    )

    # Every config delivers the full offered load.
    assert all(row["delivered"] == SHAPE.packets_offered for row in rows)
    # The acceptance gate: the slowest shard at x4 carries less than
    # half the work a single shard carries.
    assert scaling >= MIN_SCALING_X4
