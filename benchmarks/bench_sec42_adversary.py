"""E6 / §4.2 — adversary analysis of expressions (1) and (2).

Expected shape: the parallel composition (1) falls to a DELAYED
adversary (acts during the run, but only in windows it schedules
itself); the sequenced-and-signed (2) requires a RECENT adversary
(must corrupt between two protocol-ordered events). A concrete
simulation of 1000 attack trials backs the static analysis.
"""


from repro.analysis.trust import hardening_report
from repro.copland.adversary import (
    AdversaryTier,
    ProtocolModel,
    analyze_measurement_protocol,
)
from repro.copland.parser import parse_phrase
from repro.copland.vm import CoplandVM, Place
from repro.crypto.hashing import digest

from conftest import report, table

EXPR1 = "@ks [av us bmon] -~- @us [bmon us exts]"
EXPR2 = "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]"

MODEL = ProtocolModel(
    residence={"av": "ks", "bmon": "us", "exts": "us"},
    adversary_places=frozenset({"us"}),
    malicious=frozenset({"exts"}),
)


def analyze_both():
    tier1, _ = analyze_measurement_protocol(
        parse_phrase(EXPR1), MODEL, at_place="bank"
    )
    tier2, _ = analyze_measurement_protocol(
        parse_phrase(EXPR2), MODEL, at_place="bank"
    )
    return tier1, tier2


def simulate_attacks(trials: int, sequenced: bool, adversary_fast: bool):
    """Run concrete corrupt/repair attacks on the VM.

    A slow adversary can only act before the protocol and between
    *unordered* branches (it controls their scheduling); a fast one can
    also act between ordered events.
    """
    successes = 0
    golden_bmon = digest(b"bmon-good", domain="component-measurement")
    golden_exts = digest(b"exts-good", domain="component-measurement")
    for _ in range(trials):
        vm = CoplandVM()
        vm.register(Place("bank"))
        ks = vm.register(Place("ks"))
        us = vm.register(Place("us"))
        ks.install_component("av", b"antivirus")
        us.install_component("bmon", b"bmon-good")
        us.install_component("exts", b"exts-good")
        us.corrupt_component("exts", b"MALWARE")
        us.corrupt_component("bmon", b"bmon-evil")
        if sequenced:
            # Protocol order: C1 (av bmon) strictly before C2.
            c1 = vm.execute(parse_phrase("@ks [av us bmon]"), "bank")
            if adversary_fast:
                # A recent adversary corrupts in the ordered window...
                us.repair_component("bmon")  # it was evil; av must see clean
                pass
            c2 = vm.execute(parse_phrase("@us [bmon us exts]"), "bank")
        else:
            # Parallel: the adversary schedules C2 first, repairs, C1.
            c2 = vm.execute(parse_phrase("@us [bmon us exts]"), "bank")
            us.repair_component("bmon")
            c1 = vm.execute(parse_phrase("@ks [av us bmon]"), "bank")
        accepted = c1.value == golden_bmon and c2.value == golden_exts
        if accepted and us.components["exts"] == b"MALWARE":
            successes += 1
    return successes


def test_sec42_static_analysis(benchmark):
    tier1, tier2 = benchmark(analyze_both)
    assert tier1 == AdversaryTier.DELAYED
    assert tier2 == AdversaryTier.RECENT


def test_sec42_hardening(benchmark):
    rep = benchmark(lambda: hardening_report(
        parse_phrase(EXPR1), MODEL, at_place="bank"
    ))
    assert rep.improved


def test_sec42_simulation(benchmark):
    wins = benchmark(lambda: simulate_attacks(
        100, sequenced=False, adversary_fast=False
    ))
    assert wins == 100


def test_sec42_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tier1, tier2 = analyze_both()
    trials = 1000
    rows = [
        {
            "protocol": "expr (1) parallel",
            "weakest defeating tier": tier1.name,
            "slow-adv success": f"{simulate_attacks(trials, False, False)}/{trials}",
        },
        {
            "protocol": "expr (2) sequenced+signed",
            "weakest defeating tier": tier2.name,
            "slow-adv success": f"{simulate_attacks(trials, True, False)}/{trials}",
        },
    ]
    report("§4.2: adversary analysis of expressions (1) vs (2)", table(rows))
    # The headline reproduction: sequencing strictly raises the bar.
    assert tier2 > tier1
    assert rows[0]["slow-adv success"] == f"{trials}/{trials}"
    assert rows[1]["slow-adv success"] == f"0/{trials}"
