"""E8 / UC3 — evidence-gated forwarding under DDoS.

Expected shape: with the gate off, attack traffic passes untouched;
with the gate on, attack traffic (which lacks verifiable path
evidence) drops to zero while legitimate goodput is fully retained —
at any attack intensity.
"""


from repro.core.usecases import run_ddos_mitigation

from conftest import report, table


def test_uc3_gated(benchmark):
    result = benchmark(lambda: run_ddos_mitigation(
        legit_packets=10, attack_packets=30, under_attack=True
    ))
    assert result.attack_passed == 0.0


def test_uc3_ungated(benchmark):
    result = benchmark(lambda: run_ddos_mitigation(
        legit_packets=10, attack_packets=30, under_attack=False
    ))
    assert result.attack_passed == 1.0


def test_uc3_report(benchmark):
    # Register as a benchmark so the reproduced table still prints
    # under --benchmark-only; the real work follows un-timed.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for attack_packets in (20, 60, 180):
        for gated in (False, True):
            result = run_ddos_mitigation(
                legit_packets=20,
                attack_packets=attack_packets,
                under_attack=gated,
            )
            rows.append({
                "attack pkts": attack_packets,
                "gate": "on" if gated else "off",
                "goodput kept": f"{result.goodput_kept:.0%}",
                "attack passed": f"{result.attack_passed:.0%}",
                "gated drops": result.gated_drops,
            })
    report("UC3: path-evidence gating under DDoS", table(rows))
    for row in rows:
        if row["gate"] == "on":
            assert row["goodput kept"] == "100%"
            assert row["attack passed"] == "0%"
        else:
            assert row["attack passed"] == "100%"
